"""Transfer fast path — scalar vs. vectorized microbenchmark.

Not a paper figure: this guards the array-at-a-time Transfer
implementation (docs/COST_MODEL.md, "Vectorized Transfer fast path").
It times the full Transfer stage of one NR iteration on the fig11-scale
standard workload (the 32-machine / 64-partition configuration every
figure bench shares) under both implementations, checks the iteration
products are bit-identical, and fails loudly if the fast path regresses.
"""

from __future__ import annotations

import time

from repro.apps import NetworkRankingPropagation
from repro.bench.harness import ExperimentTable
from repro.propagation.engine import PropagationEngine

#: CI floor — local runs see ~6-7x (recorded in results/); anything
#: below this means the fast path stopped being fast.
MIN_SPEEDUP = 3.0
ROUNDS = 5


def _engine(surfer, vectorized: bool) -> PropagationEngine:
    return PropagationEngine(
        surfer.pgraph, surfer.store, surfer.cluster, local_opts=True,
        assignment=surfer.assignment, vectorized=vectorized,
    )


def _one_pass(engine, surfer, app, state):
    start = time.perf_counter()
    transfers = [
        engine._run_transfer_udfs(app, state, p)
        for p in range(surfer.num_parts)
    ]
    return time.perf_counter() - start, transfers


def _stage_signature(app, transfers):
    return [
        (t.messages, t.cpu_ops, t.spill_bytes, t.output_bytes,
         t.locally_propagated,
         sorted((q, box.payload_bytes(app), box.message_count())
                for q, box in t.cross_boxes.items()))
        for t in transfers
    ]


def test_transfer_fastpath(benchmark, workload, record):
    surfer = workload.surfer("bandwidth-aware")
    app = NetworkRankingPropagation()
    state = app.setup(surfer.pgraph)

    def run():
        scalar_eng = _engine(surfer, vectorized=False)
        vec_eng = _engine(surfer, vectorized=True)
        best = {"scalar": float("inf"), "vec": float("inf")}
        products = {}
        # rounds are interleaved so clock-frequency drift hits both
        # implementations alike
        for _ in range(ROUNDS):
            for key, eng in (("scalar", scalar_eng), ("vec", vec_eng)):
                elapsed, products[key] = _one_pass(eng, surfer, app, state)
                best[key] = min(best[key], elapsed)
        return ((best["scalar"], products["scalar"]),
                (best["vec"], products["vec"]))

    (scalar_s, scalar_products), (vec_s, vec_products) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = scalar_s / vec_s

    table = ExperimentTable(
        title="Transfer stage: scalar vs. vectorized (NR, fig11-scale "
              f"workload, {surfer.graph.num_edges} edges, "
              f"{surfer.num_parts} partitions)",
        columns=["stage time (ms)", "speedup"],
    )
    table.add_row("scalar (before)", [round(scalar_s * 1000, 1), 1.0])
    table.add_row("vectorized (after)",
                  [round(vec_s * 1000, 1), round(speedup, 2)])
    table.notes.append(
        "best of %d rounds; products verified bit-identical" % ROUNDS
    )
    record("transfer_fastpath", table.render())

    # identical Transfer products, per partition
    assert _stage_signature(app, scalar_products) == \
        _stage_signature(app, vec_products)
    assert speedup >= MIN_SPEEDUP
