"""PR 3 — observability layer: stable-schema bench JSON + reconciliation.

Runs the NR workloads behind Figure 7 (propagation vs MapReduce on the
standard 32-machine cluster) and the Figure 11 weak-scaling endpoints,
verifies that every run's event stream reconciles exactly with the
cluster's cost counters, and persists the results as ``BENCH_PR3.json``
at the repo root — the ``repro-bench/v1`` document consecutive PRs diff
against.  A sample Chrome trace of the standard NR run lands in
``benchmarks/results/`` for loading in chrome://tracing / Perfetto.
"""

from __future__ import annotations

import pathlib

from repro.bench.benchjson import (
    job_record,
    load_bench_json,
    validate_bench_json,
    write_bench_json,
)
from repro.bench.experiments import (
    default_iterations,
    make_app,
    parts_for,
)
from repro.bench.runner import timed_job as _timed
from repro.bench.workloads import SCALED_LINK_BPS, Workload, make_cluster, scaled_graph
from repro.cluster.topology import t1
from repro.runtime.events import reconcile, write_chrome_trace

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PR3.json"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_bench_pr3_observability(workload, record):
    records: dict[str, dict] = {}
    iters = default_iterations("NR")
    surfer = workload.surfer("bandwidth-aware")

    # Uniform engine configuration: the array fast path is forced on for
    # every workload, and graph partitioning / Surfer construction stays
    # outside the timed region.  (PR 3 timed `wl.surfer(...)` inside the
    # lambda, so the fresh 8-machine graph paid recursive bisection while
    # the 32-machine case reused the session caches — the 3.02s-vs-0.22s
    # wall-clock outlier.)
    # -- Figure 7's NR pair: propagation vs MapReduce -------------------
    prop_job, wall = _timed(lambda: surfer.run_propagation(
        make_app("NR", "propagation"), iterations=iters, local_opts=True,
        vectorized=True))
    assert reconcile(prop_job) == []
    records["fig7_nr_propagation"] = job_record(prop_job, wall)

    mr_job, wall = _timed(lambda: surfer.run_mapreduce(
        make_app("NR", "mapreduce"), rounds=iters, vectorized=True))
    assert reconcile(mr_job) == []
    records["fig7_nr_mapreduce"] = job_record(mr_job, wall)

    # -- Figure 11 weak-scaling endpoints -------------------------------
    for m in (8, 32):
        graph = scaled_graph(m, seed=2010)
        wl = Workload(graph=graph,
                      cluster=make_cluster(t1(m, SCALED_LINK_BPS)),
                      num_parts=parts_for(graph, m), seed=2010)
        fig11_surfer = wl.surfer("bandwidth-aware")
        job, wall = _timed(lambda s=fig11_surfer: s.run_propagation(
            make_app("NR", "propagation"), iterations=1,
            local_opts=True, vectorized=True))
        assert reconcile(job) == [], f"fig11 @ {m} machines"
        records[f"fig11_nr_{m}_machines"] = job_record(job, wall)

    # -- persist: bench JSON (repo root) + sample Chrome trace ----------
    doc = write_bench_json(BENCH_PATH, records)
    assert validate_bench_json(load_bench_json(BENCH_PATH)) == []

    RESULTS_DIR.mkdir(exist_ok=True)
    write_chrome_trace(prop_job.events, RESULTS_DIR / "trace_pr3_nr.json")

    lines = [f"BENCH_PR3 ({doc['schema']}):"]
    for name in sorted(records):
        r = records[name]
        lines.append(
            f"  {name:24s} makespan {r['makespan_s']:10,.1f}s  "
            f"net {r['network_bytes']:12,d} B  "
            f"tasks {r['tasks']:4d}  wall {r['wall_clock_s']:.2f}s"
        )
    lines.append(
        "  note: PR 4 made the engine configuration uniform (fast path "
        "forced on everywhere) and moved Surfer construction out of the "
        "timed region — the earlier fig11_nr_8_machines wall-clock "
        "outlier (3.02s vs 0.22s at 32 machines) was recursive "
        "bisection of the fresh 8-machine graph being timed, not the "
        "run itself."
    )
    record("bench_pr3_observability", "\n".join(lines))

    # paper shape: propagation beats MapReduce on NR, and the network
    # saving is the structural reason (Figure 7)
    prop = records["fig7_nr_propagation"]
    mr = records["fig7_nr_mapreduce"]
    assert prop["makespan_s"] < mr["makespan_s"]
    assert prop["network_bytes"] < mr["network_bytes"]
    # weak scaling: fig11 endpoints stay in a modest band
    t8 = records["fig11_nr_8_machines"]["makespan_s"]
    t32 = records["fig11_nr_32_machines"]["makespan_s"]
    assert t32 <= 2.0 * t8
