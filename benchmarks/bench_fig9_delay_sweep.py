"""Figure 9 — impact of the cross-pod delay factor on NR, T2(2,1).

Paper shape: as the simulated cross-pod delay grows from 2x to 128x, the
bandwidth-aware improvement becomes more significant.
"""

from repro.bench.experiments import fig9_delay_sweep
from repro.bench.harness import ExperimentTable


def test_fig9_delay_sweep(benchmark, record):
    series = benchmark.pedantic(
        lambda: fig9_delay_sweep(delays=(2, 8, 32, 128)),
        rounds=1, iterations=1,
    )

    table = ExperimentTable(
        title="Figure 9: NR on T2(2,1), cross-pod delay sweep",
        columns=["oblivious", "bandwidth-aware", "improvement %"],
    )
    for delay, r in series.items():
        table.add_row(f"{delay}x", [round(r["oblivious"], 1),
                                    round(r["bandwidth-aware"], 1),
                                    round(r["improvement_pct"], 1)])
    record("fig9_delay_sweep", table.render())

    delays = sorted(series)
    # absolute times grow with the delay under the oblivious layout
    obl = [series[d]["oblivious"] for d in delays]
    assert obl == sorted(obl)
    # the bandwidth-aware advantage widens as the delay grows
    first = series[delays[0]]["improvement_pct"]
    last = series[delays[-1]]["improvement_pct"]
    assert last > first
    assert last >= 25.0
