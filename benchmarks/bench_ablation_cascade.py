"""Ablation: cascaded-propagation phase-length sensitivity.

Section 5.2 fixes the phase length at ``d_min``; this ablation sweeps the
phase length to show the saving saturates near it — shorter phases leave
savings on the table, longer ones cannot help vertices whose context
leaves the partition sooner.
"""

import numpy as np

from repro.bench.experiments import make_app
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import standard_workload
from repro.core.surfer import Surfer
from repro.propagation.cascade import (
    cascade_io_fractions,
    compute_cascade_info,
)
from repro.propagation.engine import PropagationEngine
from repro.runtime.scheduler import StageScheduler

ITERATIONS = 4


def _run_with_phase(workload, phase_length):
    surfer = workload.surfer("bandwidth-aware")
    surfer.cluster.reset()
    scheduler = StageScheduler(surfer.cluster, None, surfer.store)
    app = make_app("NR", "propagation")
    state = app.setup(surfer.pgraph)
    fractions = None
    if phase_length is not None:
        info = compute_cascade_info(surfer.pgraph)
        fractions = cascade_io_fractions(surfer.pgraph, info,
                                         phase_length)
    engine = PropagationEngine(
        surfer.pgraph, surfer.store, surfer.cluster,
        local_opts=True, values_io_fraction=fractions,
        assignment=surfer.assignment,
    )
    result = None
    for _ in range(ITERATIONS):
        combined, __ = engine.run_iteration(app, state, scheduler)
        app.update(state, combined)
    metrics = surfer.cluster.metrics()
    return app.finalize(state), metrics


def _run_all():
    workload = standard_workload()
    baseline_result, baseline = _run_with_phase(workload, None)
    rows = {"no cascading": {
        "disk": float(baseline.disk_bytes),
        "saving_pct": 0.0,
    }}
    for phase in (1, 2, 4, 8):
        result, metrics = _run_with_phase(workload, phase)
        assert np.allclose(result, baseline_result)
        rows[f"phase length {phase}"] = {
            "disk": float(metrics.disk_bytes),
            "saving_pct": 100.0 * (1 - metrics.disk_bytes
                                   / baseline.disk_bytes),
        }
    return rows


def test_ablation_cascade_phase_length(benchmark, record):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = ExperimentTable(
        title=f"Cascading phase-length sweep (NR, {ITERATIONS} iters)",
        columns=["disk bytes", "saving %"],
    )
    for label, r in rows.items():
        table.add_row(label, [int(r["disk"]),
                              round(r["saving_pct"], 2)])
    record("ablation_cascade", table.render())

    savings = [rows[f"phase length {p}"]["saving_pct"]
               for p in (1, 2, 4, 8)]
    # longer phases never save less
    assert all(a <= b + 1e-9 for a, b in zip(savings, savings[1:]))
    # and something is actually saved at realistic phase lengths
    assert savings[-1] > 1.0
