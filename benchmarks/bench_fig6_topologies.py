"""Figure 6 — bandwidth-aware placement across network topologies.

Paper shape: bandwidth-aware partitioning significantly improves
propagation on every uneven topology (up to 71 %), modestly on T1.
"""

from repro.bench.experiments import fig6_topologies
from repro.bench.harness import ExperimentTable


def test_fig6_topologies(benchmark, record):
    series = benchmark.pedantic(fig6_topologies, rounds=1, iterations=1)

    table = ExperimentTable(
        title="Figure 6: NR response time (s), placement comparison",
        columns=["oblivious", "bandwidth-aware", "improvement %"],
    )
    for topo, r in series.items():
        table.add_row(topo, [round(r["oblivious"], 1),
                             round(r["bandwidth-aware"], 1),
                             round(r["improvement_pct"], 1)])
    record("fig6_topologies", table.render())

    # strong wins on the tree topologies
    for topo in ("T2(2,1)", "T2(4,1)", "T2(4,2)"):
        assert series[topo]["improvement_pct"] >= 15.0, topo
    # never substantially worse anywhere
    for topo, r in series.items():
        assert r["improvement_pct"] >= -8.0, (topo, r)
    # the biggest absolute cost is on the slowest topology for both
    assert series["T2(2,1)"]["oblivious"] > series["T1"]["oblivious"]
