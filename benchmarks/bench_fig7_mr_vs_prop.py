"""Figure 7 — MapReduce vs. propagation per application.

Paper shape: propagation is 1.7–5.8x faster on every app except VDD
(parity), with 42.3–96 % less network I/O.
"""

from repro.apps import APP_ORDER
from repro.bench.experiments import fig7_mr_vs_prop
from repro.bench.harness import ExperimentTable


def test_fig7_mr_vs_prop(benchmark, workload, record):
    series = benchmark.pedantic(
        lambda: fig7_mr_vs_prop(workload), rounds=1, iterations=1
    )

    table = ExperimentTable(
        title="Figure 7: MapReduce vs propagation",
        columns=["prop time", "mr time", "speedup",
                 "prop net", "mr net", "net reduction %"],
    )
    for app, r in series.items():
        table.add_row(app, [round(r["prop_time"], 1),
                            round(r["mr_time"], 1),
                            round(r["speedup"], 2),
                            int(r["prop_net"]), int(r["mr_net"]),
                            round(r["net_reduction_pct"], 1)])
    record("fig7_mr_vs_prop", table.render())

    for app in APP_ORDER:
        r = series[app]
        if app == "VDD":
            # vertex-oriented task: parity, as the paper reports
            assert 0.7 <= r["speedup"] <= 1.5, r
        else:
            assert r["speedup"] >= 1.4, (app, r["speedup"])
            assert r["net_reduction_pct"] >= 40.0, (app, r)
    # the overall band roughly matches the paper's 1.7-5.8x
    speedups = [series[a]["speedup"] for a in APP_ORDER if a != "VDD"]
    assert max(speedups) <= 15.0
    assert min(speedups) >= 1.4
