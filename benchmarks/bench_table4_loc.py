"""Table 4 — developer-written UDF source lines per engine.

Paper shape: propagation UDFs are a small fraction of the MapReduce ones
for every edge-oriented application; VDD is small everywhere.
"""

from repro.apps import APP_ORDER
from repro.bench.experiments import table4_loc


def test_table4_loc(benchmark, record):
    table = benchmark.pedantic(table4_loc, rounds=1, iterations=1)
    record("table4_loc", table.render())

    ours_prop = dict(zip(table.columns, table.rows[0][1]))
    ours_mr = dict(zip(table.columns, table.rows[1][1]))
    for app in APP_ORDER:
        assert ours_prop[app] >= 1, app
        assert ours_mr[app] >= 1, app
        # propagation never needs more developer code than MapReduce
        assert ours_prop[app] <= ours_mr[app], app
    # and is strictly smaller in aggregate
    assert sum(ours_prop.values()) < 0.8 * sum(ours_mr.values())
