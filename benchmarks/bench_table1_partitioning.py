"""Table 1 — elapsed time of distributed partitioning per topology.

Paper: bandwidth-aware partitioning improves on ParMetis by 39–55 % on the
uneven topologies and ties it on the flat T1.
"""

from repro.bench.experiments import table1_partitioning


def test_table1_partitioning(benchmark, record):
    table = benchmark.pedantic(table1_partitioning, rounds=1, iterations=1)
    record("table1_partitioning", table.render())

    parmetis = dict(zip(table.columns, table.rows[0][1]))
    aware = dict(zip(table.columns, table.rows[1][1]))
    # identical on the flat topology
    assert aware["T1"] == parmetis["T1"]
    # large wins on every tree variant (paper band: 39-55 %)
    for topo in ("T2(2,1)", "T2(4,1)", "T2(4,2)"):
        improvement = 1 - aware[topo] / parmetis[topo]
        assert 0.30 <= improvement <= 0.70, (topo, improvement)
    # never worse anywhere
    for topo in table.columns:
        assert aware[topo] <= parmetis[topo] * 1.01
