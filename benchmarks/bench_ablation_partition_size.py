"""Ablation: the partition-size trade-off of principle P2.

The paper's P2: "a small partition size increases the number of levels of
the partition sketch, resulting in a large number of cross-partition
edges.  On the other hand, a large partition may not fit into the main
memory, which results in random disk I/O."  This sweep runs NR across
partition counts: few, huge partitions blow the memory budget (random-I/O
penalty); many, tiny partitions pay in cross-partition traffic — the
paper's chosen 2-per-machine default sits in the efficient middle.
"""

from repro.bench.experiments import make_app
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import (
    SCALED_LINK_BPS,
    Workload,
    make_cluster,
    standard_graph,
)
from repro.cluster.topology import t1

MACHINES = 32
PART_COUNTS = (8, 16, 32, 64, 128, 256)


def _run_all():
    graph = standard_graph()
    rows = {}
    for parts in PART_COUNTS:
        wl = Workload(graph=graph,
                      cluster=make_cluster(t1(MACHINES, SCALED_LINK_BPS)),
                      num_parts=parts, seed=2010)
        surfer = wl.surfer("bandwidth-aware")
        job = surfer.run_propagation(make_app("NR", "propagation"),
                                     iterations=1, local_opts=True)
        penalized = sum(
            1 for e in job.executions if e.task.disk_penalty > 1.0
        )
        rows[parts] = {
            "response": job.metrics.response_time,
            "ier": surfer.pgraph.inner_edge_ratio,
            "penalized_tasks": penalized,
        }
    return rows


def test_ablation_partition_size(benchmark, record):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = ExperimentTable(
        title="Partition-size sweep: NR on T1 (principle P2)",
        columns=["response (s)", "inner edge ratio %",
                 "memory-penalized tasks"],
    )
    for parts, r in rows.items():
        table.add_row(f"P={parts}", [
            round(r["response"], 1), round(100 * r["ier"], 1),
            r["penalized_tasks"],
        ])
    record("ablation_partition_size", table.render())

    # ier is monotone: more partitions, more cross edges (monotonicity)
    iers = [rows[p]["ier"] for p in PART_COUNTS]
    assert all(a >= b - 1e-9 for a, b in zip(iers, iers[1:]))
    # huge partitions trip the memory penalty; the default does not
    assert rows[PART_COUNTS[0]]["penalized_tasks"] > 0
    assert rows[64]["penalized_tasks"] == 0
    # the memory cliff is the dramatic side of the trade-off
    assert rows[PART_COUNTS[0]]["response"] > 2 * rows[64]["response"]
    # the paper's default (2 per machine) is within a few percent of the
    # best; at this scale the many-partitions side is flat rather than
    # rising (merged messages absorb the extra cross edges), so we assert
    # "never leave the plateau" instead of a strict U shape
    responses = {p: rows[p]["response"] for p in PART_COUNTS}
    best = min(responses.values())
    assert responses[64] <= 1.10 * best
