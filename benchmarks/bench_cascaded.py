"""Section 6.3 — cascaded multi-iteration propagation.

Paper shape: with a ~7 % V_k (k>=2) ratio, cascading improves 3-iteration
NR response by ~8 % and total disk I/O by ~12 %, identical results, and
the saving stays stable as iterations grow.
"""

from repro.bench.experiments import cascaded_propagation_experiment
from repro.bench.harness import ExperimentTable


def test_cascaded_propagation(benchmark, workload, record):
    result = benchmark.pedantic(
        lambda: cascaded_propagation_experiment(workload,
                                                iterations=(2, 3, 4)),
        rounds=1, iterations=1,
    )

    table = ExperimentTable(
        title=(f"Cascaded propagation (V_k ratio "
               f"{result['v_k_ratio']:.1%}, d_min {result['d_min']})"),
        columns=["plain time", "cascaded time", "time saving %",
                 "plain disk", "cascaded disk", "disk saving %"],
    )
    for iters, r in result["iterations"].items():
        table.add_row(f"{iters} iterations", [
            round(r["plain_time"], 1), round(r["cascaded_time"], 1),
            round(r["time_saving_pct"], 1),
            int(r["plain_disk"]), int(r["cascaded_disk"]),
            round(r["disk_saving_pct"], 1),
        ])
    record("cascaded_propagation", table.render())

    assert 0.0 < result["v_k_ratio"] < 1.0
    for iters, r in result["iterations"].items():
        # cascading never hurts and visibly cuts disk I/O
        assert r["disk_saving_pct"] > 2.0, (iters, r)
        assert r["time_saving_pct"] >= 0.0, (iters, r)
    # saving is stable (within a few points) across iteration counts
    savings = [r["disk_saving_pct"] for r in result["iterations"].values()]
    assert max(savings) - min(savings) < 15.0
