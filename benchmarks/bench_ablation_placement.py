"""Ablation: how much of the O4 win does each placement mechanism buy?

Decomposes the bandwidth-aware deployment into its three mechanisms —
sketch-driven sibling co-location, the intra-pod straggler-relief swaps,
and the dispatch-level replica rebalancing — by running NR under
placements with each disabled.
"""

import numpy as np

from repro.bench.experiments import make_app
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import (
    SCALED_LINK_BPS,
    cached_bisection,
    make_cluster,
    standard_graph,
)
from repro.cluster.topology import t1
from repro.core.bandwidth_aware import (
    bandwidth_aware_partition,
    oblivious_partition,
)
from repro.core.surfer import Surfer

NUM_PARTS = 64
MACHINES = 32


def _run_variant(graph, plan_builder, seed=2010):
    topology = t1(MACHINES, SCALED_LINK_BPS)
    data = cached_bisection(graph, NUM_PARTS, seed)
    plan = plan_builder(graph, topology, NUM_PARTS, seed=seed, data=data)
    surfer = Surfer(graph, make_cluster(topology), plan=plan, seed=seed)
    job = surfer.run_propagation(make_app("NR", "propagation"),
                                 iterations=1, local_opts=True)
    return {
        "response": job.metrics.response_time,
        "network": float(job.metrics.network_bytes),
    }


def _run_all():
    graph = standard_graph()
    return {
        "bandwidth-aware (full)": _run_variant(
            graph, bandwidth_aware_partition),
        "oblivious scatter": _run_variant(graph, oblivious_partition),
    }


def test_ablation_placement(benchmark, record):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = ExperimentTable(
        title="Placement ablation: NR on T1",
        columns=["response (s)", "network (B)"],
    )
    for label, r in rows.items():
        table.add_row(label, [round(r["response"], 1), int(r["network"])])
    record("ablation_placement", table.render())

    full = rows["bandwidth-aware (full)"]
    scatter = rows["oblivious scatter"]
    # co-location removes traffic (the straggler-relief swaps give some
    # of the raw reduction back in exchange for balance)
    assert full["network"] < scatter["network"]
    # and the refined placement also wins on makespan
    assert full["response"] < scatter["response"]
