"""Table 2 — response / total machine time, six apps × O1–O4 on T1.

Paper shapes: O2 beats O1 (3–17 %), local optimizations (O3/O4) beat
O1/O2 substantially, O1→O4 combined improvement 36–88 %, and VDD is
insensitive to the layout.
"""

from repro.apps import APP_ORDER


def test_table2_app_times(benchmark, app_matrix_tables, record):
    times, __ = benchmark.pedantic(lambda: app_matrix_tables,
                                   rounds=1, iterations=1)
    record("table2_app_times", times.render())

    for app in APP_ORDER:
        o1 = times.cell("O1", f"{app}.Res")
        o2 = times.cell("O2", f"{app}.Res")
        o3 = times.cell("O3", f"{app}.Res")
        o4 = times.cell("O4", f"{app}.Res")
        # layout awareness helps (VDD gets a parity tolerance: the paper
        # itself reports no layout benefit for vertex-oriented tasks)
        tol = 1.10 if app == "VDD" else 1.05
        assert o2 <= o1 * tol, (app, o1, o2)
        assert o4 <= o3 * tol, (app, o3, o4)
        # the full optimization stack always wins clearly
        assert o4 < o1, (app, o1, o4)
        # total machine time also improves O1 -> O4
        assert (times.cell("O4", f"{app}.Total")
                <= times.cell("O1", f"{app}.Total") * 1.02), app

    # combined O1->O4 improvement lands in a broad version of the
    # paper's 36-88 % band for at least half of the applications
    strong = sum(
        1 - times.cell("O4", f"{a}.Res") / times.cell("O1", f"{a}.Res")
        >= 0.15
        for a in APP_ORDER
    )
    assert strong >= 3
