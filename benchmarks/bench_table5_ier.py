"""Table 5 — inner edge ratio vs. number of partitions.

Paper shape (MSN): ier falls from 72.7 % at 16 partitions to 50.3 % at
128 (monotonicity of the partition sketch), and random partitioning stays
in single digits.
"""

from repro.bench.experiments import table5_ier


def test_table5_ier(benchmark, record):
    table = benchmark.pedantic(table5_ier, rounds=1, iterations=1)
    record("table5_ier", table.render())

    ours = table.rows[0][1]      # columns: 128, 64, 32, 16
    random_ier = table.rows[1][1]
    # monotone: fewer partitions keep more edges internal
    assert ours == sorted(ours)
    # graph partitioning dominates random partitioning everywhere
    for got, rand in zip(ours, random_ier):
        assert got > rand + 20.0, (got, rand)
    # the 64-partition default sits in the paper's ballpark (57.7 %)
    assert 40.0 <= ours[1] <= 80.0
