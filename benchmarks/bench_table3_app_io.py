"""Table 3 — network and disk I/O, six apps × O1–O4 on T1.

Paper shapes: local optimizations cut network I/O by 30–95 % and disk I/O
substantially; bandwidth-aware layout reduces network I/O further by
co-locating sibling partitions (O2 < O1, O4 < O3).
"""

from repro.apps import APP_ORDER


def test_table3_app_io(benchmark, app_matrix_tables, record):
    __, io = benchmark.pedantic(lambda: app_matrix_tables,
                                rounds=1, iterations=1)
    record("table3_app_io", io.render())

    for app in APP_ORDER:
        net = {o: io.cell(o, f"{app}.Net") for o in ("O1", "O2", "O3", "O4")}
        disk = {o: io.cell(o, f"{app}.Disk")
                for o in ("O1", "O2", "O3", "O4")}
        # layout co-location can only remove traffic; hash-routed VDD is
        # placement-insensitive, so its traffic just fluctuates slightly
        tol = 1.15 if app == "VDD" else 1.0
        assert net["O2"] <= net["O1"] * tol, app
        assert net["O4"] <= net["O3"] * tol, app
        # local optimizations never increase traffic and strictly cut disk
        assert net["O3"] <= net["O1"], app
        assert disk["O3"] < disk["O1"], app
        assert disk["O4"] <= disk["O2"], app

    # edge-oriented apps see a strong combined network reduction; TC's
    # combine is non-associative, so only the layout co-location helps it
    for app in ("RS", "NR", "RLG", "TC", "TFL"):
        o1 = io.cell("O1", f"{app}.Net")
        o4 = io.cell("O4", f"{app}.Net")
        floor = 0.10 if app == "TC" else 0.30
        assert 1 - o4 / o1 >= floor, (app, o1, o4)
