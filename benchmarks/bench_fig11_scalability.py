"""Figure 11 — scalability: machines and graph size scaled together.

Paper shape: as machines grow 8 -> 32 with proportionally larger graphs,
the response time stays roughly flat (slightly decreasing) — good weak
scalability.
"""

from repro.bench.experiments import fig11_scalability
from repro.bench.harness import ExperimentTable


def test_fig11_scalability(benchmark, record):
    series = benchmark.pedantic(fig11_scalability, rounds=1, iterations=1)

    table = ExperimentTable(
        title="Figure 11: P-Surfer NR weak scaling",
        columns=["machines", "response (s)"],
    )
    for m, t in series.items():
        table.add_row(str(m), [m, round(t, 1)])
    record("fig11_scalability", table.render())

    times = [series[m] for m in sorted(series)]
    # weak scaling: response stays within a modest band
    assert max(times) <= 2.0 * min(times)
    # no runaway growth towards larger clusters
    assert times[-1] <= 1.7 * times[0]
