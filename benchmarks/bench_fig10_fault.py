"""Figure 10 — fault tolerance: kill a slave mid-run.

Paper shape: the job manager re-executes the lost tasks on another slave;
the recovered run produces the same result with ~10 % overhead, visible
as a dip plus a late bump in the disk-I/O-rate timeline.
"""

import numpy as np

from repro.bench.experiments import fig10_fault_tolerance
from repro.bench.harness import ExperimentTable


def test_fig10_fault_tolerance(benchmark, workload, record):
    result = benchmark.pedantic(
        lambda: fig10_fault_tolerance(workload), rounds=1, iterations=1
    )

    table = ExperimentTable(
        title=(f"Figure 10: NR with machine {result['victim']} killed at "
               f"t={result['kill_time']:.0f}s"),
        columns=["response (s)", "failures"],
    )
    table.add_row("normal run", [round(result["normal_response"], 1), 0])
    table.add_row("with failure", [round(result["faulty_response"], 1),
                                   result["failures"] + result["retries"]])
    table.notes.append(
        f"recovery overhead {result['overhead_pct']:.1f}% "
        "(paper reports ~10%)"
    )
    record("fig10_fault_tolerance", table.render())

    assert result["failures"] + result["retries"] >= 1
    # recovery costs something but stays moderate (paper: ~10 %)
    assert 0.0 < result["overhead_pct"] < 60.0
    # the faulty run keeps doing I/O after the kill (re-execution tail)
    times, rates = result["faulty_timeline"]
    after_kill = rates[times >= result["kill_time"]]
    assert after_kill.size > 0 and np.any(after_kill > 0)
    # and it finishes later than the normal run
    assert result["faulty_response"] > result["normal_response"]
