"""Figure 10 — fault tolerance: kill a slave mid-run.

Paper shape: the job manager re-executes the lost tasks on another slave;
the recovered run produces the same result with ~10 % overhead, visible
as a dip plus a late bump in the disk-I/O-rate timeline.
"""

import numpy as np

from repro.bench.experiments import fault_scenario_sweep, fig10_fault_tolerance
from repro.bench.harness import ExperimentTable


def test_fig10_fault_tolerance(benchmark, workload, record):
    result = benchmark.pedantic(
        lambda: fig10_fault_tolerance(workload), rounds=1, iterations=1
    )

    table = ExperimentTable(
        title=(f"Figure 10: NR with machine {result['victim']} killed at "
               f"t={result['kill_time']:.0f}s"),
        columns=["response (s)", "failures"],
    )
    table.add_row("normal run", [round(result["normal_response"], 1), 0])
    table.add_row("with failure", [round(result["faulty_response"], 1),
                                   result["failures"] + result["retries"]])
    table.notes.append(
        f"recovery overhead {result['overhead_pct']:.1f}% "
        "(paper reports ~10%)"
    )
    record("fig10_fault_tolerance", table.render())

    assert result["failures"] + result["retries"] >= 1
    # recovery costs something but stays moderate (paper: ~10 %)
    assert 0.0 < result["overhead_pct"] < 60.0
    # the faulty run keeps doing I/O after the kill (re-execution tail)
    times, rates = result["faulty_timeline"]
    after_kill = rates[times >= result["kill_time"]]
    assert after_kill.size > 0 and np.any(after_kill > 0)
    # and it finishes later than the normal run
    assert result["faulty_response"] > result["normal_response"]


def test_fault_scenario_sweep(benchmark, workload, record):
    """Fault-tolerance v2 sweep: kills, transients, stragglers, double kill."""
    result = benchmark.pedantic(
        lambda: fault_scenario_sweep(workload), rounds=1, iterations=1
    )

    table = ExperimentTable(
        title=(f"Fault scenarios: NR, victim machine {result['victim']} "
               f"(baseline {result['baseline_response']:.0f}s)"),
        columns=["response (s)", "overhead (%)", "completed",
                 "re-repl (B)", "recovery events"],
    )
    base = result["baseline_response"]
    for name, s in result["scenarios"].items():
        events = ", ".join(f"{k}={v}" for k, v in sorted(s["events"].items()))
        table.add_row(name, [
            round(s["response"], 1),
            round(100.0 * (s["response"] - base) / base, 1),
            "yes" if s["completed"] else "NO",
            s["re_replication_bytes"],
            events or "-",
        ])
    table.notes.append(
        "transient faults keep disk state; kills trigger background "
        "re-replication; straggler-spec enables speculative backups"
    )
    record("fault_scenario_sweep", table.render())

    scenarios = result["scenarios"]
    # every scenario recovers and reproduces the baseline result
    assert all(s["completed"] for s in scenarios.values())
    # double failure under replication=3 survives and repairs both losses
    assert scenarios["double-kill"]["re_replication_bytes"] > 0
    assert scenarios["double-kill"]["events"]["machine-down"] == 2
    # the pipelined drain now handles faults too
    assert scenarios["kill-pipelined"]["completed"]
    assert scenarios["kill-pipelined"]["events"].get("redispatch", 0) >= 1
    # transient faults recover without touching storage
    assert scenarios["transient"]["events"].get("machine-recovered") == 1
    assert scenarios["transient"]["re_replication_bytes"] == 0
    # speculative execution shortens the straggler makespan
    assert (scenarios["straggler-spec"]["response"]
            < scenarios["straggler"]["response"])
    assert scenarios["straggler-spec"]["events"].get("spec-win", 0) >= 1
