"""Ablation: serial job manager vs. pipelined (flow-shop) execution.

The paper's job manager dispatches one task at a time per slave
(Appendix B).  Real engines overlap I/O with communication; this ablation
measures how much elapsed time that overlap buys — with results, byte
counters and total machine time provably identical, only the schedule
changes.
"""

import numpy as np

from repro.apps import APP_ORDER
from repro.bench.experiments import default_iterations, make_app
from repro.bench.harness import ExperimentTable
from repro.bench.workloads import standard_workload


def _run_all():
    workload = standard_workload()
    surfer = workload.surfer("bandwidth-aware")
    rows = {}
    for name in ("NR", "RLG", "TFL"):
        iters = default_iterations(name)
        serial = surfer.run_propagation(
            make_app(name, "propagation"), iterations=iters,
        )
        piped = surfer.run_propagation(
            make_app(name, "propagation"), iterations=iters,
            pipelined=True,
        )
        assert serial.metrics.disk_bytes == piped.metrics.disk_bytes
        rows[name] = {
            "serial": serial.metrics.response_time,
            "pipelined": piped.metrics.response_time,
            "speedup": (serial.metrics.response_time
                        / max(piped.metrics.response_time, 1e-12)),
        }
    return rows


def test_ablation_pipelining(benchmark, record):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = ExperimentTable(
        title="Pipelined vs serial job manager (bandwidth-aware, O4)",
        columns=["serial (s)", "pipelined (s)", "speedup"],
    )
    for name, r in rows.items():
        table.add_row(name, [round(r["serial"], 1),
                             round(r["pipelined"], 1),
                             round(r["speedup"], 2)])
    record("ablation_pipelining", table.render())

    for name, r in rows.items():
        # overlap can only help, and is bounded by the 4-lane flow shop
        assert 1.0 <= r["speedup"] <= 4.0, (name, r)
    # at least one workload shows a real win
    assert max(r["speedup"] for r in rows.values()) >= 1.1
