"""Ablations of the multilevel partitioner's design choices.

Not a paper table — these quantify the choices DESIGN.md section 6 calls
out: GGGP vs random initial bisection, FM refinement on/off, and the
k-way balance pass, all measured by inner edge ratio and balance on the
standard graph.
"""

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.bench.workloads import standard_graph
from repro.partitioning.bisect import BisectionOptions
from repro.partitioning.metrics import inner_edge_ratio
from repro.partitioning.recursive import recursive_bisection
from repro.partitioning.wgraph import WGraph

NUM_PARTS = 32


def _run_all():
    graph = standard_graph()
    wgraph = WGraph.from_digraph(graph)
    variants = {
        "full (GGGP + FM + k-way)": dict(
            options=BisectionOptions(), kway_tolerance=0.05),
        "no FM refinement": dict(
            options=BisectionOptions(refine=False), kway_tolerance=0.05),
        "random initial bisection": dict(
            options=BisectionOptions(initial="random"),
            kway_tolerance=0.05),
        "no k-way balance pass": dict(
            options=BisectionOptions(), kway_tolerance=None),
    }
    rows = {}
    for label, kwargs in variants.items():
        rp = recursive_bisection(wgraph, NUM_PARTS, seed=7, **kwargs)
        weights = np.zeros(NUM_PARTS)
        np.add.at(weights, rp.parts, wgraph.vweights.astype(float))
        rows[label] = {
            "ier": 100 * inner_edge_ratio(graph, rp.parts),
            "imbalance": float(weights.max()
                               / (weights.sum() / NUM_PARTS)),
        }
    return rows


def test_ablation_partitioner(benchmark, record):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = ExperimentTable(
        title=f"Partitioner ablation ({NUM_PARTS} partitions)",
        columns=["inner edge ratio %", "max/ideal weight"],
    )
    for label, r in rows.items():
        table.add_row(label, [round(r["ier"], 1),
                              round(r["imbalance"], 3)])
    record("ablation_partitioner", table.render())

    full = rows["full (GGGP + FM + k-way)"]
    # FM refinement buys substantial cut quality
    assert full["ier"] >= rows["no FM refinement"]["ier"]
    # GGGP beats a random initial bisection (FM recovers some of it)
    assert full["ier"] >= rows["random initial bisection"]["ier"] - 2.0
    # the k-way pass trades a little cut for much tighter balance
    assert full["imbalance"] <= rows["no k-way balance pass"]["imbalance"]
    assert full["imbalance"] <= 1.10
