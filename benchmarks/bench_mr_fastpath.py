"""MapReduce fast path — scalar vs. vectorized + combiner benchmark.

Not a paper figure: this guards the array-at-a-time MapReduce round
(docs/COST_MODEL.md, "Vectorized MapReduce fast path").  It times the
full fig7-scale NR MapReduce job (the 32-machine / 64-partition standard
workload) under both implementations, checks the job products are
bit-identical, measures the map-side combiner's shuffle reduction on the
naive per-edge NR formulation, and persists everything as
``BENCH_PR4.json`` (repro-bench/v1) at the repo root.
"""

from __future__ import annotations

import pathlib

from repro.apps import NetworkRankingMapReduce
from repro.bench.benchjson import (
    job_record,
    load_bench_json,
    validate_bench_json,
    write_bench_json,
)
from repro.bench.experiments import default_iterations, make_app
from repro.bench.harness import ExperimentTable
from repro.bench.runner import timed_job as _timed
from repro.runtime.events import reconcile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PR4.json"

#: CI floor — local runs see ~3.5-4x (recorded in results/); anything
#: below this means the fast path stopped being fast.
MIN_SPEEDUP = 3.0
ROUNDS = 5


def _job_signature(job):
    reports = [
        (r.map_records, r.shuffle_records, r.shuffle_bytes,
         r.shuffle_bytes_precombine, r.network_bytes)
        for r in job.reports
    ]
    tasks = [
        (e.task.name, e.task.cpu_ops, e.task.disk_read_bytes,
         e.task.disk_write_bytes, tuple(e.task.sends),
         tuple(e.task.receives), e.task.disk_penalty)
        for e in job.executions
    ]
    metrics = (job.metrics.network_bytes, job.metrics.disk_bytes,
               job.metrics.response_time)
    return reports, tasks, metrics


def test_mr_fastpath(benchmark, workload, record):
    surfer = workload.surfer("bandwidth-aware")
    iters = default_iterations("NR")

    def run():
        best = {"scalar": float("inf"), "vec": float("inf")}
        jobs = {}
        # rounds are interleaved so clock-frequency drift hits both
        # implementations alike
        for _ in range(ROUNDS):
            for key, vectorized in (("scalar", False), ("vec", True)):
                job, elapsed = _timed(lambda v=vectorized: surfer.run_mapreduce(
                    NetworkRankingMapReduce(), rounds=iters, vectorized=v))
                if elapsed < best[key]:
                    best[key], jobs[key] = elapsed, job
        return best, jobs

    best, jobs = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = best["scalar"] / best["vec"]

    # identical job products: outputs, round counters, per-task costs
    assert jobs["scalar"].result.tobytes() == jobs["vec"].result.tobytes()
    assert _job_signature(jobs["scalar"]) == _job_signature(jobs["vec"])
    assert reconcile(jobs["vec"]) == []

    records = {
        "fig7_nr_mr_scalar": job_record(jobs["scalar"], best["scalar"]),
        "fig7_nr_mr_fastpath": job_record(jobs["vec"], best["vec"]),
    }

    # -- combiner: naive per-edge NR, with and without map-side folds ---
    naive, wall = _timed(lambda: surfer.run_mapreduce(
        NetworkRankingMapReduce(in_map_combining=False), rounds=iters))
    records["fig7_nr_mr_naive"] = job_record(naive, wall)
    combined, wall = _timed(lambda: surfer.run_mapreduce(
        NetworkRankingMapReduce(in_map_combining=False), rounds=iters,
        combiner=True))
    assert reconcile(combined) == []
    records["fig7_nr_mr_combiner"] = job_record(combined, wall)
    rep = combined.reports[0]
    reduction = rep.combine_reduction

    # -- the Figure 7 comparison point: propagation on the same workload
    prop, wall = _timed(lambda: surfer.run_propagation(
        make_app("NR", "propagation"), iterations=iters, local_opts=True))
    records["fig7_nr_propagation"] = job_record(prop, wall)

    doc = write_bench_json(BENCH_PATH, records, pr="PR4")
    assert validate_bench_json(load_bench_json(BENCH_PATH)) == []

    table = ExperimentTable(
        title="MapReduce round: scalar vs. vectorized (NR, fig7-scale "
              f"workload, {surfer.graph.num_edges} edges, "
              f"{surfer.num_parts} partitions)",
        columns=["job wall (ms)", "speedup", "shuffle B", "network B"],
    )
    table.add_row("scalar (before)", [
        round(best["scalar"] * 1000, 1), 1.0,
        int(jobs["scalar"].reports[0].shuffle_bytes),
        int(jobs["scalar"].metrics.network_bytes)])
    table.add_row("vectorized (after)", [
        round(best["vec"] * 1000, 1), round(speedup, 2),
        int(jobs["vec"].reports[0].shuffle_bytes),
        int(jobs["vec"].metrics.network_bytes)])
    table.add_row("naive map, no combiner", [
        round(records["fig7_nr_mr_naive"]["wall_clock_s"] * 1000, 1), "",
        int(naive.reports[0].shuffle_bytes),
        int(naive.metrics.network_bytes)])
    table.add_row("naive map + combiner", [
        round(records["fig7_nr_mr_combiner"]["wall_clock_s"] * 1000, 1), "",
        int(rep.shuffle_bytes),
        int(combined.metrics.network_bytes)])
    table.add_row("propagation (Figure 7 rival)", [
        round(records["fig7_nr_propagation"]["wall_clock_s"] * 1000, 1), "",
        "", int(prop.metrics.network_bytes)])
    table.notes.append(
        "best of %d interleaved rounds; job products verified "
        "bit-identical" % ROUNDS)
    table.notes.append(
        "combiner cuts {:.1f}% of the naive shuffle ({:,.0f} -> {:,.0f} B)"
        " yet propagation still ships {:.2f}x less than combined MR".format(
            100.0 * reduction, rep.shuffle_bytes_precombine,
            rep.shuffle_bytes,
            combined.metrics.network_bytes / prop.metrics.network_bytes))
    record("mr_fastpath", table.render())

    # the combiner must shrink the wire volume, but not below
    # propagation's: the (R-1)/R structural handicap shrinks, not vanishes
    assert combined.metrics.network_bytes < naive.metrics.network_bytes
    assert prop.metrics.network_bytes < combined.metrics.network_bytes
    assert 0.0 < reduction < 1.0
    assert speedup >= MIN_SPEEDUP
