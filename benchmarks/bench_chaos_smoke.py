"""PR 6 — chaos smoke: seeded fault sweep with checkpoint/restore.

A small, strictly-budgeted version of the chaos sweep the test suite
runs: one workload (NR propagation, replication 1 — the configuration
where any primary kill defeats replica promotion and forces a job-level
restart) under a fixed-seed batch of random fault schedules.  Asserts
the recovery invariant (every schedule bit-identical or a clean
failure, zero violations, restart actually exercised) and persists
``BENCH_PR6.json`` at the repo root — baseline vs most-restarted run,
so the recovery overhead is diffable across PRs.
"""

from __future__ import annotations

import pathlib

from repro.bench.benchjson import job_record, write_bench_json
from repro.bench.runner import timed_job
from repro.graph.generators import composite_social_graph
from repro.runtime.chaos import run_chaos_sweep, surfer_factory
from repro.runtime.checkpoint import CheckpointPolicy
from tests.conftest import make_test_cluster

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PR6.json"

SCHEDULES = 12
SEED = 2010
WALL_BUDGET_S = 120.0


def test_bench_chaos_smoke(record):
    from repro.bench.experiments import make_app

    graph = composite_social_graph(num_communities=4, community_size=32,
                                   k=4, seed=7)
    make_surfer = surfer_factory(graph, lambda: make_test_cluster(8),
                                 num_parts=8, replication=1, seed=3)
    policy = CheckpointPolicy(interval=1)

    def run_job(surfer, plan):
        return surfer.run_propagation(
            make_app("NR", "propagation"), iterations=4, fault_plan=plan,
            checkpoint=policy if plan is not None else None,
        )

    report, wall = timed_job(
        lambda: run_chaos_sweep(make_surfer, run_job, SCHEDULES, SEED))

    assert report.ok, report.summary()
    assert len(report.outcomes) == SCHEDULES
    assert report.total_restarts > 0, \
        "smoke sweep never exercised a job-level restart"
    assert wall < WALL_BUDGET_S, \
        f"chaos smoke blew its wall-time budget: {wall:.1f}s"

    # per-job walls from inside the sweep — stamping the whole-sweep
    # wall on both records made baseline and restarted identical in
    # the bench JSON, hiding the recovery wall-clock cost
    assert report.baseline_wall_s > 0.0
    records = {"chaos_nr_baseline": job_record(report.baseline,
                                               report.baseline_wall_s)}
    if report.restarted_job is not None:
        assert report.restarted_wall_s > 0.0
        assert report.restarted_wall_s != report.baseline_wall_s
        records["chaos_nr_restarted"] = job_record(
            report.restarted_job, report.restarted_wall_s)
        # recovery cost must be visible: restarted runs pay backoff,
        # restore I/O and recomputation on top of the baseline
        assert (records["chaos_nr_restarted"]["makespan_s"]
                > records["chaos_nr_baseline"]["makespan_s"])
    write_bench_json(BENCH_PATH, records, pr="PR6")
    record("chaos_smoke", report.summary())
