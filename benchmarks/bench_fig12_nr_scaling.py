"""Figure 12 — NR: MapReduce vs. propagation across cluster sizes.

Paper shape: propagation is 4.6–7.8x faster than MapReduce at every
cluster size from 8 to 32 machines.
"""

from repro.bench.experiments import fig12_nr_scaling
from repro.bench.harness import ExperimentTable


def test_fig12_nr_scaling(benchmark, record):
    series = benchmark.pedantic(fig12_nr_scaling, rounds=1, iterations=1)

    table = ExperimentTable(
        title="Figure 12: NR, MapReduce vs P-Surfer per cluster size",
        columns=["prop time", "mr time", "speedup"],
    )
    for m, r in series.items():
        table.add_row(f"{m} machines", [round(r["prop_time"], 1),
                                        round(r["mr_time"], 1),
                                        round(r["speedup"], 2)])
    record("fig12_nr_scaling", table.render())

    for m, r in series.items():
        assert r["speedup"] >= 1.4, (m, r)
    # propagation wins at every size; the gap never collapses
    speedups = [series[m]["speedup"] for m in sorted(series)]
    assert min(speedups) >= 1.4
    assert max(speedups) <= 12.0
