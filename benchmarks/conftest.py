"""Shared fixtures for the per-table/figure benchmark harness.

Each benchmark regenerates one table or figure of the paper, prints it in
the paper's row/column arrangement, writes it under
``benchmarks/results/`` and asserts the paper's qualitative *shape* (who
wins, roughly by how much).  Absolute numbers are simulator-scale, not
testbed-scale.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.experiments import app_matrix
from repro.bench.workloads import standard_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def workload():
    """The shared 32-machine / 64-partition T1 workload."""
    return standard_workload()


@pytest.fixture(scope="session")
def app_matrix_tables(workload):
    """Tables 2 and 3 computed once per session (they share all runs)."""
    return app_matrix(workload)


@pytest.fixture(scope="session")
def record():
    """Persist a rendered experiment result and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                 encoding="utf-8")
        print(f"\n{text}")

    return _record
