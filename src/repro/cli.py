"""Command-line interface: run jobs and regenerate experiments.

``python -m repro <command>``:

* ``run`` — deploy a synthetic graph and run one application on a chosen
  topology/primitive, printing metrics and the utilization report;
* ``profile`` — like ``run``, but with full observability: writes a
  Chrome-trace JSON (chrome://tracing, Perfetto), prints the metrics
  registry, verifies the trace reconciles with the cluster counters and
  optionally records a ``repro-bench/v1`` JSON;
* ``chaos`` — run a seeded randomized fault-schedule sweep against one
  application with checkpoint/restore enabled, verifying every schedule
  ends bit-identical to the fault-free baseline or as a cleanly-reported
  failure (exit 1 on any violation);
* ``bench`` — run a declarative benchmark suite (``smoke``/``paper``/
  ``full``) from the committed TOML experiment configs, emit
  ``repro-bench/v1`` JSON plus the cross-PR trajectory report, and
  optionally gate on regressions against the committed baselines;
* ``experiment`` — regenerate one of the paper's tables/figures;
* ``partition`` — partition a graph and save the plan to a ``.npz`` file;
* ``info`` — describe a saved plan;
* ``graphinfo`` — profile a synthetic or edge-list graph;
* ``store`` — stream a generator into an on-disk sharded CSR store
  (``store build``) or describe an existing one (``store info``).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.apps import APP_ORDER, EXTENSION_APPS

_TOPOLOGIES = ("T1", "T2(2,1)", "T2(4,1)", "T2(4,2)", "T3")
_EXPERIMENTS = (
    "table1", "table2", "table3", "table4", "table5",
    "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "cascade",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Surfer reproduction: large graph processing in the "
                    "cloud (SIGMOD 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_job_options(p) -> None:
        p.add_argument("app",
                       choices=list(APP_ORDER) + list(EXTENSION_APPS))
        p.add_argument("--engine", choices=("propagation", "mapreduce"),
                       default="propagation")
        p.add_argument("--frontier", action="store_true",
                       help="sparse active-set propagation: Transfer "
                            "scans only frontier vertices "
                            "(propagation engine, frontier apps only)")
        p.add_argument("--topology", choices=_TOPOLOGIES, default="T1")
        p.add_argument("--layout",
                       choices=("bandwidth-aware", "oblivious"),
                       default="bandwidth-aware")
        p.add_argument("--machines", type=int, default=16)
        p.add_argument("--parts", type=int, default=32)
        p.add_argument("--iterations", type=int, default=None)
        p.add_argument("--communities", type=int, default=16)
        p.add_argument("--community-size", type=int, default=256)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-local-opts", action="store_true")
        p.add_argument("--replication", type=int, default=3,
                       help="partition replication factor (default 3)")
        p.add_argument("--checkpoint-interval", type=int, default=0,
                       help="checkpoint every N supersteps/rounds and "
                            "restart from checkpoint on data loss "
                            "(0 = disabled)")
        p.add_argument("--max-restarts", type=int, default=3,
                       help="job-level restart budget (with "
                            "--checkpoint-interval)")
        p.add_argument("--kill", action="append", default=[],
                       metavar="M@T",
                       help="kill machine M at simulated time T "
                            "(repeatable), e.g. --kill 3@10.5")
        p.add_argument("--sanitize", action="store_true",
                       help="run under SimSan: BSP write-race detection, "
                            "shadow-counter conservation and span-frame "
                            "checks (observe-only; also enabled by "
                            "REPRO_SANITIZE=1)")

    run = sub.add_parser("run", help="run one application")
    add_job_options(run)

    prof = sub.add_parser(
        "profile",
        help="run one application with full observability "
             "(Chrome trace, metrics, bench JSON)",
    )
    add_job_options(prof)
    prof.add_argument("--trace", default=None,
                      help="Chrome-trace JSON output path "
                           "(default trace_<app>.json)")
    prof.add_argument("--bench", default=None,
                      help="also write a repro-bench/v1 JSON of this run "
                           "to the given path")
    prof.add_argument("--bench-name", default=None,
                      help="workload name in the bench JSON "
                           "(default profile_<app>_<engine>)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded randomized fault-schedule sweep with "
             "checkpoint/restore (recovery invariant check)",
    )
    chaos.add_argument("app",
                       choices=list(APP_ORDER) + list(EXTENSION_APPS))
    chaos.add_argument("--engine", choices=("propagation", "mapreduce"),
                       default="propagation")
    chaos.add_argument("--frontier", action="store_true",
                       help="sparse active-set propagation "
                            "(propagation engine, frontier apps only)")
    chaos.add_argument("--topology", choices=_TOPOLOGIES, default="T1")
    chaos.add_argument("--layout",
                       choices=("bandwidth-aware", "oblivious"),
                       default="bandwidth-aware")
    chaos.add_argument("--machines", type=int, default=8)
    chaos.add_argument("--parts", type=int, default=16)
    chaos.add_argument("--iterations", type=int, default=None)
    chaos.add_argument("--communities", type=int, default=4)
    chaos.add_argument("--community-size", type=int, default=32)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--replication", type=int, default=2,
                       help="replication factor (low values force "
                            "job-level restarts; default 2)")
    chaos.add_argument("--schedules", type=int, default=50,
                       help="random fault schedules to run (default 50)")
    chaos.add_argument("--checkpoint-interval", type=int, default=1)
    chaos.add_argument("--max-restarts", type=int, default=3)
    chaos.add_argument("--bench", default=None,
                       help="write a repro-bench/v1 JSON of the sweep "
                            "(baseline + most-restarted schedule)")

    exp = sub.add_parser("experiment",
                         help="regenerate a paper table/figure")
    exp.add_argument("name", choices=_EXPERIMENTS)

    part = sub.add_parser("partition",
                          help="partition a synthetic graph, save the plan")
    part.add_argument("output", help="plan file (.npz)")
    part.add_argument("--topology", choices=_TOPOLOGIES, default="T1")
    part.add_argument("--machines", type=int, default=16)
    part.add_argument("--parts", type=int, default=32)
    part.add_argument("--layout",
                      choices=("bandwidth-aware", "oblivious"),
                      default="bandwidth-aware")
    part.add_argument("--communities", type=int, default=16)
    part.add_argument("--community-size", type=int, default=256)
    part.add_argument("--seed", type=int, default=0)

    info = sub.add_parser("info", help="describe a saved plan")
    info.add_argument("plan", help="plan file (.npz)")

    ginfo = sub.add_parser("graphinfo",
                           help="profile a synthetic or edge-list graph")
    ginfo.add_argument("--edge-list", default=None,
                       help="read the graph from an edge-list file")
    ginfo.add_argument("--communities", type=int, default=16)
    ginfo.add_argument("--community-size", type=int, default=256)
    ginfo.add_argument("--seed", type=int, default=0)
    ginfo.add_argument("--no-ier", action="store_true",
                       help="skip the (slow) partition-quality curve")

    store = sub.add_parser(
        "store",
        help="build or inspect an on-disk sharded CSR graph store "
             "(the out-of-core XL path)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    sbuild = store_sub.add_parser(
        "build",
        help="stream a synthetic generator into a shard store without "
             "materializing the edge set in RAM",
    )
    sbuild.add_argument("output", help="store directory to create")
    sbuild.add_argument("--kind",
                        choices=("rmat", "small-world", "web"),
                        default="rmat")
    sbuild.add_argument("--shards", type=int, default=8,
                        help="shard count (match the planned partition "
                             "count so partitions alias shards)")
    sbuild.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale: n = 2^scale")
    sbuild.add_argument("--edge-factor", type=int, default=8,
                        help="R-MAT edges per vertex (before dedup)")
    sbuild.add_argument("--vertices", type=int, default=4096,
                        help="small-world vertex count")
    sbuild.add_argument("--k", type=int, default=4,
                        help="small-world out-degree")
    sbuild.add_argument("--rewire-p", type=float, default=0.05,
                        help="small-world rewire probability")
    sbuild.add_argument("--core", type=int, default=32,
                        help="web-feeder core size")
    sbuild.add_argument("--feeders", type=int, default=480,
                        help="web-feeder feeder count")
    sbuild.add_argument("--seed", type=int, default=0)
    sinfo = store_sub.add_parser("info",
                                 help="describe an existing shard store")
    sinfo.add_argument("path", help="store directory")

    bench = sub.add_parser(
        "bench",
        help="run a config-driven benchmark suite, render the cross-PR "
             "trajectory and (optionally) gate against the committed "
             "BENCH_PR*.json baselines",
    )
    bench.add_argument("--suite", choices=("smoke", "paper", "full"),
                       default="smoke",
                       help="which experiment tier to run (default smoke)")
    bench.add_argument("--configs", default=None,
                       help="experiment config directory (default: the "
                            "committed src/repro/bench/configs)")
    bench.add_argument("--repetitions", type=int, default=None,
                       help="override every config's min-of-N "
                            "wall-clock sampling count")
    bench.add_argument("--json", dest="json_path", default=None,
                       help="repro-bench/v1 output path "
                            "(default bench_<suite>.json)")
    bench.add_argument("--report", default=None,
                       help="markdown trajectory report path "
                            "(default bench_<suite>_trajectory.md)")
    bench.add_argument("--html", default=None,
                       help="also write the trajectory as a "
                            "self-contained HTML page")
    bench.add_argument("--gate", action="store_true",
                       help="fail (exit 1) on any metric regression "
                            "beyond tolerance vs the latest committed "
                            "baseline")
    bench.add_argument("--bless", default=None, metavar="PRTAG",
                       help="write this run as BENCH_<PRTAG>.json at "
                            "the repo root (the new baseline), "
                            "e.g. --bless PR7")
    bench.add_argument("--root", default=".",
                       help="directory holding the BENCH_PR*.json "
                            "history (default: cwd)")
    bench.add_argument("--list", action="store_true",
                       help="list the discovered configs and exit")
    bench.add_argument("--sanitize", action="store_true",
                       help="run every workload under SimSan (sets "
                            "REPRO_SANITIZE=1 for the suite); any "
                            "violation fails the run")

    check = sub.add_parser(
        "check",
        help="run the domain-aware static-analysis gate "
             "(determinism lints, UDF contracts, counter conservation, "
             "typing)",
    )
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files/directories to scan (default: src)")
    check.add_argument("--json", dest="json_path", default=None,
                       help="write the repro-check/v1 findings document "
                            "to this path")
    check.add_argument("--contracts", dest="contracts",
                       action="store_true", default=True,
                       help="verify UDF contracts dynamically over the "
                            "app registries (default; includes VDD's "
                            "virtual-vertex combine path)")
    check.add_argument("--no-contracts", dest="contracts",
                       action="store_false",
                       help="skip the dynamic UDF contract verification")
    check.add_argument("--mypy", action="store_true",
                       help="also run mypy with the pyproject config "
                            "(skips cleanly when mypy is not installed)")
    return parser


def _make_topology(name: str, machines: int):
    from repro.bench.workloads import topology_by_name

    return topology_by_name(name, machines)


def _make_graph(args, symmetrize: bool = False):
    from repro.graph.generators import composite_social_graph

    graph = composite_social_graph(
        num_communities=args.communities,
        community_size=args.community_size,
        seed=args.seed,
    )
    return graph.symmetrized() if symmetrize else graph


def _deploy_and_run(args):
    """Build graph/cluster/Surfer per ``args`` and run the job.

    Shared by ``run`` and ``profile``.  Returns ``(job, wall_clock_s)``,
    or ``(None, 0.0)`` when the app has no implementation for the
    requested engine (an error has been printed).
    """
    from repro.apps import APP_REGISTRY, EXTENSION_APPS
    from repro.bench.workloads import make_cluster
    from repro.core import Surfer
    from repro.runtime.checkpoint import CheckpointPolicy
    from repro.runtime.events import wall_timer

    symmetrize = args.app in ("CC", "DIAM", "KCORE")
    graph = _make_graph(args, symmetrize=symmetrize)
    cluster = make_cluster(_make_topology(args.topology, args.machines))
    surfer = Surfer(graph, cluster, num_parts=args.parts,
                    layout=args.layout, seed=args.seed,
                    replication=args.replication)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges"
          f" | ier {surfer.pgraph.inner_edge_ratio:.1%}"
          f" | {args.topology}, {args.machines} machines")

    if args.app in APP_REGISTRY:
        prop_cls, mr_cls, default_iters = APP_REGISTRY[args.app]
        iterations = args.iterations or default_iters
        until = False
    else:
        prop_cls, mr_cls = EXTENSION_APPS[args.app]
        iterations = args.iterations or 50
        until = True
    fault_plan = _parse_kills(args.kill)
    policy = None
    if args.checkpoint_interval > 0:
        policy = CheckpointPolicy(interval=args.checkpoint_interval,
                                  max_restarts=args.max_restarts)
    timer = wall_timer()
    # True opts in; None defers to the REPRO_SANITIZE environment switch
    sanitize = True if args.sanitize else None
    if args.engine == "mapreduce":
        if mr_cls is None:
            print(f"{args.app} has no MapReduce implementation",
                  file=sys.stderr)
            return None, 0.0
        if args.frontier:
            print("--frontier requires the propagation engine",
                  file=sys.stderr)
            return None, 0.0
        job = surfer.run_mapreduce(mr_cls(), rounds=iterations,
                                   until_convergence=until,
                                   fault_plan=fault_plan,
                                   checkpoint=policy,
                                   sanitize=sanitize)
    else:
        job = surfer.run_propagation(
            prop_cls(), iterations=iterations,
            local_opts=not args.no_local_opts,
            until_convergence=until,
            fault_plan=fault_plan,
            checkpoint=policy,
            frontier=args.frontier,
            sanitize=sanitize,
        )
    return job, timer.elapsed()


def _parse_kills(specs):
    """``--kill M@T`` arguments into a FaultPlan (None when empty)."""
    from repro.cluster.faults import FaultPlan

    if not specs:
        return None
    plan = FaultPlan()
    for spec in specs:
        machine, _, time = spec.partition("@")
        try:
            plan.add_kill(int(machine), float(time))
        except ValueError:
            raise SystemExit(f"bad --kill {spec!r}: expected M@T, "
                             f"e.g. 3@10.5")
    return plan


def _print_metrics(job) -> None:
    m = job.metrics
    print(f"response time : {m.response_time:12,.1f}s simulated")
    print(f"machine time  : {m.total_machine_time:12,.1f}s")
    print(f"network I/O   : {m.network_bytes:12,d} B")
    print(f"disk I/O      : {m.disk_bytes:12,d} B")


def _cmd_run(args) -> int:
    from repro.runtime.monitor import JobMonitor

    job, _ = _deploy_and_run(args)
    if job is None:
        return 2
    if job.failed:
        print(f"job FAILED: {job.error}", file=sys.stderr)
    _print_metrics(job)
    print()
    print(JobMonitor(job.executions, job.recovery_events).report())
    return 1 if job.failed else 0


def _cmd_profile(args) -> int:
    from repro.bench.benchjson import job_record, write_bench_json
    from repro.runtime.events import reconcile, write_chrome_trace
    from repro.runtime.monitor import JobMonitor

    job, wall = _deploy_and_run(args)
    if job is None:
        return 2
    if job.failed:
        print(f"job FAILED: {job.error}", file=sys.stderr)
    _print_metrics(job)
    print(f"wall clock    : {wall:12,.3f}s real")
    print()
    print(JobMonitor(job.executions, job.recovery_events,
                     events=job.events).report())
    print()

    problems = reconcile(job)
    if problems:
        print("trace does NOT reconcile with cluster counters:",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
    else:
        print("trace reconciles with cluster counters "
              "(makespan, disk, network)")

    trace_path = args.trace or f"trace_{args.app}.json"
    write_chrome_trace(job.events, trace_path)
    print(f"chrome trace  : {trace_path} "
          f"({len(job.events.spans)} spans, "
          f"{len(job.events.instants)} instants) — load in "
          "chrome://tracing or https://ui.perfetto.dev")
    if args.bench:
        name = args.bench_name or f"profile_{args.app}_{args.engine}"
        write_bench_json(args.bench, {name: job_record(job, wall)})
        print(f"bench JSON    : {args.bench} (workload {name!r})")
    return 1 if problems else 0


def _cmd_chaos(args) -> int:
    from repro.apps import APP_REGISTRY, EXTENSION_APPS
    from repro.bench.benchjson import job_record, write_bench_json
    from repro.bench.workloads import make_cluster
    from repro.runtime.chaos import run_chaos_sweep, surfer_factory
    from repro.runtime.checkpoint import CheckpointPolicy
    from repro.runtime.events import wall_timer

    symmetrize = args.app in ("CC", "DIAM", "KCORE")
    graph = _make_graph(args, symmetrize=symmetrize)
    if args.app in APP_REGISTRY:
        prop_cls, mr_cls, default_iters = APP_REGISTRY[args.app]
        iterations = args.iterations or default_iters
        until = False
    else:
        prop_cls, mr_cls = EXTENSION_APPS[args.app]
        iterations = args.iterations or 50
        until = True
    if args.engine == "mapreduce" and mr_cls is None:
        print(f"{args.app} has no MapReduce implementation",
              file=sys.stderr)
        return 2
    if args.engine == "mapreduce" and args.frontier:
        print("--frontier requires the propagation engine",
              file=sys.stderr)
        return 2
    policy = CheckpointPolicy(interval=args.checkpoint_interval,
                              max_restarts=args.max_restarts)
    make_surfer = surfer_factory(
        graph,
        lambda: make_cluster(_make_topology(args.topology, args.machines)),
        num_parts=args.parts, replication=args.replication,
        seed=args.seed, layout=args.layout,
    )

    def run_job(surfer, plan):
        ckpt = policy if plan is not None else None
        if args.engine == "mapreduce":
            return surfer.run_mapreduce(
                mr_cls(), rounds=iterations, until_convergence=until,
                fault_plan=plan, checkpoint=ckpt,
            )
        return surfer.run_propagation(
            prop_cls(), iterations=iterations, until_convergence=until,
            fault_plan=plan, checkpoint=ckpt,
            frontier=args.frontier,
        )

    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges"
          f" | {args.topology}, {args.machines} machines, "
          f"replication {args.replication}")
    timer = wall_timer()
    report = run_chaos_sweep(make_surfer, run_job, args.schedules,
                             args.seed)
    wall = timer.elapsed()
    print(report.summary())
    print(f"wall clock: {wall:,.1f}s real")
    if args.bench:
        # per-job walls, not the whole-sweep wall: the sweep includes
        # every schedule, so stamping `wall` on both records would make
        # baseline and restarted indistinguishable in the bench JSON
        name = f"chaos_{args.app}_{args.engine}"
        workloads = {f"{name}_baseline": job_record(
            report.baseline, report.baseline_wall_s)}
        if report.restarted_job is not None:
            workloads[f"{name}_restarted"] = job_record(
                report.restarted_job, report.restarted_wall_s
            )
        write_bench_json(args.bench, workloads, pr="PR6")
        print(f"bench JSON: {args.bench} "
              f"({len(workloads)} workload record(s))")
    return 0 if report.ok else 1


def _cmd_experiment(args) -> int:
    from repro.bench import experiments as ex

    name = args.name
    if name in ("table2", "table3"):
        times, io = ex.app_matrix()
        print((times if name == "table2" else io).render())
        return 0
    simple = {
        "table1": ex.table1_partitioning,
        "table4": ex.table4_loc,
        "table5": ex.table5_ier,
    }
    if name in simple:
        print(simple[name]().render())
        return 0
    if name == "fig6":
        from repro.bench.harness import render_bars

        for topo, r in ex.fig6_topologies().items():
            print(render_bars(
                {"oblivious": r["oblivious"],
                 "bandwidth-aware": r["bandwidth-aware"]},
                unit="s",
                title=f"{topo} ({r['improvement_pct']:+.1f}%)",
            ))
            print()
        return 0
    if name == "fig7":
        from repro.bench.harness import render_bars

        series = ex.fig7_mr_vs_prop()
        print(render_bars(
            {app: r["speedup"] for app, r in series.items()},
            unit="x", title="propagation speedup over MapReduce",
        ))
        print()
        print(render_bars(
            {app: r["net_reduction_pct"] for app, r in series.items()},
            unit="%", title="network I/O reduction",
        ))
        return 0
    if name == "fig9":
        for delay, r in ex.fig9_delay_sweep().items():
            print(f"delay {delay:4d}x  improvement "
                  f"{r['improvement_pct']:+.1f}%")
        return 0
    if name == "fig10":
        r = ex.fig10_fault_tolerance()
        print(f"normal {r['normal_response']:,.1f}s, recovered "
              f"{r['faulty_response']:,.1f}s "
              f"(+{r['overhead_pct']:.1f}%), "
              f"{r['failures'] + r['retries']} tasks re-executed")
        return 0
    if name == "fig11":
        for m, t in ex.fig11_scalability().items():
            print(f"{m:3d} machines: {t:10,.1f}s")
        return 0
    if name == "fig12":
        for m, r in ex.fig12_nr_scaling().items():
            print(f"{m:3d} machines: propagation {r['prop_time']:10,.1f}s"
                  f"  mapreduce {r['mr_time']:10,.1f}s "
                  f"({r['speedup']:.2f}x)")
        return 0
    if name == "cascade":
        result = ex.cascaded_propagation_experiment()
        print(f"V_k (k>=2) ratio {result['v_k_ratio']:.1%}, "
              f"d_min {result['d_min']}")
        for iters, r in result["iterations"].items():
            print(f"{iters} iterations: time saving "
                  f"{r['time_saving_pct']:.1f}%, disk saving "
                  f"{r['disk_saving_pct']:.1f}%")
        return 0
    raise AssertionError(f"unhandled experiment {name}")


def _cmd_partition(args) -> int:
    from repro.core.bandwidth_aware import (
        bandwidth_aware_partition,
        oblivious_partition,
    )
    from repro.core.persist import save_plan
    from repro.partitioning.metrics import inner_edge_ratio
    from repro.runtime.events import wall_timer

    graph = _make_graph(args)
    topology = _make_topology(args.topology, args.machines)
    timer = wall_timer()
    build = (bandwidth_aware_partition if args.layout == "bandwidth-aware"
             else oblivious_partition)
    plan = build(graph, topology, args.parts, seed=args.seed)
    elapsed = timer.elapsed()
    save_plan(plan, args.output)
    print(f"partitioned {graph.num_vertices} vertices / "
          f"{graph.num_edges} edges into {plan.num_parts} parts "
          f"in {elapsed:.1f}s wall")
    print(f"inner edge ratio {inner_edge_ratio(graph, plan.parts):.1%}, "
          f"layout {plan.method}")
    print(f"plan saved to {args.output}")
    return 0


def _cmd_graphinfo(args) -> int:
    from repro.graph.analysis import profile_graph
    from repro.graph.io import read_edge_list

    if args.edge_list:
        graph = read_edge_list(args.edge_list)
    else:
        graph = _make_graph(args)
    profile = profile_graph(graph, seed=args.seed,
                            with_ier=not args.no_ier)
    print(profile.report())
    return 0


def _cmd_info(args) -> int:
    import numpy as np

    from repro.core.persist import load_plan

    plan = load_plan(args.plan)
    sizes = np.bincount(plan.parts, minlength=plan.num_parts)
    print(f"method    : {plan.method}")
    print(f"partitions: {plan.num_parts} "
          f"(sizes {sizes.min()}..{sizes.max()} vertices)")
    print(f"vertices  : {plan.parts.size}")
    print(f"machines  : {len(set(int(m) for m in plan.placement))} used")
    if plan.node_cuts:
        root = plan.node_cuts.get((0, 0))
        print(f"root cut  : {root} (weighted)")
    return 0


def _cmd_store(args) -> int:
    from repro.graph.store import ShardStore, build_shard_store
    from repro.runtime.events import wall_timer

    if args.store_command == "build":
        from repro.graph.stream import (
            stream_rmat,
            stream_small_world,
            stream_web_feeder,
        )

        if args.kind == "rmat":
            stream = stream_rmat(args.scale, edge_factor=args.edge_factor,
                                 seed=args.seed)
        elif args.kind == "small-world":
            stream = stream_small_world(args.vertices, k=args.k,
                                        rewire_p=args.rewire_p,
                                        seed=args.seed)
        else:
            stream = stream_web_feeder(args.core, args.feeders,
                                       seed=args.seed)
        timer = wall_timer()
        store = build_shard_store(stream, args.output,
                                  num_shards=args.shards)
        elapsed = timer.elapsed()
        print(f"built {args.output}: {store.num_vertices:,} vertices, "
              f"{store.num_edges:,} edges in {store.num_shards} "
              f"shard(s), {elapsed:.1f}s wall")
        print(f"largest shard: {store.largest_shard_edges():,} edges "
              f"({store.largest_shard_edges() * 8 / 2**20:,.1f} MiB "
              f"of indices)")
        return 0

    store = ShardStore(args.path)
    print(f"format    : {store.manifest['format']}")
    print(f"vertices  : {store.num_vertices:,}")
    print(f"edges     : {store.num_edges:,}")
    print(f"shards    : {store.num_shards}")
    print(f"dedup     : {store.manifest['dedup']} | drop_self_loops: "
          f"{store.manifest['drop_self_loops']}")
    for s in range(store.num_shards):
        lo = int(store.vertex_starts[s])
        hi = int(store.vertex_starts[s + 1])
        print(f"  shard {s:3d}: vertices [{lo:,}, {hi:,}), "
              f"{store.shard_edge_count(s):,} edges")
    return 0


def _cmd_bench(args) -> int:
    import pathlib

    from repro.bench.benchjson import write_bench_json
    from repro.bench.harness import ExperimentTable
    from repro.bench.regress import gate as run_gate
    from repro.bench.runner import discover_configs, run_suite
    from repro.bench.trajectory import (
        load_history,
        render_html,
        render_markdown,
    )
    from repro.errors import BenchConfigError, BenchRunError, SanitizerError

    try:
        configs = discover_configs(args.configs)
    except BenchConfigError as exc:
        print(f"config error: {exc.source}", file=sys.stderr)
        for e in exc.errors:
            print(f"  {e}", file=sys.stderr)
        return 2
    if args.list:
        for cfg in configs:
            kind = f" [{cfg.kind}]" if cfg.kind != "jobs" else ""
            workloads = (len(cfg.workloads) if cfg.kind == "jobs" else 2)
            print(f"{cfg.name}{kind}: suites {', '.join(cfg.suites)} — "
                  f"{workloads} workload(s) — {cfg.description}")
        return 0

    if args.sanitize:
        # the suite builds its jobs deep inside run_suite; the
        # environment switch is the one knob every engine entry point
        # already honours
        os.environ["REPRO_SANITIZE"] = "1"
    try:
        result = run_suite(args.suite, config_dir=args.configs,
                           repetitions=args.repetitions, progress=print)
    except (BenchConfigError, BenchRunError) as exc:
        print(f"bench run failed: {exc}", file=sys.stderr)
        return 2
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 2
    if not result.records:
        print(f"suite {args.suite!r} selected no workloads",
              file=sys.stderr)
        return 2

    table = ExperimentTable(
        title=f"repro bench — suite {args.suite!r} "
              f"({len(result.records)} workloads, "
              f"experiments: {', '.join(result.experiments)})",
        columns=["makespan (s)", "machine (s)", "net (B)", "disk (B)",
                 "messages", "tasks", "wall (s)"],
    )
    for name in sorted(result.records):
        r = result.records[name]
        table.add_row(name, [
            r["makespan_s"], r["machine_time_s"], r["network_bytes"],
            r["disk_bytes"], r["messages_shipped"], r["tasks"],
            r["wall_clock_s"],
        ])
    print()
    print(table.render())
    print()

    root = pathlib.Path(args.root)
    history = load_history(root)
    pr_tag = args.bless or "current"
    json_path = args.json_path or f"bench_{args.suite}.json"
    write_bench_json(json_path, result.records, pr=pr_tag)
    print(f"bench JSON    : {json_path} (repro-bench/v1, pr={pr_tag})")
    if args.bless:
        bless_path = root / f"BENCH_{args.bless}.json"
        write_bench_json(bless_path, result.records, pr=args.bless)
        print(f"blessed       : {bless_path} (new committed baseline)")

    gate_result = run_gate(result.records, history,
                           per_workload=result.tolerances)
    report_path = args.report or f"bench_{args.suite}_trajectory.md"
    markdown = render_markdown(history, result.records,
                               current_label=pr_tag,
                               gate_result=gate_result)
    pathlib.Path(report_path).write_text(markdown, encoding="utf-8")
    print(f"trajectory    : {report_path} "
          f"({len(history)} committed baseline(s) joined)")
    if args.html:
        html_doc = render_html(history, result.records,
                               current_label=pr_tag,
                               gate_result=gate_result)
        pathlib.Path(args.html).write_text(html_doc, encoding="utf-8")
        print(f"trajectory    : {args.html} (HTML)")
    print()
    print(gate_result.render())
    if args.gate and not gate_result.ok:
        return 1
    return 0


def _cmd_check(args) -> int:
    from repro.analysis.runner import check_paths
    from repro.analysis.typing_gate import run_mypy

    report = check_paths(list(args.paths), contracts_pass=args.contracts)
    print(report.render())
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            fh.write(report.to_json(list(args.paths)))
        print(f"findings JSON written to {args.json_path}")
    exit_code = report.exit_code
    if args.mypy:
        ok, output = run_mypy(list(args.paths))
        print(output.strip())
        if not ok:
            exit_code = 1
    return exit_code


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "profile": _cmd_profile,
        "chaos": _cmd_chaos,
        "experiment": _cmd_experiment,
        "partition": _cmd_partition,
        "info": _cmd_info,
        "graphinfo": _cmd_graphinfo,
        "store": _cmd_store,
        "bench": _cmd_bench,
        "check": _cmd_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
