"""Compile GraphFlow steps into propagation applications.

Each step becomes a dynamically configured
:class:`~repro.propagation.api.PropagationApp`: ``spread`` steps use the
edge-driven transfer/combine path (inheriting local propagation and local
combination for free), ``aggregate`` steps use the virtual-vertex path —
so flow programs get every Surfer runtime optimization without the author
ever seeing a partition.
"""

from __future__ import annotations

from typing import Any

from repro.errors import JobError
from repro.lang.flow import AggregateStep, FlowContext, SpreadStep
from repro.propagation.api import PropagationApp

__all__ = ["compile_step", "SpreadApp", "AggregateApp"]


class SpreadApp(PropagationApp):
    """Propagation app generated from a :class:`SpreadStep`."""

    def __init__(self, step: SpreadStep, context: FlowContext):
        self.step = step
        self.context = context
        self.name = step.name
        self.is_associative = step.associative
        self.combine_all_vertices = step.default is not None

    def setup(self, pgraph) -> FlowContext:
        if self.context.pgraph is not pgraph:
            raise JobError("flow context belongs to a different deployment")
        return self.context

    def select(self, u, state):
        if self.step.select is None:
            return True
        return bool(self.step.select(u, state))

    def transfer(self, u, v, state):
        return self.step.value(u, state)

    def combine(self, v, values, state):
        if not values:
            return self.step.default
        return self.step.combine(values)

    def merge(self, a, b):
        return self.step.combine([a, b])

    def value_nbytes(self, value):
        if self.step.value_nbytes is not None:
            return float(self.step.value_nbytes(value))
        return 8.0

    def update(self, state: FlowContext, combined: dict) -> None:
        if self.step.each_iteration is not None:
            self.step.each_iteration(state)
        attr = state.attributes[self.step.into]
        for v, acc in combined.items():
            attr[v] = self.step.update(v, acc, state)
        state.attributes[self.step.into] = attr

    def converged(self, state: FlowContext) -> bool:
        if self.step.until is None:
            return False
        return bool(self.step.until(state))

    def finalize(self, state: FlowContext) -> FlowContext:
        return state


class AggregateApp(PropagationApp):
    """Virtual-vertex app generated from an :class:`AggregateStep`."""

    uses_virtual_vertices = True

    def __init__(self, step: AggregateStep, context: FlowContext):
        self.step = step
        self.context = context
        self.name = step.name
        self.is_associative = step.associative

    def setup(self, pgraph) -> FlowContext:
        if self.context.pgraph is not pgraph:
            raise JobError("flow context belongs to a different deployment")
        return self.context

    def select(self, u, state):
        if self.step.select is None:
            return True
        return bool(self.step.select(u, state))

    def virtual_transfer(self, u, state):
        yield self.step.key(u, state), self.step.value(u, state)

    def virtual_combine(self, key, values, state):
        return self.step.reduce(values)

    def merge(self, a, b):
        return self.step.reduce([a, b])

    def update(self, state: FlowContext, combined: dict) -> None:
        state.tables[self.step.into] = dict(combined)

    def finalize(self, state: FlowContext) -> FlowContext:
        return state


def compile_step(step: Any, context: FlowContext):
    """Turn a step into ``(app, max_iterations, until_hook_or_None)``."""
    if isinstance(step, SpreadStep):
        if step.into not in context.attributes:
            raise JobError(
                f"step '{step.name}' writes undeclared attribute "
                f"'{step.into}'"
            )
        return SpreadApp(step, context), step.iterations, step.until
    if isinstance(step, AggregateStep):
        return AggregateApp(step, context), 1, None
    raise JobError(f"unknown flow step type: {type(step).__name__}")
