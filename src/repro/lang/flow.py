"""GraphFlow: a declarative pipeline layer over Surfer's primitives.

The paper closes by announcing "a high-level language on top of MapReduce
and propagation, to further improve the programmability of Surfer"
(Appendix B) — this module builds that layer.  A :class:`GraphFlow` is a
sequence of declarative steps over named vertex attributes; each step
compiles to a propagation job (edge-oriented ``spread`` steps, possibly
iterated to convergence) or a virtual-vertex job (``aggregate`` group-bys),
and :meth:`GraphFlow.run` executes them back to back on a deployed
:class:`~repro.core.surfer.Surfer`.

PageRank in flow form::

    flow = (GraphFlow("pagerank")
            .vertices(rank=lambda ctx: np.full(ctx.num_vertices,
                                               1.0 / ctx.num_vertices))
            .spread(value=lambda u, ctx: 0.85 * ctx["rank"][u]
                                         / ctx.out_degree(u),
                    combine=sum,
                    update=lambda v, acc, ctx: 0.15 / ctx.num_vertices
                                               + acc,
                    into="rank", associative=True, default=0.0,
                    iterations=5))
    ranks = flow.run(surfer)["rank"]

Steps share a :class:`FlowContext` — the vertex attributes plus graph
introspection — so later steps read what earlier steps computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import JobError

__all__ = ["FlowContext", "GraphFlow", "SpreadStep", "AggregateStep"]


class FlowContext:
    """Vertex attributes plus graph introspection, shared across steps."""

    def __init__(self, pgraph):
        self.pgraph = pgraph
        self.graph = pgraph.graph
        self.attributes: dict[str, Any] = {}
        self.tables: dict[str, dict] = {}
        self._out_deg = self.graph.out_degrees()

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    def out_degree(self, v: int) -> int:
        return int(self._out_deg[v])

    def out_neighbors(self, v: int):
        return self.graph.out_neighbors(v)

    def __getitem__(self, name: str):
        if name in self.attributes:
            return self.attributes[name]
        if name in self.tables:
            return self.tables[name]
        raise JobError(f"flow attribute '{name}' is not defined")

    def __contains__(self, name: str) -> bool:
        return name in self.attributes or name in self.tables


@dataclass
class SpreadStep:
    """An edge-oriented step: push values along edges, fold at targets.

    ``value(u, ctx)`` produces the payload a selected vertex exports to
    each of its out-neighbors; ``combine(values)`` folds the bag arriving
    at a vertex; ``update(v, acc, ctx)`` turns the folded value into the
    new attribute (``acc is None`` for vertices that received nothing,
    seen only when ``default`` is given).  With ``associative=True`` the
    engine applies local combination using ``combine`` pairwise.
    """

    name: str
    value: Callable
    combine: Callable
    update: Callable
    into: str
    select: Callable | None = None
    associative: bool = False
    default: Any = None
    iterations: int = 1
    until: Callable | None = None
    value_nbytes: Callable | None = None
    each_iteration: Callable | None = None


@dataclass
class AggregateStep:
    """A vertex-oriented group-by via virtual vertices.

    ``key(u, ctx)`` and ``value(u, ctx)`` emit one record per vertex;
    ``reduce(values)`` folds each key's bag.  The result lands in
    ``ctx.tables[into]`` as ``{key: reduced}``.
    """

    name: str
    key: Callable
    value: Callable
    reduce: Callable
    into: str
    select: Callable | None = None
    associative: bool = True


@dataclass
class GraphFlow:
    """A named sequence of declarative steps."""

    name: str = "flow"
    initializers: dict[str, Callable] = field(default_factory=dict)
    steps: list = field(default_factory=list)

    # -- builders --------------------------------------------------------
    def vertices(self, **initializers: Callable) -> "GraphFlow":
        """Declare vertex attributes; each initializer gets the context."""
        self.initializers.update(initializers)
        return self

    def spread(
        self,
        value: Callable,
        combine: Callable,
        update: Callable,
        into: str,
        select: Callable | None = None,
        associative: bool = False,
        default: Any = None,
        iterations: int = 1,
        until: Callable | None = None,
        value_nbytes: Callable | None = None,
        each_iteration: Callable | None = None,
        name: str | None = None,
    ) -> "GraphFlow":
        """Append an edge-oriented propagation step.

        ``each_iteration(ctx)`` runs right before an iteration's results
        are folded in — the place to reset per-iteration counters that
        ``until`` inspects.
        """
        self.steps.append(SpreadStep(
            name=name or f"spread->{into}",
            value=value, combine=combine, update=update, into=into,
            select=select, associative=associative, default=default,
            iterations=iterations, until=until,
            value_nbytes=value_nbytes, each_iteration=each_iteration,
        ))
        return self

    def aggregate(
        self,
        key: Callable,
        value: Callable,
        reduce: Callable,
        into: str,
        select: Callable | None = None,
        name: str | None = None,
    ) -> "GraphFlow":
        """Append a group-by step (virtual vertices under the hood)."""
        self.steps.append(AggregateStep(
            name=name or f"aggregate->{into}",
            key=key, value=value, reduce=reduce, into=into, select=select,
        ))
        return self

    # -- execution --------------------------------------------------------
    def run(self, surfer, collect_metrics: bool = False):
        """Execute all steps on ``surfer``; returns the final attributes.

        With ``collect_metrics=True`` returns ``(attributes, metrics)``
        where metrics is a per-step list of
        :class:`~repro.cluster.cluster.ClusterMetrics`.
        """
        from repro.lang.compiler import compile_step

        if not self.steps:
            raise JobError(f"flow '{self.name}' has no steps")
        context = FlowContext(surfer.pgraph)
        for attr, initializer in self.initializers.items():
            context.attributes[attr] = initializer(context)
        metrics = []
        for step in self.steps:
            app, iterations, until = compile_step(step, context)
            job = surfer.run_propagation(
                app, iterations=iterations,
                until_convergence=until is not None,
            )
            metrics.append(job.metrics)
        results = dict(context.attributes)
        results.update(context.tables)
        if collect_metrics:
            return results, metrics
        return results
