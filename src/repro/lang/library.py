"""Prebuilt GraphFlow programs for common analyses.

These show how little code the flow layer needs for the paper's
workloads; each returns a ready-to-run :class:`~repro.lang.flow.GraphFlow`.
"""

from __future__ import annotations

import numpy as np

from repro.lang.flow import GraphFlow

__all__ = ["pagerank_flow", "degree_histogram_flow", "reach_flow",
           "min_label_flow"]


def pagerank_flow(damping: float = 0.85, iterations: int = 5) -> GraphFlow:
    """PageRank as a single spread step (matches the NR oracle)."""
    return (
        GraphFlow("pagerank")
        .vertices(rank=lambda ctx: np.full(ctx.num_vertices,
                                           1.0 / max(ctx.num_vertices, 1)))
        .spread(
            value=lambda u, ctx: damping * ctx["rank"][u]
            / ctx.out_degree(u),
            combine=sum,
            update=lambda v, acc, ctx: (1 - damping) / ctx.num_vertices
            + (acc or 0.0),
            into="rank",
            associative=True,
            default=0.0,
            iterations=iterations,
        )
    )


def degree_histogram_flow() -> GraphFlow:
    """Vertex degree distribution as a single aggregate step (VDD)."""
    return (
        GraphFlow("degree-histogram")
        .aggregate(
            key=lambda u, ctx: ctx.out_degree(u),
            value=lambda u, ctx: 1,
            reduce=sum,
            into="histogram",
        )
    )


def reach_flow(seeds, max_hops: int = 10) -> GraphFlow:
    """Multi-hop reachability from a seed set, run to convergence."""
    seeds = set(int(s) for s in seeds)

    def init(ctx):
        reached = np.zeros(ctx.num_vertices, dtype=bool)
        for s in seeds:
            reached[s] = True
        return reached

    return (
        GraphFlow("reach")
        .vertices(reached=init, frontier_size=lambda ctx: np.array([1]))
        .spread(
            value=lambda u, ctx: True,
            combine=any,
            update=lambda v, acc, ctx: bool(ctx["reached"][v] or acc),
            into="reached",
            select=lambda u, ctx: bool(ctx["reached"][u]),
            associative=True,
            iterations=max_hops,
            until=lambda ctx: False,  # fixed hop budget
        )
    )


def min_label_flow(max_iterations: int = 50) -> GraphFlow:
    """Connected components (on a symmetrized deployment)."""
    return (
        GraphFlow("components")
        .vertices(
            label=lambda ctx: np.arange(ctx.num_vertices, dtype=np.int64),
            changed=lambda ctx: np.array([ctx.num_vertices]),
        )
        .spread(
            value=lambda u, ctx: int(ctx["label"][u]),
            combine=min,
            update=_label_update,
            into="label",
            associative=True,
            iterations=max_iterations,
            until=lambda ctx: int(ctx["changed"][0]) == 0,
            each_iteration=lambda ctx: ctx["changed"].fill(0),
        )
    )


def _label_update(v, acc, ctx):
    old = int(ctx["label"][v])
    new = min(old, int(acc))
    if new != old:
        ctx["changed"][0] += 1
    return new
