"""GraphFlow: the high-level dataflow layer the paper announces as
future work — declarative steps compiled onto Surfer's primitives."""

from repro.lang.flow import (
    AggregateStep,
    FlowContext,
    GraphFlow,
    SpreadStep,
)
from repro.lang.compiler import AggregateApp, SpreadApp, compile_step
from repro.lang.library import (
    degree_histogram_flow,
    min_label_flow,
    pagerank_flow,
    reach_flow,
)

__all__ = [
    "AggregateStep",
    "FlowContext",
    "GraphFlow",
    "SpreadStep",
    "AggregateApp",
    "SpreadApp",
    "compile_step",
    "degree_histogram_flow",
    "min_label_flow",
    "pagerank_flow",
    "reach_flow",
]
