"""Streaming edge emitters — the in-memory generators without the RAM.

Every generator in :mod:`repro.graph.generators` materializes its full
``(m, 2)`` edge array before CSR construction, capping honest benchmarks
at whatever fits in memory.  The streams here emit the *same raw edge
sequence* — bit-identical for equal seeds — in bounded chunks, so a
10M+-edge graph can be counted and scattered into the sharded store
(:mod:`repro.graph.store`) with peak memory O(chunk), never O(m).

Bit-identity rests on three properties of numpy's ``PCG64`` bit stream
(asserted directly by tests/test_graph_stream.py):

* ``default_rng(seed)`` draws the same stream as
  ``Generator(PCG64(seed))``;
* ``PCG64.advance(k)`` followed by ``.random(c)`` yields positions
  ``[k, k + c)`` of one large ``.random`` call (``random`` consumes
  exactly one 64-bit draw per double), so R-MAT's per-bit blocks can be
  re-entered at any offset;
* chunked sequential ``.integers`` / ``.random`` calls on one generator
  concatenate identically to a single large call, so the sequential
  tails (small-world rewiring, web chords and feeders) stream without
  re-seeding.

A stream yields the **raw** emitted edges; self-loop dropping and
deduplication — which the in-memory generators delegate to
``Graph.from_edges`` — happen during the shard-store build, with
identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.errors import GraphError

__all__ = [
    "EdgeStream",
    "DEFAULT_CHUNK_EDGES",
    "stream_rmat",
    "stream_small_world",
    "stream_web_feeder",
    "stream_from_edges",
]

DEFAULT_CHUNK_EDGES = 1 << 18  # 256K edges ~ 4 MiB per endpoint array


@dataclass(frozen=True)
class EdgeStream:
    """A re-iterable bounded-memory edge sequence.

    ``num_edges`` counts the *raw* emitted edges (before self-loop
    dropping and dedup).  ``chunks()`` returns a fresh iterator of
    aligned ``(src, dst)`` ``int64`` array pairs; iterate each pass in
    order — the sequential generators thread RNG state chunk to chunk.
    """

    num_vertices: int
    num_edges: int
    chunk_size: int
    _factory: Callable[[], Iterator[tuple[np.ndarray, np.ndarray]]] = field(
        repr=False)

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        return self._factory()


def _require_int_seed(seed: int | np.random.Generator) -> int:
    if isinstance(seed, np.random.Generator):
        raise GraphError(
            "streaming generators need an int seed (positional RNG access)")
    return int(seed)


def _random_block(seed: int, offset: int, count: int) -> np.ndarray:
    """Positions ``[offset, offset + count)`` of ``default_rng(seed)``'s
    ``.random`` stream, without drawing the prefix."""
    bits = np.random.PCG64(seed)
    bits.advance(offset)
    return np.random.Generator(bits).random(count)


def _check_chunk_size(chunk_size: int) -> int:
    chunk_size = int(chunk_size)
    if chunk_size <= 0:
        raise GraphError("chunk_size must be positive")
    return chunk_size


# ----------------------------------------------------------------------
# R-MAT
# ----------------------------------------------------------------------
def stream_rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_EDGES,
) -> EdgeStream:
    """Streamed twin of :func:`repro.graph.generators.rmat`.

    The in-memory generator draws, per bit, two length-``m`` ``random``
    blocks from one stream; edge ``i``'s draws therefore sit at fixed
    stream positions ``2*bit*m + i`` and ``(2*bit + 1)*m + i``, so any
    edge range can be regenerated independently via ``PCG64.advance``.
    """
    if scale < 0:
        raise GraphError("scale must be non-negative")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("R-MAT probabilities must be non-negative")
    seed = _require_int_seed(seed)
    chunk_size = _check_chunk_size(chunk_size)
    n = 1 << scale
    m = edge_factor * n
    p_src_right = c + d
    p_dst_right_given_src_left = b / (a + b) if (a + b) > 0 else 0.0
    p_dst_right_given_src_right = d / (c + d) if (c + d) > 0 else 0.0

    def emit() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for lo in range(0, m, chunk_size):
            hi = min(lo + chunk_size, m)
            cnt = hi - lo
            src = np.zeros(cnt, dtype=np.int64)
            dst = np.zeros(cnt, dtype=np.int64)
            for bit in range(scale):
                r1 = _random_block(seed, (2 * bit) * m + lo, cnt)
                r2 = _random_block(seed, (2 * bit + 1) * m + lo, cnt)
                src_right = r1 < p_src_right
                p_dst = np.where(
                    src_right,
                    p_dst_right_given_src_right,
                    p_dst_right_given_src_left,
                )
                dst_right = r2 < p_dst
                src = (src << 1) | src_right.astype(np.int64)
                dst = (dst << 1) | dst_right.astype(np.int64)
            yield src, dst

    return EdgeStream(n, m, chunk_size, emit)


# ----------------------------------------------------------------------
# Watts–Strogatz small world
# ----------------------------------------------------------------------
def stream_small_world(
    num_vertices: int,
    k: int = 4,
    rewire_p: float = 0.05,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_EDGES,
) -> EdgeStream:
    """Streamed twin of :func:`repro.graph.generators.small_world`.

    The rewire mask is ``random`` (positional — re-enterable at any
    offset); the rewired destinations are a single sequential
    ``integers`` run starting after the ``m`` mask draws, threaded
    chunk to chunk through one generator.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if not 0 <= rewire_p <= 1:
        raise GraphError("rewire_p must lie in [0, 1]")
    seed = _require_int_seed(seed)
    chunk_size = _check_chunk_size(chunk_size)
    n = num_vertices
    k = min(k, max(n - 1, 0))
    m = n * k

    def emit() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        int_bits = np.random.PCG64(seed)
        int_bits.advance(m)  # mask draws occupy stream positions [0, m)
        int_rng = np.random.Generator(int_bits)
        for lo in range(0, m, chunk_size):
            hi = min(lo + chunk_size, m)
            idx = np.arange(lo, hi, dtype=np.int64)
            src = idx // k
            dst = (src + idx % k + 1) % n
            if rewire_p > 0:
                mask = _random_block(seed, lo, hi - lo) < rewire_p
                dst[mask] = int_rng.integers(0, n, size=int(mask.sum()))
            yield src, dst

    return EdgeStream(n, m, chunk_size, emit)


# ----------------------------------------------------------------------
# Web-crawl core + feeders
# ----------------------------------------------------------------------
def stream_web_feeder(
    core: int,
    feeders: int,
    chords_per_vertex: int = 3,
    feeder_degree: int = 2,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_EDGES,
) -> EdgeStream:
    """Streamed twin of :func:`repro.graph.generators.web_feeder_graph`.

    The emitted sequence is the in-memory concatenation order — ring,
    chords, feeders — with one sequential generator drawing the chord
    then feeder destinations; chunked same-bound ``integers`` calls
    concatenate identically to the two in-memory bulk calls.
    """
    if core <= 0 or feeders < 0:
        raise GraphError("core must be positive and feeders non-negative")
    seed = _require_int_seed(seed)
    chunk_size = _check_chunk_size(chunk_size)
    n = core + feeders
    m_ring = core
    m_chord = core * chords_per_vertex
    m_feed = feeders * feeder_degree
    m = m_ring + m_chord + m_feed

    def emit() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(seed)
        for lo in range(0, m, chunk_size):
            hi = min(lo + chunk_size, m)
            srcs: list[np.ndarray] = []
            dsts: list[np.ndarray] = []
            # ring segment: positions [0, m_ring)
            a, b = max(lo, 0), min(hi, m_ring)
            if a < b:
                s = np.arange(a, b, dtype=np.int64)
                srcs.append(s)
                dsts.append((s + 1) % core)
            # chord segment: positions [m_ring, m_ring + m_chord)
            a, b = max(lo, m_ring), min(hi, m_ring + m_chord)
            if a < b:
                j = np.arange(a - m_ring, b - m_ring, dtype=np.int64)
                srcs.append(j // chords_per_vertex)
                dsts.append(rng.integers(0, core, size=b - a))
            # feeder segment: positions [m_ring + m_chord, m)
            a, b = max(lo, m_ring + m_chord), min(hi, m)
            if a < b:
                j = np.arange(a - m_ring - m_chord, b - m_ring - m_chord,
                              dtype=np.int64)
                srcs.append(core + j // feeder_degree)
                dsts.append(rng.integers(0, core, size=b - a))
            yield (np.concatenate(srcs).astype(np.int64, copy=False),
                   np.concatenate(dsts).astype(np.int64, copy=False))

    return EdgeStream(n, m, chunk_size, emit)


# ----------------------------------------------------------------------
# Wrapping an existing edge array (tests, external data)
# ----------------------------------------------------------------------
def stream_from_edges(
    edges: np.ndarray,
    num_vertices: int,
    chunk_size: int = DEFAULT_CHUNK_EDGES,
) -> EdgeStream:
    """Wrap an in-memory ``(m, 2)`` edge array as an :class:`EdgeStream`."""
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError("edges must be (m, 2) pairs")
    chunk_size = _check_chunk_size(chunk_size)
    m = arr.shape[0]

    def emit() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for lo in range(0, m, chunk_size):
            hi = min(lo + chunk_size, m)
            yield arr[lo:hi, 0], arr[lo:hi, 1]

    return EdgeStream(int(num_vertices), m, chunk_size, emit)
