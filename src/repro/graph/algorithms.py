"""Reference graph algorithms.

These serve two roles: (a) building blocks for the partitioner and the
cascaded-propagation machinery (BFS levels, diameters, components), and
(b) ground-truth oracles the test suite compares the distributed engines
against (e.g. single-machine PageRank vs. propagation-based NR).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import Graph

__all__ = [
    "bfs_levels",
    "multi_source_bfs",
    "weakly_connected_components",
    "estimate_diameter",
    "pagerank",
    "degree_histogram",
    "count_triangles",
    "two_hop_neighbors",
    "dijkstra",
    "core_numbers",
]


def bfs_levels(graph: Graph, source: int, reverse: bool = False) -> np.ndarray:
    """BFS hop distance from ``source``; unreachable vertices get ``-1``.

    With ``reverse=True`` the traversal follows in-edges.
    """
    if not 0 <= source < graph.num_vertices:
        raise GraphError("BFS source out of range")
    return multi_source_bfs(graph, [source], reverse=reverse)


def multi_source_bfs(
    graph: Graph, sources, reverse: bool = False
) -> np.ndarray:
    """Hop distance from the nearest source; ``-1`` where unreachable."""
    dist = -np.ones(graph.num_vertices, dtype=np.int64)
    queue: deque[int] = deque()
    for s in sources:
        s = int(s)
        if not 0 <= s < graph.num_vertices:
            raise GraphError("BFS source out of range")
        if dist[s] < 0:
            dist[s] = 0
            queue.append(s)
    neighbors = graph.in_neighbors if reverse else graph.out_neighbors
    while queue:
        v = queue.popleft()
        dv = dist[v]
        for u in neighbors(v):
            if dist[u] < 0:
                dist[u] = dv + 1
                queue.append(int(u))
    return dist


def weakly_connected_components(graph: Graph) -> np.ndarray:
    """Component label per vertex, labels numbered ``0..k-1`` by discovery."""
    label = -np.ones(graph.num_vertices, dtype=np.int64)
    current = 0
    for start in range(graph.num_vertices):
        if label[start] >= 0:
            continue
        queue = deque([start])
        label[start] = current
        while queue:
            v = queue.popleft()
            for u in graph.out_neighbors(v):
                if label[u] < 0:
                    label[u] = current
                    queue.append(int(u))
            for u in graph.in_neighbors(v):
                if label[u] < 0:
                    label[u] = current
                    queue.append(int(u))
        current += 1
    return label


def estimate_diameter(
    graph: Graph, num_probes: int = 4, seed: int = 0,
    undirected: bool = True,
) -> int:
    """Estimate the diameter by double-sweep BFS from random probes.

    Returns the largest finite eccentricity found (a lower bound on the true
    diameter, exact on trees).  Used to size cascaded-propagation phases
    (Section 5.2 uses per-partition diameters).
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(max(1, num_probes)):
        start = int(rng.integers(n))
        dist = _sweep(graph, start, undirected)
        far = int(np.argmax(dist))
        if dist[far] <= 0:
            continue
        dist2 = _sweep(graph, far, undirected)
        best = max(best, int(dist2.max()))
    return best


def _sweep(graph: Graph, source: int, undirected: bool) -> np.ndarray:
    if not undirected:
        return bfs_levels(graph, source)
    dist = -np.ones(graph.num_vertices, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = dist[v]
        for u in graph.out_neighbors(v):
            if dist[u] < 0:
                dist[u] = dv + 1
                queue.append(int(u))
        for u in graph.in_neighbors(v):
            if dist[u] < 0:
                dist[u] = dv + 1
                queue.append(int(u))
    return dist


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    num_iterations: int = 20,
    dangling: str = "self",
) -> np.ndarray:
    """Single-machine PageRank oracle matching the paper's NR formula.

    ``PR(v) = (1-d)/N + d * sum(PR(t)/C(t))`` over in-neighbors ``t``
    (Section 3.1).  ``dangling='self'`` keeps rank at zero-out-degree
    vertices (the paper's formula, which does not redistribute it);
    ``dangling='uniform'`` spreads it evenly, the classic correction.
    """
    if dangling not in ("self", "uniform"):
        raise GraphError("dangling must be 'self' or 'uniform'")
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0)
    out_deg = graph.out_degrees().astype(np.float64)
    src = graph.edge_sources()
    dst = graph.out_indices
    rank = np.full(n, 1.0 / n)
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)
    for _ in range(num_iterations):
        contrib = rank / safe_deg
        incoming = np.zeros(n)
        np.add.at(incoming, dst, contrib[src])
        new_rank = (1.0 - damping) / n + damping * incoming
        if dangling == "uniform":
            lost = damping * rank[out_deg == 0].sum() / n
            new_rank += lost
        rank = new_rank
    return rank


def degree_histogram(graph: Graph, direction: str = "out") -> dict[int, int]:
    """Histogram ``degree -> vertex count`` (the VDD oracle)."""
    if direction == "out":
        degrees = graph.out_degrees()
    elif direction == "in":
        degrees = graph.in_degrees()
    else:
        raise GraphError("direction must be 'out' or 'in'")
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def count_triangles(graph: Graph) -> int:
    """Count undirected triangles (the TC oracle).

    A triangle is three vertices with an edge (in either direction) between
    every pair, matching the paper's definition for TC.

    Vectorized forward-adjacency intersection: keep only edges ``v < u``
    (each row stays destination-sorted), then for every forward edge
    ``(v, u)`` count the members of ``N⁺(v)`` also present in ``N⁺(u)``
    via one batched binary search over the combined sorted key
    ``row * n + dst``.  Since ``N⁺(u)`` only holds ``w > u``, each
    triangle ``v < u < w`` is counted exactly once, at its smallest
    vertex — the same orientation the reference implementation uses.
    """
    indptr, indices, _ = graph.to_undirected()
    n = graph.num_vertices
    if indices.size == 0:
        return 0
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    fwd = indices > rows
    fsrc, fdst = rows[fwd], indices[fwd]
    if fsrc.size == 0:
        return 0
    fdeg = np.bincount(fsrc, minlength=n)
    findptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(fdeg, out=findptr[1:])
    # the forward adjacency as one sorted key array (rows ascending,
    # destinations ascending within each row)
    keys = fsrc * np.int64(n) + fdst
    # candidates: for forward edge j = (v, u), every w in N+(v)
    cand_counts = fdeg[fsrc]
    total_cand = int(cand_counts.sum())
    if total_cand == 0:
        return 0
    block_starts = np.concatenate(([0], np.cumsum(cand_counts)[:-1]))
    gather = (np.arange(total_cand, dtype=np.int64)
              + np.repeat(findptr[fsrc] - block_starts, cand_counts))
    w = fdst[gather]
    u_rep = np.repeat(fdst, cand_counts)
    query = u_rep * np.int64(n) + w
    pos = np.searchsorted(keys, query)
    hit = (pos < keys.size) & (keys[np.minimum(pos, keys.size - 1)] == query)
    return int(hit.sum())


def _count_triangles_reference(graph: Graph) -> int:
    """Per-vertex set-intersection triangle count (the pre-vectorization
    implementation, kept as the parity oracle for tests)."""
    indptr, indices, _ = graph.to_undirected()
    n = graph.num_vertices
    neighbor_sets = [
        set(indices[indptr[v]: indptr[v + 1]].tolist()) for v in range(n)
    ]
    total = 0
    for v in range(n):
        for u in neighbor_sets[v]:
            if u <= v:
                continue
            # count w > u to count each triangle exactly once
            common = neighbor_sets[v] & neighbor_sets[u]
            total += sum(1 for w in common if w > u)
    return total


def dijkstra(
    graph: Graph, source: int,
    weight: Callable[[int, int], int],
) -> np.ndarray:
    """Single-source shortest path distances (the SSSP oracle).

    ``weight(u, v)`` must return a positive integer edge weight.
    Unreachable vertices get ``-1``, matching :func:`bfs_levels`.
    """
    if not 0 <= source < graph.num_vertices:
        raise GraphError("dijkstra source out of range")
    dist = -np.ones(graph.num_vertices, dtype=np.int64)
    heap: list[tuple[int, int]] = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if dist[u] >= 0:
            continue  # already settled with a shorter distance
        dist[u] = d
        for v in graph.out_neighbors(u):
            v = int(v)
            if dist[v] < 0:
                heapq.heappush(heap, (d + int(weight(u, v)), v))
    return dist


def core_numbers(graph: Graph) -> np.ndarray:
    """Coreness of every vertex by peeling (the KCORE oracle).

    Undirected semantics: run on a symmetrized graph, where
    ``out_degrees`` is the undirected degree.  Batagelj–Zaveršnik
    peeling with a lazy heap: repeatedly remove a minimum-degree vertex;
    its coreness is the largest minimum seen so far.
    """
    n = graph.num_vertices
    cur = graph.out_degrees().astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    heap = [(int(cur[v]), v) for v in range(n)]
    heapq.heapify(heap)
    done = np.zeros(n, dtype=bool)
    k = 0
    while heap:
        d, v = heapq.heappop(heap)
        if done[v] or d != cur[v]:
            continue  # stale lazy-heap entry
        done[v] = True
        k = max(k, d)
        core[v] = k
        for u in graph.out_neighbors(v):
            u = int(u)
            if not done[u] and cur[u] > d:
                cur[u] -= 1
                heapq.heappush(heap, (int(cur[u]), u))
    return core


def two_hop_neighbors(graph: Graph, vertex: int) -> set[int]:
    """Exact two-hop friend list of ``vertex`` (the TFL oracle).

    Matches TFL's push formulation (Appendix D): each selected vertex
    pushes its out-neighbor list to each of its out-neighbors, so
    ``vertex`` collects the union of the neighbor lists of its
    *in*-neighbors — every ``w`` with some ``u`` such that ``u -> vertex``
    and ``u -> w`` (the vertex itself may appear via a mutual friend).
    """
    result: set[int] = set()
    for u in graph.in_neighbors(vertex):
        result.update(int(w) for w in graph.out_neighbors(int(u)))
    return result
