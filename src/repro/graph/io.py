"""Graph serialization in Surfer's adjacency-list format.

The paper stores graphs as records ``<ID, d, neighbors>`` where ``ID`` is the
vertex id, ``d`` its out-degree and ``neighbors`` the ``d`` neighbor ids
(Section 3).  We provide a text form (one record per line, whitespace
separated) and a compact binary form, plus the byte-size accounting the
cluster simulator uses to charge disk and network I/O.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, TextIO

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.digraph import Graph

__all__ = [
    "write_adjacency_text",
    "read_adjacency_text",
    "write_adjacency_binary",
    "read_adjacency_binary",
    "adjacency_record_bytes",
    "graph_storage_bytes",
    "read_edge_list",
    "write_edge_list",
    "VERTEX_ID_BYTES",
    "DEGREE_BYTES",
    "VALUE_BYTES",
]

# On-disk/on-wire record sizing used by the cost model (Section 4.2 / DESIGN).
VERTEX_ID_BYTES = 8   # vertex ids are int64
DEGREE_BYTES = 4      # degree field
VALUE_BYTES = 8       # one float64 application value

_MAGIC = b"SRFG"
_VERSION = 1


def adjacency_record_bytes(degree: int) -> int:
    """Size in bytes of one ``<ID, d, neighbors>`` record."""
    return VERTEX_ID_BYTES + DEGREE_BYTES + VERTEX_ID_BYTES * degree


def graph_storage_bytes(graph: Graph) -> int:
    """Total bytes of the adjacency-list encoding of ``graph``."""
    n, m = graph.num_vertices, graph.num_edges
    return n * (VERTEX_ID_BYTES + DEGREE_BYTES) + m * VERTEX_ID_BYTES


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------
def write_adjacency_text(graph: Graph, dest: TextIO | str | Path) -> None:
    """Write ``graph`` as ``ID d n0 n1 ...`` lines."""
    if isinstance(dest, (str, Path)):
        with open(dest, "w", encoding="ascii") as handle:
            write_adjacency_text(graph, handle)
        return
    for v in range(graph.num_vertices):
        nbrs = graph.out_neighbors(v)
        fields = [str(v), str(nbrs.size)]
        fields.extend(str(int(u)) for u in nbrs)
        dest.write(" ".join(fields))
        dest.write("\n")


def read_adjacency_text(src: TextIO | str | Path) -> Graph:
    """Parse the text adjacency format back into a :class:`Graph`."""
    if isinstance(src, (str, Path)):
        with open(src, "r", encoding="ascii") as handle:
            return read_adjacency_text(handle)
    records: dict[int, np.ndarray] = {}
    max_vertex = -1
    for lineno, line in enumerate(src, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        try:
            vid = int(fields[0])
            degree = int(fields[1])
            nbrs = np.array([int(f) for f in fields[2:]], dtype=np.int64)
        except (ValueError, IndexError) as exc:
            raise GraphFormatError(f"line {lineno}: malformed record") from exc
        if degree != nbrs.size:
            raise GraphFormatError(
                f"line {lineno}: declared degree {degree} but "
                f"{nbrs.size} neighbors listed"
            )
        if vid < 0:
            raise GraphFormatError(f"line {lineno}: negative vertex id")
        if vid in records:
            raise GraphFormatError(f"line {lineno}: duplicate vertex {vid}")
        records[vid] = nbrs
        max_vertex = max(max_vertex, vid, int(nbrs.max(initial=-1)))
    n = max_vertex + 1
    indptr = np.zeros(n + 1, dtype=np.int64)
    for vid, nbrs in records.items():
        indptr[vid + 1] = nbrs.size
    np.cumsum(indptr, out=indptr)
    indices = np.zeros(indptr[-1], dtype=np.int64)
    for vid, nbrs in records.items():
        indices[indptr[vid]: indptr[vid] + nbrs.size] = nbrs
    return Graph(indptr, indices)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def write_adjacency_binary(graph: Graph, dest: BinaryIO | str | Path) -> None:
    """Write ``graph`` in the compact binary container format."""
    if isinstance(dest, (str, Path)):
        with open(dest, "wb") as handle:
            write_adjacency_binary(graph, handle)
        return
    dest.write(_MAGIC)
    dest.write(struct.pack("<IQQ", _VERSION, graph.num_vertices,
                           graph.num_edges))
    dest.write(graph.out_indptr.astype("<i8").tobytes())
    dest.write(graph.out_indices.astype("<i8").tobytes())


_HEADER_FMT = "<IQQ"
_HEADER_BYTES = len(_MAGIC) + struct.calcsize(_HEADER_FMT)


def _parse_binary_header(magic: bytes, header: bytes) -> tuple[int, int]:
    if magic != _MAGIC:
        raise GraphFormatError("not a Surfer binary graph (bad magic)")
    if len(header) != struct.calcsize(_HEADER_FMT):
        raise GraphFormatError("truncated header")
    version, n, m = struct.unpack(_HEADER_FMT, header)
    if version != _VERSION:
        raise GraphFormatError(f"unsupported version {version}")
    return n, m


def read_adjacency_binary(src: BinaryIO | str | Path,
                          mmap: bool = False) -> Graph:
    """Read a graph written by :func:`write_adjacency_binary`.

    With ``mmap=True`` (filesystem paths only) the CSR payload is
    memory-mapped read-only in place instead of loaded — opening a
    multi-GB graph costs O(1) resident memory until pages are touched.
    The default path reads each array with a single copy (``frombuffer``
    is zero-copy; the little-endian cast is a no-op view on LE hosts).
    """
    if isinstance(src, (str, Path)):
        if not mmap:
            with open(src, "rb") as handle:
                return read_adjacency_binary(handle)
        with open(src, "rb") as handle:
            n, m = _parse_binary_header(handle.read(4),
                                        handle.read(struct.calcsize(_HEADER_FMT)))
        if Path(src).stat().st_size < _HEADER_BYTES + 8 * (n + 1 + m):
            raise GraphFormatError("truncated graph payload")
        indptr = np.memmap(src, dtype="<i8", mode="r",
                           offset=_HEADER_BYTES, shape=(n + 1,))
        indices = np.memmap(src, dtype="<i8", mode="r",
                            offset=_HEADER_BYTES + 8 * (n + 1), shape=(m,))
        return Graph(indptr, indices)
    if mmap:
        raise GraphFormatError("mmap=True requires a filesystem path")
    n, m = _parse_binary_header(src.read(4),
                                src.read(struct.calcsize(_HEADER_FMT)))
    indptr_bytes = src.read(8 * (n + 1))
    indices_bytes = src.read(8 * m)
    if len(indptr_bytes) != 8 * (n + 1) or len(indices_bytes) != 8 * m:
        raise GraphFormatError("truncated graph payload")
    indptr = np.frombuffer(indptr_bytes, dtype="<i8").astype(np.int64,
                                                             copy=False)
    indices = np.frombuffer(indices_bytes, dtype="<i8").astype(np.int64,
                                                               copy=False)
    return Graph(indptr, indices)


def roundtrip_text(graph: Graph) -> Graph:
    """Serialize and reparse through the text format (testing helper)."""
    buf = io.StringIO()
    write_adjacency_text(graph, buf)
    buf.seek(0)
    return read_adjacency_text(buf)


def roundtrip_binary(graph: Graph) -> Graph:
    """Serialize and reparse through the binary format (testing helper)."""
    buf = io.BytesIO()
    write_adjacency_binary(graph, buf)
    buf.seek(0)
    return read_adjacency_binary(buf)


# ----------------------------------------------------------------------
# Edge-list format (interchange with external tools)
# ----------------------------------------------------------------------
def write_edge_list(graph: Graph, dest: TextIO | str | Path,
                    delimiter: str = "\t") -> None:
    """Write ``graph`` as ``src<delimiter>dst`` lines (SNAP-style)."""
    if isinstance(dest, (str, Path)):
        with open(dest, "w", encoding="ascii") as handle:
            write_edge_list(graph, handle, delimiter)
        return
    for u, v in graph.iter_edges():
        dest.write(f"{u}{delimiter}{v}\n")


def read_edge_list(src: TextIO | str | Path,
                   num_vertices: int | None = None,
                   dedup: bool = True,
                   drop_self_loops: bool = True) -> Graph:
    """Parse a whitespace/comma-separated edge list into a :class:`Graph`.

    Lines starting with ``#`` or ``%`` are comments (SNAP and Matrix
    Market conventions); empty lines are skipped.  Vertex ids must be
    non-negative integers.
    """
    if isinstance(src, (str, Path)):
        with open(src, "r", encoding="ascii") as handle:
            return read_edge_list(handle, num_vertices, dedup,
                                  drop_self_loops)
    edges: list[tuple[int, int]] = []
    for lineno, line in enumerate(src, start=1):
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        fields = line.replace(",", " ").split()
        if len(fields) < 2:
            raise GraphFormatError(
                f"line {lineno}: expected 'src dst', got {line!r}"
            )
        try:
            u, v = int(fields[0]), int(fields[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {lineno}: non-integer vertex id"
            ) from exc
        if u < 0 or v < 0:
            raise GraphFormatError(f"line {lineno}: negative vertex id")
        edges.append((u, v))
    return Graph.from_edges(edges, num_vertices=num_vertices,
                            dedup=dedup, drop_self_loops=drop_self_loops)
