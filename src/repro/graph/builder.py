"""Incremental graph construction.

:class:`Graph` is immutable (partitioners and engines share it freely);
:class:`GraphBuilder` is the mutable front door — accumulate edges from
any source (streams, per-chunk files, programmatic generators), then
``build()`` the immutable CSR once.  Also provides ``relabel`` for
compacting sparse external vertex ids (real edge lists rarely use dense
``0..n-1`` ids).
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import Graph

__all__ = ["GraphBuilder", "relabel_edges"]


def relabel_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
) -> tuple[np.ndarray, list]:
    """Map arbitrary hashable vertex ids onto dense ``0..n-1`` ids.

    Returns ``(edge_array, id_table)`` where ``id_table[new_id]`` is the
    original id (first-appearance order).
    """
    mapping: dict[Hashable, int] = {}
    table: list = []
    out: list[tuple[int, int]] = []
    for u, v in edges:
        for x in (u, v):
            if x not in mapping:
                mapping[x] = len(table)
                table.append(x)
        out.append((mapping[u], mapping[v]))
    arr = (np.array(out, dtype=np.int64) if out
           else np.zeros((0, 2), dtype=np.int64))
    return arr, table


class GraphBuilder:
    """Accumulates edges in chunks and builds an immutable CSR graph."""

    def __init__(self, num_vertices: int | None = None):
        self._explicit_n = num_vertices
        self._chunks: list[np.ndarray] = []
        self._count = 0

    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int) -> "GraphBuilder":
        return self.add_edges([(src, dst)])

    def add_edges(self, edges) -> "GraphBuilder":
        """Append a chunk of ``(src, dst)`` pairs."""
        arr = np.asarray(
            list(edges) if not isinstance(edges, np.ndarray) else edges,
            dtype=np.int64,
        )
        if arr.size == 0:
            return self
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError("edges must be (m, 2) pairs")
        if arr.min() < 0:
            raise GraphError("vertex ids must be non-negative")
        if (self._explicit_n is not None
                and arr.max() >= self._explicit_n):
            raise GraphError("edge endpoint exceeds num_vertices")
        self._chunks.append(arr)
        self._count += arr.shape[0]
        return self

    def add_graph(self, graph: Graph, offset: int = 0) -> "GraphBuilder":
        """Append every edge of ``graph``, ids shifted by ``offset``."""
        if graph.num_edges:
            self.add_edges(graph.edges() + offset)
        elif self._explicit_n is None:
            # remember the isolated vertices implied by the graph
            self._chunks.append(np.zeros((0, 2), dtype=np.int64))
        return self

    @property
    def num_edges_added(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def build(self, dedup: bool = True,
              drop_self_loops: bool = False) -> Graph:
        """Materialize the immutable graph; the builder stays reusable."""
        if self._chunks:
            edges = np.concatenate(
                [c for c in self._chunks if c.size] or
                [np.zeros((0, 2), dtype=np.int64)]
            )
        else:
            edges = np.zeros((0, 2), dtype=np.int64)
        n = self._explicit_n
        if n is None:
            n = int(edges.max() + 1) if edges.size else 0
        return Graph.from_edges(edges, num_vertices=n, dedup=dedup,
                                drop_self_loops=drop_self_loops)
