"""Sharded, memory-mappable CSR graph store.

The out-of-core counterpart of :class:`repro.graph.digraph.Graph`: one
directory holding a JSON manifest plus per-shard ``indptr``/``indices``
``.npy`` files.  Shards cover contiguous source-vertex ranges, written
once by an external count-then-scatter build over an
:class:`~repro.graph.stream.EdgeStream` and opened via ``np.load(...,
mmap_mode="r")`` — so building and processing a graph both keep peak
RSS at O(largest shard + n), never O(m).

Build (three passes, each O(chunk) + O(n) resident):

1. **count** — stream the edges once, drop self loops, accumulate raw
   per-source degrees; choose edge-balanced shard boundaries from the
   degree prefix sums (callers may pin boundaries, e.g. to partition
   ranges so partition ``p`` *is* shard ``p``).
2. **scatter** — stream again, routing each edge's destination into its
   source row's reserved slots in the owning shard's raw scratch file
   (a vectorized external counting sort by source).
3. **finalize** — per shard: sort each row's destinations, drop
   adjacent duplicates when ``dedup``, and write the final local
   ``indptr``/``indices`` arrays.  Because shards are source ranges,
   per-shard dedup equals global dedup, and the result is bit-identical
   to ``Graph.from_edges(edges, dedup=..., drop_self_loops=...)`` on
   the materialized edge list.

:class:`ShardBackedGraph` then exposes the store through the ``Graph``
API with a *raising* ``out_indices`` — any code path that would
materialize the whole edge array fails loudly instead of silently
blowing the memory budget; consumers use :meth:`Graph.out_indices_range`
and the per-partition gathers instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import Graph
from repro.graph.stream import EdgeStream

__all__ = [
    "MANIFEST_NAME",
    "STORE_FORMAT",
    "ShardStore",
    "ShardBackedGraph",
    "build_shard_store",
    "open_shard_graph",
]

MANIFEST_NAME = "manifest.json"
STORE_FORMAT = "repro-shard-store/v1"


def _expand_blocks(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather indices for variable-length blocks.

    ``result`` enumerates ``starts[i] .. starts[i] + counts[i] - 1`` for
    each ``i`` in order — the same arithmetic ``Graph.out_edges_of``
    uses.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    block_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return (np.arange(total, dtype=np.int64)
            + np.repeat(starts - block_starts, counts))


def _balanced_starts(degrees: np.ndarray, num_shards: int) -> np.ndarray:
    """Edge-balanced shard boundaries: S+1 vertex offsets."""
    n = degrees.size
    total = int(degrees.sum())
    cum = np.cumsum(degrees)
    targets = (np.arange(1, num_shards, dtype=np.int64) * total) // num_shards
    inner = np.searchsorted(cum, targets, side="left") + 1
    starts = np.concatenate((
        np.zeros(1, dtype=np.int64),
        np.minimum(inner, n).astype(np.int64),
        np.array([n], dtype=np.int64),
    ))
    return np.maximum.accumulate(starts)


def build_shard_store(
    stream: EdgeStream,
    path: str | Path,
    num_shards: int,
    dedup: bool = True,
    drop_self_loops: bool = True,
    vertex_starts: Sequence[int] | np.ndarray | None = None,
    meta: dict | None = None,
) -> "ShardStore":
    """Count-then-scatter an :class:`EdgeStream` into a shard store.

    ``vertex_starts`` (S+1 offsets) pins the shard boundaries; the
    default is edge-balanced boundaries from the raw degree prefix sums.
    Returns the opened :class:`ShardStore`.
    """
    if num_shards < 1:
        raise GraphError("num_shards must be at least 1")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    n = int(stream.num_vertices)

    # -- pass 1: count raw per-source degrees -------------------------
    degrees = np.zeros(n, dtype=np.int64)
    for src, dst in stream.chunks():
        if src.size == 0:
            continue
        if drop_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if src.size == 0:
            continue
        if min(src.min(), dst.min()) < 0:
            raise GraphError("vertex ids must be non-negative")
        if max(src.max(), dst.max()) >= n:
            raise GraphError("edge endpoint exceeds num_vertices")
        degrees += np.bincount(src, minlength=n)

    if vertex_starts is None:
        starts = _balanced_starts(degrees, num_shards)
    else:
        starts = np.asarray(vertex_starts, dtype=np.int64)
        if (starts.size != num_shards + 1 or starts[0] != 0
                or starts[-1] != n or np.any(np.diff(starts) < 0)):
            raise GraphError("vertex_starts must be S+1 offsets over [0, n]")

    # slot_base[v] = global slot of v's first raw edge
    slot_base = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=slot_base[1:])
    shard_edge_start = slot_base[starts]
    raw_counts = np.diff(shard_edge_start)

    # -- pass 2: scatter destinations into per-shard scratch files ----
    raw_paths = [path / f"shard{s:05d}.raw.npy" for s in range(num_shards)]
    raw_maps: list[np.ndarray | None] = []
    for s in range(num_shards):
        if raw_counts[s]:
            raw_maps.append(np.lib.format.open_memmap(
                raw_paths[s], mode="w+", dtype=np.int64,
                shape=(int(raw_counts[s]),)))
        else:
            raw_maps.append(None)
    write_pos = slot_base[:-1].copy()
    for src, dst in stream.chunks():
        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if src.size == 0:
            continue
        order = np.argsort(src, kind="stable")
        ssrc, sdst = src[order], dst[order]
        uniq, first, counts = np.unique(ssrc, return_index=True,
                                        return_counts=True)
        occ = (np.arange(ssrc.size, dtype=np.int64)
               - np.repeat(first, counts))
        slots = write_pos[ssrc] + occ
        shard_ids = np.searchsorted(starts, ssrc, side="right") - 1
        sh_uniq, sh_first, sh_counts = np.unique(
            shard_ids, return_index=True, return_counts=True)
        for s, st, ct in zip(sh_uniq, sh_first, sh_counts):
            block = slice(int(st), int(st + ct))
            target = raw_maps[int(s)]
            assert target is not None
            target[slots[block] - shard_edge_start[s]] = sdst[block]
        write_pos[uniq] += counts
    for mm in raw_maps:
        if mm is not None:
            mm.flush()
    del raw_maps

    # -- pass 3: per-shard row sort (+ dedup), final npy files --------
    shards = []
    total_edges = 0
    for s in range(num_shards):
        lo, hi = int(starts[s]), int(starts[s + 1])
        local_n = hi - lo
        raw_deg = degrees[lo:hi]
        if raw_counts[s]:
            # keep the raw shard mapped: lexsort/fancy-indexing below
            # gather into fresh arrays without pinning a full copy
            dst_raw = np.load(raw_paths[s], mmap_mode="r")
            rows = np.repeat(np.arange(local_n, dtype=np.int64), raw_deg)
            order = np.lexsort((dst_raw, rows))
            rows_s, dst_s = rows[order], dst_raw[order]
            if dedup and rows_s.size:
                keep = np.ones(rows_s.size, dtype=bool)
                keep[1:] = ((rows_s[1:] != rows_s[:-1])
                            | (dst_s[1:] != dst_s[:-1]))
                rows_s, dst_s = rows_s[keep], dst_s[keep]
        else:
            rows_s = np.zeros(0, dtype=np.int64)
            dst_s = np.zeros(0, dtype=np.int64)
        indptr_local = np.zeros(local_n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows_s, minlength=local_n),
                  out=indptr_local[1:])
        indptr_name = f"shard{s:05d}.indptr.npy"
        indices_name = f"shard{s:05d}.indices.npy"
        np.save(path / indptr_name, indptr_local)
        np.save(path / indices_name, dst_s.astype(np.int64, copy=False))
        shards.append({
            "indptr": indptr_name,
            "indices": indices_name,
            "num_edges": int(dst_s.size),
        })
        total_edges += int(dst_s.size)
        if raw_paths[s].exists():
            raw_paths[s].unlink()

    manifest = {
        "format": STORE_FORMAT,
        "num_vertices": n,
        "num_edges": total_edges,
        "num_shards": num_shards,
        "dedup": bool(dedup),
        "drop_self_loops": bool(drop_self_loops),
        "vertex_starts": [int(v) for v in starts],
        "shards": shards,
    }
    if meta:
        manifest["meta"] = dict(meta)
    with open(path / MANIFEST_NAME, "w", encoding="ascii") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
    return ShardStore(path)


class ShardStore:
    """An opened shard-store directory: manifest + per-shard memmaps."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise GraphError(f"no shard-store manifest at {manifest_path}")
        with open(manifest_path, "r", encoding="ascii") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != STORE_FORMAT:
            raise GraphError(
                f"unsupported shard-store format {manifest.get('format')!r}")
        self.manifest = manifest
        self.num_vertices = int(manifest["num_vertices"])
        self.num_edges = int(manifest["num_edges"])
        self.num_shards = int(manifest["num_shards"])
        self.vertex_starts = np.asarray(manifest["vertex_starts"],
                                        dtype=np.int64)
        if (self.vertex_starts.size != self.num_shards + 1
                or self.vertex_starts[0] != 0
                or self.vertex_starts[-1] != self.num_vertices):
            raise GraphError("manifest vertex_starts are inconsistent")
        self._indptrs: list[np.ndarray] = []
        self._indices: list[np.ndarray] = []
        for s, shard in enumerate(manifest["shards"]):
            indptr = np.load(self.path / shard["indptr"], mmap_mode="r")
            local_n = (self.vertex_starts[s + 1] - self.vertex_starts[s])
            if indptr.size != local_n + 1:
                raise GraphError(f"shard {s} indptr does not match its "
                                 "vertex range")
            indices = np.load(self.path / shard["indices"], mmap_mode="r")
            if indices.size != int(shard["num_edges"]):
                raise GraphError(f"shard {s} indices size mismatch")
            self._indptrs.append(indptr)
            self._indices.append(indices)
        counts = np.array([idx.size for idx in self._indices],
                          dtype=np.int64)
        self.edge_offsets = np.zeros(self.num_shards + 1, dtype=np.int64)
        np.cumsum(counts, out=self.edge_offsets[1:])
        if self.edge_offsets[-1] != self.num_edges:
            raise GraphError("manifest edge count does not match shards")
        self._global_indptr: np.ndarray | None = None

    # ------------------------------------------------------------------
    def global_indptr(self) -> np.ndarray:
        """The full CSR offsets array (O(n) resident, assembled once).

        The cached array is served read-only: every
        :class:`ShardBackedGraph` over this store aliases it, so an
        in-place write would corrupt them all — it fails loudly
        instead.
        """
        if self._global_indptr is None:
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            for s in range(self.num_shards):
                lo, hi = self.vertex_starts[s], self.vertex_starts[s + 1]
                indptr[lo + 1: hi + 1] = (self._indptrs[s][1:]
                                          + self.edge_offsets[s])
            indptr.flags.writeable = False
            self._global_indptr = indptr
        return self._global_indptr

    def shard_indices(self, s: int) -> np.ndarray:
        """Shard ``s``'s destination array (a read-only memmap)."""
        return self._indices[s]

    def shard_indptr(self, s: int) -> np.ndarray:
        """Shard ``s``'s local CSR offsets (memmap)."""
        return self._indptrs[s]

    def shard_edge_count(self, s: int) -> int:
        return int(self.edge_offsets[s + 1] - self.edge_offsets[s])

    def largest_shard_edges(self) -> int:
        return int(np.diff(self.edge_offsets).max(initial=0))

    def shard_of(self, v: int) -> int:
        return int(np.searchsorted(self.vertex_starts, v, side="right") - 1)

    def shard_of_array(self, vertices: np.ndarray) -> np.ndarray:
        return (np.searchsorted(self.vertex_starts, vertices, side="right")
                - 1)

    def indices_range(self, lo: int, hi: int) -> np.ndarray:
        """Global edge slots ``[lo, hi)``; zero-copy within one shard.

        Always read-only: the single-shard path is a memmap slice
        (shared pages), and the stitched multi-shard result is locked
        too so both paths behave identically under mutation.
        """
        if hi <= lo:
            return np.zeros(0, dtype=np.int64)
        s = int(np.searchsorted(self.edge_offsets, lo, side="right") - 1)
        if hi <= self.edge_offsets[s + 1]:
            off = int(self.edge_offsets[s])
            return self._indices[s][lo - off: hi - off]
        pieces = []
        while lo < hi:
            end = int(min(hi, self.edge_offsets[s + 1]))
            off = int(self.edge_offsets[s])
            pieces.append(np.asarray(self._indices[s][lo - off: end - off]))
            lo, s = end, s + 1
        out = np.concatenate(pieces)
        out.flags.writeable = False
        return out


class ShardBackedGraph(Graph):
    """The ``Graph`` API over a :class:`ShardStore`.

    Holds only the O(n) offsets array in memory; adjacency reads are
    memmap slices.  Accessing ``out_indices`` raises — whole-edge-array
    consumers must go through :meth:`out_indices_range`,
    :meth:`out_edges_of` or :meth:`to_graph` so O(m) materialization is
    always an explicit choice.
    """

    __slots__ = ("store",)

    def __init__(self, store: ShardStore):
        # Graph.__init__ would assign the ``out_indices`` slot, which the
        # raising property below must keep shadowed — so replicate the
        # indptr-side validation instead of delegating.
        indptr = store.global_indptr()
        if indptr[0] != 0 or indptr[-1] != store.num_edges:
            raise GraphError("indptr does not cover the shard store")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        self.out_indptr = indptr
        self._in_indptr = None
        self._in_indices = None
        self.store = store

    @property
    def out_indices(self) -> np.ndarray:
        raise GraphError(
            "ShardBackedGraph does not materialize out_indices; use "
            "out_indices_range()/out_edges_of() or to_graph()")

    @property
    def num_edges(self) -> int:
        return self.store.num_edges

    def out_neighbors(self, v: int) -> np.ndarray:
        lo = int(self.out_indptr[v])
        hi = int(self.out_indptr[v + 1])
        return self.store.indices_range(lo, hi)

    def out_indices_range(self, lo: int, hi: int) -> np.ndarray:
        return self.store.indices_range(int(lo), int(hi))

    def out_edges_of(
        self, vertices: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        verts = np.asarray(vertices, dtype=np.int64)
        starts = self.out_indptr[verts]
        counts = self.out_indptr[verts + 1] - starts
        m = int(counts.sum())
        if m == 0:
            return (np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64))
        src = np.repeat(verts, counts)
        dst = np.empty(m, dtype=np.int64)
        block_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        shard_ids = self.store.shard_of_array(verts)
        for s in np.unique(shard_ids):
            sel = shard_ids == s
            idx_in = _expand_blocks(
                starts[sel] - self.store.edge_offsets[s], counts[sel])
            idx_out = _expand_blocks(block_starts[sel], counts[sel])
            dst[idx_out] = self.store.shard_indices(int(s))[idx_in]
        return src, dst

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        for v in range(self.num_vertices):
            for u in self.out_neighbors(v):
                yield v, int(u)

    def to_graph(self) -> Graph:
        """Materialize an in-memory :class:`Graph` (tests, small sizes)."""
        pieces = [np.asarray(self.store.shard_indices(s))  # repro: ignore[OOC001] -- to_graph() is the documented O(m) materialization point
                  for s in range(self.store.num_shards)]
        indices = (np.concatenate(pieces) if pieces
                   else np.zeros(0, dtype=np.int64))
        return Graph(self.out_indptr.copy(), indices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if not np.array_equal(self.out_indptr, other.out_indptr):
            return False
        for s in range(self.store.num_shards):
            lo = int(self.store.edge_offsets[s])
            hi = int(self.store.edge_offsets[s + 1])
            if not np.array_equal(self.store.shard_indices(s),
                                  other.out_indices_range(lo, hi)):
                return False
        return True

    __hash__ = Graph.__hash__


def open_shard_graph(path: str | Path) -> ShardBackedGraph:
    """Open a shard-store directory as a :class:`ShardBackedGraph`."""
    return ShardBackedGraph(ShardStore(path))
