"""Directed graph in compressed-sparse-row (CSR) form.

This is the core in-memory representation used throughout the reproduction.
Surfer stores graphs as adjacency lists ``<ID, d, neighbors>`` (Section 3 of
the paper); CSR is the natural columnar equivalent: one ``int64`` index array
per direction plus an offsets array.  Graphs are immutable once built, which
lets partitioners, engines and the simulator share them freely.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph"]

# Pairs per block when ingesting a lazy edge iterable: bounds the
# transient Python-object overhead to O(chunk) instead of O(m).
_INGEST_CHUNK = 1 << 16


def _edges_to_array(edges: Iterable[tuple[int, int]] | np.ndarray) -> np.ndarray:
    """Materialize an edge iterable as one array, in fixed-size chunks.

    A plain ``np.asarray(list(edges))`` holds every pair as a Python
    tuple simultaneously — roughly 10x the final array's footprint.
    Converting ``_INGEST_CHUNK`` pairs at a time keeps the per-pair
    object overhead bounded while producing the identical array.
    """
    if isinstance(edges, np.ndarray):
        return edges
    it = iter(edges)
    blocks: list[np.ndarray] = []
    try:
        while True:
            chunk = list(islice(it, _INGEST_CHUNK))
            if not chunk:
                break
            blocks.append(np.asarray(chunk))
        if not blocks:
            return np.zeros((0, 2), dtype=np.int64)
        if len(blocks) == 1:
            return blocks[0]
        return np.concatenate(blocks)
    except ValueError as exc:
        raise GraphError("edges must be (m, 2) pairs") from exc


def _build_csr(
    src: np.ndarray, dst: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build (indptr, indices) sorted by source vertex, then destination."""
    order = np.lexsort((dst, src))
    src_sorted = src[order]
    indices = dst[order]
    counts = np.bincount(src_sorted, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices.astype(np.int64, copy=False)


class Graph:
    """An immutable directed graph over vertices ``0 .. n-1``.

    Parameters
    ----------
    out_indptr, out_indices:
        CSR arrays of the out-adjacency.  ``out_indices[out_indptr[v] :
        out_indptr[v + 1]]`` are the out-neighbors of ``v``.

    Use :meth:`from_edges` to construct from an edge list.  The in-adjacency
    is built lazily on first access and cached.
    """

    __slots__ = ("out_indptr", "out_indices", "_in_indptr", "_in_indices")

    def __init__(self, out_indptr: np.ndarray, out_indices: np.ndarray):
        out_indptr = np.asarray(out_indptr, dtype=np.int64)
        out_indices = np.asarray(out_indices, dtype=np.int64)
        if out_indptr.ndim != 1 or out_indices.ndim != 1:
            raise GraphError("CSR arrays must be one-dimensional")
        if out_indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if out_indptr[0] != 0 or out_indptr[-1] != out_indices.size:
            raise GraphError("indptr does not cover the indices array")
        if np.any(np.diff(out_indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = out_indptr.size - 1
        if out_indices.size and (
            out_indices.min() < 0 or out_indices.max() >= n
        ):
            raise GraphError("edge endpoint out of range")
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self._in_indptr: np.ndarray | None = None
        self._in_indices: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        num_vertices: int | None = None,
        dedup: bool = False,
        drop_self_loops: bool = False,
    ) -> "Graph":
        """Build a graph from ``(src, dst)`` pairs.

        ``edges`` may be any iterable of pairs or an ``(m, 2)`` array.
        ``num_vertices`` defaults to ``max endpoint + 1``.
        """
        arr = _edges_to_array(edges)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError("edges must be (m, 2) pairs")
        src = arr[:, 0].astype(np.int64, copy=False)
        dst = arr[:, 1].astype(np.int64, copy=False)
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphError("vertex ids must be non-negative")
        if num_vertices is None:
            num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        elif src.size and max(src.max(), dst.max()) >= num_vertices:
            raise GraphError("edge endpoint exceeds num_vertices")
        if drop_self_loops and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if dedup and src.size:
            pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
            src, dst = pairs[:, 0], pairs[:, 1]
        indptr, indices = _build_csr(src, dst, num_vertices)
        return cls(indptr, indices)

    @classmethod
    def empty(cls, num_vertices: int) -> "Graph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return cls(np.zeros(num_vertices + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.out_indptr.size - 1

    @property
    def num_edges(self) -> int:
        return self.out_indices.size

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` (a CSR slice; do not mutate)."""
        return self.out_indices[self.out_indptr[v]: self.out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (a CSR slice; do not mutate)."""
        self._ensure_in_csr()
        assert self._in_indptr is not None and self._in_indices is not None
        return self._in_indices[self._in_indptr[v]: self._in_indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        return int(self.out_indptr[v + 1] - self.out_indptr[v])

    def in_degree(self, v: int) -> int:
        self._ensure_in_csr()
        assert self._in_indptr is not None
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex as an ``int64`` array."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex as an ``int64`` array."""
        self._ensure_in_csr()
        assert self._in_indptr is not None
        return np.diff(self._in_indptr)

    @property
    def in_indptr(self) -> np.ndarray:
        self._ensure_in_csr()
        assert self._in_indptr is not None
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        self._ensure_in_csr()
        assert self._in_indices is not None
        return self._in_indices

    def _ensure_in_csr(self) -> None:
        if self._in_indptr is None:
            src = self.edge_sources()
            self._in_indptr, self._in_indices = _build_csr(
                self.out_indices, src, self.num_vertices
            )

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge, aligned with ``out_indices``."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.out_degrees()
        )

    def out_edges_of(
        self, vertices: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """All out-edges of ``vertices`` as aligned ``(src, dst)`` arrays.

        Edges appear in scan order — ``vertices`` order, CSR order within
        each vertex — exactly the order a nested ``for u: for v in
        out_neighbors(u)`` loop visits them.  This is the bulk gather the
        vectorized Transfer fast path runs instead of that loop.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        starts = self.out_indptr[verts]
        counts = self.out_indptr[verts + 1] - starts
        m = int(counts.sum())
        if m == 0:
            return (np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64))
        src = np.repeat(verts, counts)
        block_starts = np.concatenate(
            ([0], np.cumsum(counts)[:-1])
        )
        idx = (np.arange(m, dtype=np.int64)
               + np.repeat(starts - block_starts, counts))
        return src, self.out_indices[idx]

    def out_indices_range(self, lo: int, hi: int) -> np.ndarray:
        """Edge slots ``[lo, hi)`` of the CSR destination array.

        The contract shard-backed graphs implement zero-copy from a
        memmapped shard; here it is a plain view.  Callers must treat
        the result as read-only.
        """
        return self.out_indices[lo:hi]

    def edges(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array in CSR order."""
        return np.stack([self.edge_sources(), self.out_indices], axis=1)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield ``(src, dst)`` tuples in CSR order."""
        indptr, indices = self.out_indptr, self.out_indices
        for v in range(self.num_vertices):
            for j in range(indptr[v], indptr[v + 1]):
                yield v, int(indices[j])

    def has_edge(self, src: int, dst: int) -> bool:
        row = self.out_neighbors(src)
        idx = np.searchsorted(row, dst)
        return bool(idx < row.size and row[idx] == dst)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """The graph with every edge reversed (the RLG application output)."""
        self._ensure_in_csr()
        assert self._in_indptr is not None and self._in_indices is not None
        return Graph(self._in_indptr.copy(), self._in_indices.copy())

    def symmetrized(self) -> "Graph":
        """The graph with every edge present in both directions.

        Undirected-semantics algorithms (e.g. connected components by
        label propagation) run on this view so information flows against
        the original edge direction too.
        """
        src = self.edge_sources()
        dst = self.out_indices
        both = np.stack(
            [np.concatenate([src, dst]), np.concatenate([dst, src])],
            axis=1,
        )
        return Graph.from_edges(both, num_vertices=self.num_vertices,
                                dedup=True, drop_self_loops=True)

    def to_undirected(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Symmetrized weighted adjacency used by the partitioner.

        Returns ``(indptr, indices, weights)`` where parallel/antiparallel
        edges are merged with summed multiplicity and self loops are dropped.
        """
        src = self.edge_sources()
        dst = self.out_indices
        keep = src != dst
        s = np.concatenate([src[keep], dst[keep]])
        d = np.concatenate([dst[keep], src[keep]])
        if s.size == 0:
            n = self.num_vertices
            return (np.zeros(n + 1, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64))
        key = s * np.int64(self.num_vertices) + d
        uniq, counts = np.unique(key, return_counts=True)
        us = (uniq // self.num_vertices).astype(np.int64)
        ud = (uniq % self.num_vertices).astype(np.int64)
        order = np.lexsort((ud, us))
        us, ud, counts = us[order], ud[order], counts[order]
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(us, minlength=self.num_vertices), out=indptr[1:])
        return indptr, ud, counts.astype(np.int64)

    def subgraph(self, vertices: Sequence[int] | np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, original_ids)`` where ``sub`` uses local ids
        ``0 .. len(vertices)-1`` and ``original_ids[local] = global``.
        """
        verts = np.asarray(vertices, dtype=np.int64)
        if verts.size != np.unique(verts).size:
            raise GraphError("subgraph vertices must be distinct")
        local = -np.ones(self.num_vertices, dtype=np.int64)
        local[verts] = np.arange(verts.size)
        src = self.edge_sources()
        dst = self.out_indices
        keep = (local[src] >= 0) & (local[dst] >= 0)
        indptr, indices = _build_csr(local[src[keep]], local[dst[keep]], verts.size)
        return Graph(indptr, indices), verts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (np.array_equal(self.out_indptr, other.out_indptr)
                and np.array_equal(self.out_indices, other.out_indices))

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))
