"""Synthetic graph generators.

The paper evaluates Surfer on the MSN social network and on synthetic graphs
built by "generating multiple small graphs with small-world characteristics
using an existing generator [R-MAT], and next randomly changing a ratio
``p_r`` of edges to connect these small graphs into a large graph"
(Appendix F).  This module provides:

* :func:`rmat` — the R-MAT recursive generator of Chakrabarti et al. [2],
  which produces the power-law, community-structured graphs the paper's
  generator is based on;
* :func:`small_world` — a directed Watts–Strogatz ring;
* :func:`composite_social_graph` — the paper's recipe: many small-world /
  R-MAT communities glued together by rewiring a fraction ``p_r`` of edges;
* :func:`erdos_renyi` and :func:`ring` / :func:`grid` as structureless and
  fully regular baselines for tests and ablations.

Every generator takes a ``seed`` and is deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import Graph

__all__ = [
    "as_generator",
    "rmat",
    "small_world",
    "composite_social_graph",
    "erdos_renyi",
    "ring",
    "grid",
    "star",
    "web_feeder_graph",
]


def as_generator(seed: int | np.random.Generator) -> np.random.Generator:
    """One seeded Generator for every generator in this module.

    An ``int`` seeds a fresh ``default_rng`` — bit-identical across
    processes and to the historical ``seed=<int>`` outputs.  Passing a
    ``Generator`` threads one RNG through several generator calls (each
    call advances it), which keeps a multi-graph experiment on a single
    seed while every individual draw stays reproducible.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator = 0,
    dedup: bool = True,
) -> Graph:
    """R-MAT graph with ``2**scale`` vertices and ``edge_factor * n`` edges.

    Each edge picks one quadrant of the adjacency matrix per bit with
    probabilities ``(a, b, c, d)``, ``d = 1 - a - b - c``; this yields the
    skewed degree distributions and block community structure of real social
    networks.  Self loops are dropped; duplicates are dropped when ``dedup``.
    """
    if scale < 0:
        raise GraphError("scale must be non-negative")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("R-MAT probabilities must be non-negative")
    n = 1 << scale
    m = edge_factor * n
    rng = as_generator(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # probability of descending into the "right half" for src / dst bits
    p_src_right = c + d
    p_dst_right_given_src_left = b / (a + b) if (a + b) > 0 else 0.0
    p_dst_right_given_src_right = d / (c + d) if (c + d) > 0 else 0.0
    for bit in range(scale):
        r1 = rng.random(m)
        r2 = rng.random(m)
        src_right = r1 < p_src_right
        p_dst = np.where(
            src_right, p_dst_right_given_src_right, p_dst_right_given_src_left
        )
        dst_right = r2 < p_dst
        src = (src << 1) | src_right.astype(np.int64)
        dst = (dst << 1) | dst_right.astype(np.int64)
    return Graph.from_edges(
        np.stack([src, dst], axis=1),
        num_vertices=n,
        dedup=dedup,
        drop_self_loops=True,
    )


def small_world(
    num_vertices: int, k: int = 4, rewire_p: float = 0.05,
    seed: int | np.random.Generator = 0,
) -> Graph:
    """Directed Watts–Strogatz small-world graph.

    Each vertex points to its ``k`` clockwise ring successors; each edge is
    rewired to a uniform random destination with probability ``rewire_p``.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if not 0 <= rewire_p <= 1:
        raise GraphError("rewire_p must lie in [0, 1]")
    k = min(k, max(num_vertices - 1, 0))
    rng = as_generator(seed)
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), k)
    offsets = np.tile(np.arange(1, k + 1, dtype=np.int64), num_vertices)
    dst = (src + offsets) % num_vertices
    if rewire_p > 0 and src.size:
        rewire = rng.random(src.size) < rewire_p
        dst = dst.copy()
        dst[rewire] = rng.integers(0, num_vertices, size=int(rewire.sum()))
    return Graph.from_edges(
        np.stack([src, dst], axis=1),
        num_vertices=num_vertices,
        dedup=True,
        drop_self_loops=True,
    )


def composite_social_graph(
    num_communities: int = 16,
    community_size: int = 256,
    k: int = 6,
    p_r: float = 0.05,
    seed: int | np.random.Generator = 0,
    community_model: str = "rmat",
    locality: float = 0.7,
) -> Graph:
    """The paper's synthetic-graph recipe (Appendix F), scaled down.

    Generates ``num_communities`` communities of ``community_size``
    vertices each with the R-MAT generator the paper cites [2] (power-law
    degrees; ``community_model="small-world"`` substitutes a
    Watts–Strogatz ring), then rewires a ratio ``p_r`` of all edges to
    destinations in *other* communities, gluing the communities into one
    large graph.  ``p_r`` defaults to the paper's 5 %; ``k`` is the
    average out-degree within a community.

    ``locality`` controls the rewired destinations' community choice:
    with probability ``locality`` the hop distance on the community ring
    is geometric (near communities preferred — the hierarchical,
    friends-of-friends locality real social networks such as MSN show at
    every scale), otherwise uniform.  ``locality=0`` reproduces flat
    uniform gluing.
    """
    if num_communities <= 0 or community_size <= 0:
        raise GraphError("community counts must be positive")
    if not 0 <= p_r <= 1:
        raise GraphError("p_r must lie in [0, 1]")
    if not 0 <= locality <= 1:
        raise GraphError("locality must lie in [0, 1]")
    if community_model not in ("rmat", "small-world"):
        raise GraphError("community_model must be 'rmat' or 'small-world'")
    rng = as_generator(seed)
    n = num_communities * community_size
    all_src: list[np.ndarray] = []
    all_dst: list[np.ndarray] = []
    for i in range(num_communities):
        community_seed = int(rng.integers(2**31))
        if community_model == "rmat":
            scale = max(1, int(np.ceil(np.log2(community_size))))
            sub = rmat(scale, edge_factor=k, seed=community_seed)
            if sub.num_vertices > community_size:
                sub, _ = sub.subgraph(np.arange(community_size))
        else:
            sub = small_world(community_size, k=k, rewire_p=0.05,
                              seed=community_seed)
        base = i * community_size
        all_src.append(sub.edge_sources() + base)
        all_dst.append(sub.out_indices + base)
    src = np.concatenate(all_src)
    dst = np.concatenate(all_dst).copy()
    if p_r > 0 and src.size:
        rewire = np.flatnonzero(rng.random(src.size) < p_r)
        num = rewire.size
        src_comm = src[rewire] // community_size
        # geometric ring offset for local rewires, uniform otherwise
        local_mask = rng.random(num) < locality
        offsets = rng.geometric(0.5, size=num)
        signs = rng.choice([-1, 1], size=num)
        near = (src_comm + signs * offsets) % num_communities
        uniform = rng.integers(0, num_communities, size=num)
        dst_comm = np.where(local_mask, near, uniform)
        dst[rewire] = (dst_comm * community_size
                       + rng.integers(0, community_size, size=num))
    return Graph.from_edges(
        np.stack([src, dst], axis=1), num_vertices=n, dedup=True,
        drop_self_loops=True,
    )


def erdos_renyi(num_vertices: int, num_edges: int,
                seed: int | np.random.Generator = 0) -> Graph:
    """Uniform random directed graph with ~``num_edges`` distinct edges."""
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    rng = as_generator(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    return Graph.from_edges(
        np.stack([src, dst], axis=1),
        num_vertices=num_vertices,
        dedup=True,
        drop_self_loops=True,
    )


def ring(num_vertices: int) -> Graph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return Graph.from_edges(np.stack([src, dst], axis=1),
                            num_vertices=num_vertices)


def grid(rows: int, cols: int) -> Graph:
    """Bidirected 2-D grid; handy for partitioners (clean bisections)."""
    if rows <= 0 or cols <= 0:
        raise GraphError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    pairs = []
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    for fwd in (right, down):
        pairs.append(fwd)
        pairs.append(fwd[:, ::-1])
    edges = np.concatenate(pairs) if pairs else np.zeros((0, 2), dtype=np.int64)
    return Graph.from_edges(edges, num_vertices=rows * cols, dedup=True)


def web_feeder_graph(
    core: int,
    feeders: int,
    chords_per_vertex: int = 3,
    feeder_degree: int = 2,
    seed: int | np.random.Generator = 0,
) -> Graph:
    """A web-crawl-like graph: a linked core plus no-inlink feeders.

    Vertices ``0..core-1`` form a strongly connected core (a ring plus
    ``chords_per_vertex`` random chords each); vertices ``core..`` are
    *feeders* with ``feeder_degree`` out-edges into the core and **no
    in-edges** — the "freshly crawled page nobody links to yet" shape.
    Under delta-based propagation the feeders fall out of the frontier
    after one iteration, so the convergent tail touches only the core:
    the workload the sparse-frontier benchmarks exercise.
    """
    if core <= 0 or feeders < 0:
        raise GraphError("core must be positive and feeders non-negative")
    rng = as_generator(seed)
    n = core + feeders
    ring_src = np.arange(core, dtype=np.int64)
    ring_dst = (ring_src + 1) % core
    chord_src = np.repeat(ring_src, chords_per_vertex)
    chord_dst = rng.integers(0, core, size=chord_src.size)
    feeder_src = np.repeat(np.arange(core, n, dtype=np.int64),
                           feeder_degree)
    feeder_dst = rng.integers(0, core, size=feeder_src.size)
    src = np.concatenate([ring_src, chord_src, feeder_src])
    dst = np.concatenate([ring_dst, chord_dst, feeder_dst])
    return Graph.from_edges(
        np.stack([src, dst], axis=1),
        num_vertices=n,
        dedup=True,
        drop_self_loops=True,
    )


def star(num_leaves: int, out: bool = True) -> Graph:
    """Star graph: hub 0 with ``num_leaves`` leaves (out- or in-edges)."""
    if num_leaves < 0:
        raise GraphError("num_leaves must be non-negative")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    src, dst = (hub, leaves) if out else (leaves, hub)
    return Graph.from_edges(np.stack([src, dst], axis=1),
                            num_vertices=num_leaves + 1)
