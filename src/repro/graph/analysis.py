"""Graph-profile analysis: the statistics that drive deployment choices.

Before deploying a graph, an operator wants the numbers the paper's
design decisions hinge on: degree skew (VDD hotspots), clustering
(triangle density), community modularity (how much a partitioner can
save), and the partitioning-quality curve (Table 5's ier-vs-P
trade-off).  :func:`profile_graph` collects them; the CLI's ``graphinfo``
command prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import Graph
from repro.graph.algorithms import weakly_connected_components

__all__ = ["GraphProfile", "profile_graph", "degree_statistics",
           "clustering_coefficient", "ier_curve"]


@dataclass
class GraphProfile:
    """Summary statistics of a graph."""

    num_vertices: int
    num_edges: int
    degree_mean: float
    degree_max: int
    degree_gini: float
    reciprocity: float
    clustering: float
    num_components: int
    largest_component_fraction: float
    ier_curve: dict[int, float] = field(default_factory=dict)

    def report(self) -> str:
        lines = [
            f"vertices            : {self.num_vertices:,}",
            f"edges               : {self.num_edges:,}",
            f"out-degree mean/max : {self.degree_mean:.2f} / "
            f"{self.degree_max}",
            f"degree gini         : {self.degree_gini:.3f} "
            "(0 = uniform, 1 = one hub)",
            f"edge reciprocity    : {self.reciprocity:.1%}",
            f"clustering coeff.   : {self.clustering:.4f} (sampled)",
            f"weak components     : {self.num_components} "
            f"(largest holds {self.largest_component_fraction:.1%})",
        ]
        if self.ier_curve:
            parts = "  ".join(f"P={p}: {v:.1%}"
                              for p, v in sorted(self.ier_curve.items()))
            lines.append(f"inner-edge ratio    : {parts}")
        return "\n".join(lines)


def degree_statistics(graph: Graph) -> tuple[float, int, float]:
    """(mean, max, gini) of the out-degree distribution."""
    degrees = graph.out_degrees().astype(np.float64)
    if degrees.size == 0:
        return 0.0, 0, 0.0
    mean = float(degrees.mean())
    peak = int(degrees.max())
    if degrees.sum() == 0:
        return mean, peak, 0.0
    sorted_deg = np.sort(degrees)
    n = sorted_deg.size
    cumulative = np.cumsum(sorted_deg)
    gini = float(
        (n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n
    )
    return mean, peak, max(0.0, gini)


def clustering_coefficient(graph: Graph, sample: int = 200,
                           seed: int = 0) -> float:
    """Sampled average local clustering coefficient (undirected view)."""
    indptr, indices, __ = graph.to_undirected()
    n = graph.num_vertices
    if n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    vertices = (np.arange(n) if n <= sample
                else rng.choice(n, size=sample, replace=False))
    neighbor_sets = {}

    def neighbors_of(v: int) -> set[int]:
        if v not in neighbor_sets:
            neighbor_sets[v] = set(
                int(w) for w in indices[indptr[v]: indptr[v + 1]]
            )
        return neighbor_sets[v]

    total, counted = 0.0, 0
    for v in vertices:
        v = int(v)
        nbrs = sorted(neighbors_of(v))
        k = len(nbrs)
        if k < 2:
            continue
        links = sum(
            1 for i, a in enumerate(nbrs) for b in nbrs[i + 1:]
            if b in neighbors_of(a)
        )
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0


def reciprocity(graph: Graph) -> float:
    """Fraction of edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    mutual = sum(1 for u, v in graph.iter_edges() if graph.has_edge(v, u))
    return mutual / graph.num_edges


def ier_curve(graph: Graph, parts_list=(8, 16, 32),
              seed: int = 0) -> dict[int, float]:
    """Inner-edge ratio achieved by the partitioner per partition count."""
    from repro.partitioning.metrics import inner_edge_ratio
    from repro.partitioning.recursive import recursive_bisection
    from repro.partitioning.wgraph import WGraph

    wgraph = WGraph.from_digraph(graph)
    return {
        p: inner_edge_ratio(
            graph, recursive_bisection(wgraph, p, seed=seed).parts
        )
        for p in parts_list
    }


def profile_graph(graph: Graph, parts_list=(8, 16, 32),
                  seed: int = 0, with_ier: bool = True) -> GraphProfile:
    """Compute the full deployment profile of ``graph``."""
    mean, peak, gini = degree_statistics(graph)
    labels = weakly_connected_components(graph)
    counts = np.bincount(labels) if labels.size else np.zeros(0)
    return GraphProfile(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        degree_mean=mean,
        degree_max=peak,
        degree_gini=gini,
        reciprocity=reciprocity(graph),
        clustering=clustering_coefficient(graph, seed=seed),
        num_components=int(counts.size),
        largest_component_fraction=(
            float(counts.max() / graph.num_vertices)
            if graph.num_vertices else 0.0
        ),
        ier_curve=(ier_curve(graph, parts_list, seed) if with_ier else {}),
    )
