"""Graph substrate: CSR digraphs, generators, serialization, algorithms."""

from repro.graph.digraph import Graph
from repro.graph.builder import GraphBuilder, relabel_edges
from repro.graph.generators import (
    composite_social_graph,
    erdos_renyi,
    grid,
    ring,
    rmat,
    small_world,
    star,
)
from repro.graph.io import (
    adjacency_record_bytes,
    graph_storage_bytes,
    read_edge_list,
    write_edge_list,
    read_adjacency_binary,
    read_adjacency_text,
    write_adjacency_binary,
    write_adjacency_text,
)
from repro.graph.analysis import (
    GraphProfile,
    clustering_coefficient,
    ier_curve,
    profile_graph,
)
from repro.graph.algorithms import (
    bfs_levels,
    count_triangles,
    degree_histogram,
    estimate_diameter,
    multi_source_bfs,
    pagerank,
    two_hop_neighbors,
    weakly_connected_components,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "relabel_edges",
    "composite_social_graph",
    "erdos_renyi",
    "grid",
    "ring",
    "rmat",
    "small_world",
    "star",
    "adjacency_record_bytes",
    "graph_storage_bytes",
    "read_adjacency_binary",
    "read_adjacency_text",
    "read_edge_list",
    "write_edge_list",
    "write_adjacency_binary",
    "write_adjacency_text",
    "GraphProfile",
    "clustering_coefficient",
    "ier_curve",
    "profile_graph",
    "bfs_levels",
    "count_triangles",
    "degree_histogram",
    "estimate_diameter",
    "multi_source_bfs",
    "pagerank",
    "two_hop_neighbors",
    "weakly_connected_components",
]
