"""The home-grown MapReduce programming interface (Sections 2, 3.1).

Following the paper, ``map`` takes a whole *graph partition* as input — so
developers can (and for performance must) hand-roll partition-level data
reduction such as the NR hash table of Algorithm 2 — and ``reduce``
receives all values grouped by key after a hash-partitioned shuffle that is
oblivious to the graph structure.  The contrast in UDF size and shuffle
traffic against propagation is the point of Tables 2–4 and Figure 7.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import JobError
from repro.graph.io import VALUE_BYTES, VERTEX_ID_BYTES

__all__ = ["MapReduceApp", "kv_nbytes"]

Emit = Callable[[Any, Any], None]


class MapReduceApp:
    """Base class for MapReduce applications on partitioned graphs."""

    name = "mr-app"
    #: outputs are per-vertex values the next round reads by partition,
    #: so reducers must ship them back to the graph layout (a cost
    #: propagation never pays — its Combine writes in place).
    writeback_to_partitions = False

    # ------------------------------------------------------------------
    # Lifecycle (mirrors PropagationApp)
    # ------------------------------------------------------------------
    def setup(self, pgraph) -> Any:
        """Create the iteration state."""
        return None

    def update(self, state: Any, outputs: dict) -> None:
        """Fold one round's reduce outputs into the state."""
        values = getattr(state, "values", None)
        if values is None:
            raise JobError(
                f"{self.name}: override update() or give state a .values"
            )
        for key, value in outputs.items():
            values[key] = value

    def finalize(self, state: Any) -> Any:
        return state

    # ------------------------------------------------------------------
    # User-defined functions
    # ------------------------------------------------------------------
    def map(self, partition: int, pgraph, state: Any, emit: Emit) -> None:
        """Process one graph partition, emitting (key, value) pairs."""
        raise JobError(f"{self.name}: map() not implemented")

    def reduce(self, key, values: list, state: Any, emit: Emit) -> None:
        """Fold all values of ``key``, emitting output pairs."""
        raise JobError(f"{self.name}: reduce() not implemented")

    # ------------------------------------------------------------------
    # Cost-model sizing hooks
    # ------------------------------------------------------------------
    def key_nbytes(self, key) -> float:
        return float(VERTEX_ID_BYTES)

    def value_nbytes(self, value) -> float:
        return float(VALUE_BYTES)

    def output_nbytes(self, key, value) -> float:
        return self.key_nbytes(key) + self.value_nbytes(value)


def kv_nbytes(app: MapReduceApp, key, value) -> float:
    """Wire size of one intermediate key/value record."""
    return app.key_nbytes(key) + app.value_nbytes(value)
