"""The home-grown MapReduce programming interface (Sections 2, 3.1).

Following the paper, ``map`` takes a whole *graph partition* as input — so
developers can (and for performance must) hand-roll partition-level data
reduction such as the NR hash table of Algorithm 2 — and ``reduce``
receives all values grouped by key after a hash-partitioned shuffle that is
oblivious to the graph structure.  The contrast in UDF size and shuffle
traffic against propagation is the point of Tables 2–4 and Figure 7.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import JobError
from repro.graph.io import VALUE_BYTES, VERTEX_ID_BYTES

__all__ = ["MapReduceApp", "kv_nbytes"]

Emit = Callable[[Any, Any], None]


class MapReduceApp:
    """Base class for MapReduce applications on partitioned graphs."""

    name = "mr-app"
    #: outputs are per-vertex values the next round reads by partition,
    #: so reducers must ship them back to the graph layout (a cost
    #: propagation never pays — its Combine writes in place).
    writeback_to_partitions = False
    #: NumPy ufunc equivalent of ``combine`` (e.g. ``np.add``) — required
    #: for the map-side combiner on the array fast path.  Must reproduce
    #: ``combine`` bit for bit when left-folded over a key's values in
    #: emission order.
    combine_ufunc = None

    # ------------------------------------------------------------------
    # Lifecycle (mirrors PropagationApp)
    # ------------------------------------------------------------------
    def setup(self, pgraph: Any) -> Any:
        """Create the iteration state."""
        return None

    def update(self, state: Any, outputs: dict) -> None:
        """Fold one round's reduce outputs into the state."""
        values = getattr(state, "values", None)
        if values is None:
            raise JobError(
                f"{self.name}: override update() or give state a .values"
            )
        for key, value in outputs.items():
            values[key] = value

    def finalize(self, state: Any) -> Any:
        return state

    # ------------------------------------------------------------------
    # User-defined functions
    # ------------------------------------------------------------------
    def map(self, partition: int, pgraph: Any, state: Any,
            emit: Emit) -> None:
        """Process one graph partition, emitting (key, value) pairs."""
        raise JobError(f"{self.name}: map() not implemented")

    def reduce(self, key: Any, values: list, state: Any,
               emit: Emit) -> None:
        """Fold all values of ``key``, emitting output pairs."""
        raise JobError(f"{self.name}: reduce() not implemented")

    def combine(self, key: Any, values: list, state: Any) -> Any:
        """Map-side combiner: fold one key's values into a single value.

        Called per distinct key on a mapper's output (values in emission
        order) when the engine runs with ``combiner=True``; the fold must
        be associative so that reducing combined partials equals reducing
        the raw values.  Apps that also set :attr:`combine_ufunc` must
        make the two agree bit for bit — the array fast path left-folds
        with the ufunc in the same emission order.
        """
        raise JobError(f"{self.name}: combine() not implemented")

    # -- vectorized (array-at-a-time) variants --------------------------
    def map_array(self, partition: int, pgraph: Any,
                  state: Any) -> tuple[np.ndarray, np.ndarray] | None:
        """Vectorized ``map``: columnar ``(keys, values)`` for a partition.

        Opt-in hook of the MapReduce fast path.  Must return two aligned
        ndarrays — integer (or fixed-width bytes) ``keys`` and ``values``
        — listing, *in emission order*, exactly the pairs the scalar
        ``map`` would have emitted; or ``None`` to decline, in which case
        the engine re-runs the whole round on the scalar oracle.  Record
        count, per-key value order and the bit patterns of the values
        must match the scalar path exactly; key/value wire sizes must be
        the defaults (the fast path sizes records in closed form).
        """
        return None

    def reduce_array(self, keys: np.ndarray, bounds: np.ndarray,
                     values: np.ndarray,
                     state: Any) -> list[tuple[Any, Any]] | None:
        """Vectorized ``reduce`` over one reducer's sorted groups.

        ``keys`` holds the reducer's distinct keys sorted ascending,
        ``values`` the concatenated bags (each key's values contiguous,
        in shuffle arrival order — partition order, then emission
        order), and ``bounds`` the ``len(keys) + 1`` segment boundaries:
        key ``i``'s bag is ``values[bounds[i]:bounds[i+1]]``.  Must
        return the output pairs as a list of Python-typed ``(key,
        value)`` tuples bit-identical to calling the scalar ``reduce``
        per group — or ``None`` to decline, making the engine fall back
        to per-group scalar ``reduce`` calls (still on the array
        shuffle).
        """
        return None

    # ------------------------------------------------------------------
    # Cost-model sizing hooks
    # ------------------------------------------------------------------
    def key_nbytes(self, key: Any) -> float:
        return float(VERTEX_ID_BYTES)

    def value_nbytes(self, value: Any) -> float:
        return float(VALUE_BYTES)

    def output_nbytes(self, key: Any, value: Any) -> float:
        return self.key_nbytes(key) + self.value_nbytes(value)


def kv_nbytes(app: MapReduceApp, key: Any, value: Any) -> float:
    """Wire size of one intermediate key/value record."""
    return app.key_nbytes(key) + app.value_nbytes(value)
