"""Home-grown MapReduce primitive (the paper's comparison engine)."""

from repro.mapreduce.api import MapReduceApp, kv_nbytes
from repro.mapreduce.engine import MapReduceEngine, RoundReport, reducer_of

__all__ = [
    "MapReduceApp",
    "kv_nbytes",
    "MapReduceEngine",
    "RoundReport",
    "reducer_of",
]
