"""MapReduce execution on partitioned graphs, GFS/MapReduce-style.

One round = three phases folded into two barrier stages:

* **Map** — one task per graph partition on the machine storing it: read
  the partition, run ``map``, spill the emitted pairs to local disk, then
  *shuffle*: hash-partition the pairs by key across all machines.  The
  shuffle is oblivious to the graph partitioning — ``(R - 1) / R`` of the
  data crosses the network no matter how well the graph was cut, which is
  the structural handicap Figure 7 quantifies.
* **Reduce** — one task per machine: stage the received pairs, group by
  key, run ``reduce``, write outputs.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.storage import PartitionStore
from repro.hashing import stable_hash
from repro.mapreduce.api import MapReduceApp, kv_nbytes
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import StageResult, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioned import PartitionedGraph

__all__ = ["MapReduceEngine", "RoundReport", "reducer_of"]


def reducer_of(key, num_reducers: int) -> int:
    """Hash partitioner of the shuffle (Knuth hash for int keys).

    Built on :func:`repro.hashing.stable_hash` so every mapper — in any
    process, under any ``PYTHONHASHSEED`` — sends a key to the same
    reducer.
    """
    return stable_hash(key) % num_reducers


@dataclass
class RoundReport:
    """Cost breakdown of one MapReduce round."""

    map_stage: StageResult
    reduce_stage: StageResult
    map_records: int = 0
    shuffle_bytes: float = 0.0
    network_bytes: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.reduce_stage.end_time - self.map_stage.start_time


class MapReduceEngine:
    """Executes MapReduce rounds over a partitioned graph on a cluster."""

    def __init__(
        self,
        pgraph: PartitionedGraph,
        store: PartitionStore,
        cluster: Cluster,
        assignment: np.ndarray | None = None,
    ):
        self.pgraph = pgraph
        self.store = store
        self.cluster = cluster
        if assignment is None:
            assignment = store.placement_array()
        self.assignment = np.asarray(assignment, dtype=np.int64)

    def run_round(
        self,
        app: MapReduceApp,
        state: Any,
        scheduler: StageScheduler,
    ) -> tuple[dict, RoundReport]:
        """Run one map+shuffle+reduce round; returns (outputs, report)."""
        wall_start = time.perf_counter()
        num_reducers = self.cluster.num_machines
        # -------- Map phase: run UDFs, bucket emissions per reducer ----
        buckets: list[dict] = [dict() for _ in range(num_reducers)]
        bucket_sources: list[dict[int, float]] = [
            {} for _ in range(num_reducers)
        ]
        map_tasks: list[Task] = []
        map_records = 0
        shuffle_bytes = 0.0
        for p in range(self.pgraph.num_parts):
            machine = int(self.assignment[p])
            emitted: list[tuple[Any, Any]] = []
            cpu_holder = {"ops": 0.0}

            def emit(key, value, _out=emitted, _cpu=cpu_holder):
                _out.append((key, value))
                _cpu["ops"] += 1.0

            app.map(p, self.pgraph, state, emit)
            spill = 0.0
            sends: dict[int, float] = {}
            for key, value in emitted:
                nbytes = kv_nbytes(app, key, value)
                spill += nbytes
                r = reducer_of(key, num_reducers)
                buckets[r].setdefault(key, []).append(value)
                sends[r] = sends.get(r, 0.0) + nbytes
                src_map = bucket_sources[r]
                src_map[machine] = src_map.get(machine, 0.0) + nbytes
            map_records += len(emitted)
            shuffle_bytes += spill
            cpu = cpu_holder["ops"] + self.pgraph.partition_edge_count(p)
            fetches: list[tuple[int, float]] = []
            if machine not in self.store.replicas(p):
                fetches.append((self.store.primary(p),
                                float(self.pgraph.partition_bytes(p))))
            spec = self.cluster.machine(machine).spec
            working_set = self.pgraph.partition_bytes(p) + spill
            penalty = (spec.random_io_penalty
                       if working_set > spec.memory_bytes else 1.0)
            map_tasks.append(Task(
                name=f"map[{p}]",
                machine=machine,
                kind="map",
                partition=p,
                # partition scan plus re-reading the spill to serve the
                # shuffle (map outputs are persisted, then served)
                disk_read_bytes=self.pgraph.partition_bytes(p) + spill,
                cpu_ops=cpu,
                disk_write_bytes=spill,  # map-output spill
                sends=[(r, b) for r, b in sorted(sends.items())],
                fetches=fetches,
                disk_penalty=penalty,
            ))
        map_wall = time.perf_counter() - wall_start
        map_result = scheduler.run_stage(map_tasks)
        wall_start = time.perf_counter()

        # -------- Reduce phase ------------------------------------------
        outputs: dict = {}
        reduce_tasks: list[Task] = []
        for r in range(num_reducers):
            grouped = buckets[r]
            cpu = 0.0
            out_bytes = 0.0
            emitted_out: list[tuple[Any, Any]] = []

            def emit(key, value, _out=emitted_out):
                _out.append((key, value))

            for key, values in grouped.items():
                app.reduce(key, values, state, emit)
                cpu += len(values) + 1.0
            writeback: dict[int, float] = {}
            for key, value in emitted_out:
                outputs[key] = value
                nbytes = app.output_nbytes(key, value)
                out_bytes += nbytes
                if app.writeback_to_partitions and isinstance(
                    key, (int, np.integer)
                ) and 0 <= key < self.pgraph.num_vertices:
                    home = int(self.assignment[
                        self.pgraph.partition_of(int(key))
                    ])
                    writeback[home] = writeback.get(home, 0.0) + nbytes
            staged = float(sum(bucket_sources[r].values()))
            inbound = sorted(bucket_sources[r].items())
            reduce_tasks.append(Task(
                name=f"reduce[{r}]",
                machine=r,
                kind="reduce",
                # stage read + external-sort merge pass over the staged data
                disk_read_bytes=2.0 * staged,
                cpu_ops=cpu,
                disk_write_bytes=2.0 * staged + out_bytes,
                sends=sorted(writeback.items()),
                receives=inbound,
                input_transfers=inbound,
            ))
        reduce_wall = time.perf_counter() - wall_start
        reduce_result = scheduler.run_stage(reduce_tasks)

        network_bytes = sum(
            nbytes
            for r, srcs in enumerate(bucket_sources)
            for machine, nbytes in srcs.items()
            if machine != r
        )
        report = RoundReport(
            map_stage=map_result,
            reduce_stage=reduce_result,
            map_records=map_records,
            shuffle_bytes=shuffle_bytes,
            network_bytes=network_bytes,
        )
        self._observe_round(scheduler, report, map_wall + reduce_wall)
        return outputs, report

    def _observe_round(self, scheduler: StageScheduler,
                       report: RoundReport,
                       udf_wall_seconds: float) -> None:
        """Record the round's span and metrics on the job's stream."""
        stream = scheduler.events
        rounds = int(stream.metrics.get("mapreduce.rounds"))
        stream.emit(
            name=f"round[{rounds}]",
            kind="round",
            start=report.map_stage.start_time,
            end=report.reduce_stage.end_time,
            wall_self_seconds=udf_wall_seconds,
        )
        m = stream.metrics
        m.add("mapreduce.rounds")
        m.add("mapreduce.map_records", report.map_records)
        m.add("mapreduce.shuffle_bytes", report.shuffle_bytes)
        m.add("mapreduce.network_bytes", report.network_bytes)
        m.add("wall.udf_seconds", udf_wall_seconds)
