"""MapReduce execution on partitioned graphs, GFS/MapReduce-style.

One round = three phases folded into two barrier stages:

* **Map** — one task per graph partition on the machine storing it: read
  the partition, run ``map``, spill the emitted pairs to local disk, then
  *shuffle*: hash-partition the pairs by key across all machines.  The
  shuffle is oblivious to the graph partitioning — ``(R - 1) / R`` of the
  data crosses the network no matter how well the graph was cut, which is
  the structural handicap Figure 7 quantifies.
* **Reduce** — one task per machine: stage the received pairs, group by
  key, run ``reduce``, write outputs.

Two opt-in layers sit on top of that round (mirroring the propagation
engine's Transfer fast path):

* **Array fast path** (``vectorized``) — apps that implement
  ``map_array`` emit columnar ``(keys, values)`` arrays; the engine
  hash-partitions them with :func:`repro.hashing.stable_hash_array`, and
  reducers run a sort-based group-by (stable argsort + segment
  boundaries) instead of per-record dict inserts, calling
  ``reduce_array`` when available.  Outputs and every cost counter are
  bit-identical to the scalar oracle.
* **Map-side combiner** (``combiner``) — Hadoop-style: each mapper folds
  its output per key (``combine`` scalar / ``combine_ufunc`` array)
  before the shuffle, shrinking spill and network volume at the price of
  one cpu charge per folded record plus one per distinct key.  The
  pre-combine volume is kept on the report so the shuffle reduction is
  an observable quantity.  Both the scalar and the array path implement
  it, so the bit-identity contract holds in either combiner mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.storage import PartitionStore
from repro.errors import JobError
from repro.hashing import stable_hash, stable_hash_array
from repro.mapreduce.api import MapReduceApp, kv_nbytes
from repro.propagation.api import fold_by_dest
from repro.runtime.events import wall_timer
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import StageResult, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioned import PartitionedGraph

__all__ = ["MapReduceEngine", "RoundReport", "reducer_of"]


def reducer_of(key: object, num_reducers: int) -> int:
    """Hash partitioner of the shuffle (Knuth hash for int keys).

    Built on :func:`repro.hashing.stable_hash` so every mapper — in any
    process, under any ``PYTHONHASHSEED`` — sends a key to the same
    reducer.
    """
    return stable_hash(key) % num_reducers


@dataclass
class RoundReport:
    """Cost breakdown of one MapReduce round."""

    map_stage: StageResult
    reduce_stage: StageResult
    map_records: int = 0
    shuffle_bytes: float = 0.0
    network_bytes: float = 0.0
    #: records actually shuffled (== ``map_records`` without a combiner)
    shuffle_records: int = 0
    #: shuffle volume before map-side combining (== ``shuffle_bytes``
    #: without a combiner)
    shuffle_bytes_precombine: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.reduce_stage.end_time - self.map_stage.start_time

    @property
    def combine_reduction(self) -> float:
        """Fraction of the pre-combine shuffle volume the combiner cut."""
        if self.shuffle_bytes_precombine <= 0.0:
            return 0.0
        return 1.0 - self.shuffle_bytes / self.shuffle_bytes_precombine


@dataclass
class _MapOutput:
    """One map task's shuffle chunks and cost bookkeeping.

    ``chunks`` maps reducer id to that reducer's share of this mapper's
    output: a list of ``(key, value)`` pairs on the scalar path, or a
    ``(keys, values)`` array pair on the fast path — both in emission
    order, so reducers see identical per-key bags either way.
    """

    records: int = 0
    shuffled: int = 0
    spill: float = 0.0
    spill_precombine: float = 0.0
    cpu_ops: float = 0.0
    sends: dict[int, float] = field(default_factory=dict)
    chunks: dict[int, Any] = field(default_factory=dict)


class MapReduceEngine:
    """Executes MapReduce rounds over a partitioned graph on a cluster."""

    def __init__(
        self,
        pgraph: PartitionedGraph,
        store: PartitionStore,
        cluster: Cluster,
        assignment: np.ndarray | None = None,
        vectorized: bool | None = None,
        combiner: bool = False,
    ) -> None:
        self.pgraph = pgraph
        self.store = store
        self.cluster = cluster
        if assignment is None:
            assignment = store.placement_array()
        self.assignment = np.asarray(assignment, dtype=np.int64)
        #: None = auto (fast path when the app supports it), False =
        #: scalar oracle, True = require the fast path (JobError if the
        #: app cannot take it).
        self.vectorized = vectorized
        #: fold map output per key before the shuffle (needs
        #: ``combine`` — plus ``combine_ufunc`` on the fast path).
        self.combiner = combiner

    # ------------------------------------------------------------------
    # Fast-path gating
    # ------------------------------------------------------------------
    def _fast_path_ok(self, app: MapReduceApp) -> bool:
        if self.vectorized is False:
            return False
        cls = type(app)
        why = None
        if cls.map_array is MapReduceApp.map_array:
            why = "map_array() is not implemented"
        elif (cls.key_nbytes is not MapReduceApp.key_nbytes
              or cls.value_nbytes is not MapReduceApp.value_nbytes):
            why = "non-default key/value sizing needs per-record calls"
        elif self.combiner and app.combine_ufunc is None:
            why = "combiner=True needs combine_ufunc"
        if why is None:
            return True
        if self.vectorized:
            raise JobError(
                f"{app.name}: vectorized=True but the MapReduce fast "
                f"path is unavailable ({why})"
            )
        return False

    def _check_combiner(self, app: MapReduceApp) -> None:
        if type(app).combine is MapReduceApp.combine:
            raise JobError(
                f"{app.name}: combiner=True but combine() is not "
                "implemented"
            )

    # ------------------------------------------------------------------
    # Round driver
    # ------------------------------------------------------------------
    def run_round(
        self,
        app: MapReduceApp,
        state: Any,
        scheduler: StageScheduler,
    ) -> tuple[dict, RoundReport]:
        """Run one map+shuffle+reduce round; returns (outputs, report)."""
        timer = wall_timer()
        num_reducers = self.cluster.num_machines
        if self.combiner:
            self._check_combiner(app)
        use_fast = self._fast_path_ok(app)

        # -------- Map phase: run UDFs, bucket emissions per reducer ----
        per_part = None
        if use_fast:
            per_part = self._map_phase_vectorized(app, state, num_reducers)
            if per_part is None:
                if self.vectorized:
                    raise JobError(
                        f"{app.name}: vectorized=True but map_array() "
                        "declined the round"
                    )
                use_fast = False
        if per_part is None:
            per_part = self._map_phase_scalar(app, state, num_reducers)

        bucket_sources: list[dict[int, float]] = [
            {} for _ in range(num_reducers)
        ]
        map_tasks: list[Task] = []
        map_records = 0
        shuffle_records = 0
        shuffle_bytes = 0.0
        shuffle_pre = 0.0
        for p, mo in enumerate(per_part):
            machine = int(self.assignment[p])
            map_records += mo.records
            shuffle_records += mo.shuffled
            shuffle_bytes += mo.spill
            shuffle_pre += mo.spill_precombine
            for r, nbytes in mo.sends.items():
                src_map = bucket_sources[r]
                src_map[machine] = src_map.get(machine, 0.0) + nbytes
            cpu = mo.cpu_ops + self.pgraph.partition_edge_count(p)
            fetches: list[tuple[int, float]] = []
            if machine not in self.store.replicas(p):
                fetches.append((self.store.primary(p),
                                float(self.pgraph.partition_bytes(p))))
            spec = self.cluster.machine(machine).spec
            working_set = self.pgraph.partition_bytes(p) + mo.spill
            penalty = (spec.random_io_penalty
                       if working_set > spec.memory_bytes else 1.0)
            map_tasks.append(Task(
                name=f"map[{p}]",
                machine=machine,
                kind="map",
                partition=p,
                # partition scan plus re-reading the spill to serve the
                # shuffle (map outputs are persisted, then served)
                disk_read_bytes=self.pgraph.partition_bytes(p) + mo.spill,
                cpu_ops=cpu,
                disk_write_bytes=mo.spill,  # map-output spill
                sends=[(r, b) for r, b in sorted(mo.sends.items())],
                fetches=fetches,
                disk_penalty=penalty,
            ))
        map_wall = timer.elapsed()
        map_result = scheduler.run_stage(map_tasks)
        timer = wall_timer()

        # -------- Reduce phase ------------------------------------------
        outputs: dict = {}
        reduce_tasks: list[Task] = []
        default_out_sizing = (
            type(app).output_nbytes is MapReduceApp.output_nbytes)
        num_vertices = self.pgraph.num_vertices
        for r in range(num_reducers):
            chunk_list = [mo.chunks[r] for mo in per_part
                          if r in mo.chunks]
            if use_fast:
                emitted_out, cpu = self._reduce_bucket_vectorized(
                    app, state, chunk_list)
            else:
                emitted_out, cpu = self._reduce_bucket_scalar(
                    app, state, chunk_list)
            finished = None
            if use_fast and default_out_sizing:
                finished = self._finish_outputs_vectorized(
                    app, emitted_out, outputs)
            if finished is not None:
                out_bytes, writeback = finished
            else:
                out_bytes = 0.0
                writeback = {}
                for key, value in emitted_out:
                    outputs[key] = value
                    nbytes = app.output_nbytes(key, value)
                    out_bytes += nbytes
                    if app.writeback_to_partitions and isinstance(
                        key, (int, np.integer)
                    ) and 0 <= key < num_vertices:
                        home = int(self.assignment[
                            self.pgraph.partition_of(int(key))
                        ])
                        writeback[home] = writeback.get(home, 0.0) + nbytes
            staged = float(sum(bucket_sources[r].values()))
            inbound = sorted(bucket_sources[r].items())
            reduce_tasks.append(Task(
                name=f"reduce[{r}]",
                machine=r,
                kind="reduce",
                # stage read + external-sort merge pass over the staged data
                disk_read_bytes=2.0 * staged,
                cpu_ops=cpu,
                disk_write_bytes=2.0 * staged + out_bytes,
                sends=sorted(writeback.items()),
                receives=inbound,
                input_transfers=inbound,
            ))
        reduce_wall = timer.elapsed()
        reduce_result = scheduler.run_stage(reduce_tasks)

        network_bytes = sum(
            nbytes
            for r, srcs in enumerate(bucket_sources)
            for machine, nbytes in srcs.items()
            if machine != r
        )
        report = RoundReport(
            map_stage=map_result,
            reduce_stage=reduce_result,
            map_records=map_records,
            shuffle_bytes=shuffle_bytes,
            network_bytes=network_bytes,
            shuffle_records=shuffle_records,
            shuffle_bytes_precombine=shuffle_pre,
        )
        self._observe_round(scheduler, report, map_wall + reduce_wall)
        return outputs, report

    # ------------------------------------------------------------------
    # Map phase — scalar oracle
    # ------------------------------------------------------------------
    def _map_phase_scalar(
        self, app: MapReduceApp, state: Any, num_reducers: int
    ) -> list[_MapOutput]:
        per_part: list[_MapOutput] = []
        for p in range(self.pgraph.num_parts):
            emitted: list[tuple[Any, Any]] = []

            def emit(key, value, _out=emitted):
                _out.append((key, value))

            app.map(p, self.pgraph, state, emit)
            mo = _MapOutput(records=len(emitted),
                            cpu_ops=float(len(emitted)))
            if self.combiner:
                mo.spill_precombine = float(sum(
                    kv_nbytes(app, key, value) for key, value in emitted
                ))
                folded: dict[Any, list] = {}
                for key, value in emitted:
                    folded.setdefault(key, []).append(value)
                pairs = []
                for key, values in folded.items():
                    pairs.append((key, app.combine(key, values, state)))
                    mo.cpu_ops += len(values) + 1.0
            else:
                pairs = emitted
            for key, value in pairs:
                nbytes = kv_nbytes(app, key, value)
                mo.spill += nbytes
                r = reducer_of(key, num_reducers)
                mo.chunks.setdefault(r, []).append((key, value))
                mo.sends[r] = mo.sends.get(r, 0.0) + nbytes
            mo.shuffled = len(pairs)
            if not self.combiner:
                mo.spill_precombine = mo.spill
            per_part.append(mo)
        return per_part

    # ------------------------------------------------------------------
    # Map phase — array fast path
    # ------------------------------------------------------------------
    def _map_phase_vectorized(
        self, app: MapReduceApp, state: Any, num_reducers: int
    ) -> list[_MapOutput] | None:
        """Columnar map + combine + hash shuffle; None = app declined."""
        rec_bytes = float(app.key_nbytes(None) + app.value_nbytes(None))
        per_part: list[_MapOutput] = []
        for p in range(self.pgraph.num_parts):
            kv = app.map_array(p, self.pgraph, state)
            if kv is None:
                return None
            keys = np.asarray(kv[0])
            values = np.asarray(kv[1])
            mo = _MapOutput(records=int(keys.size),
                            cpu_ops=float(keys.size))
            mo.spill_precombine = rec_bytes * mo.records
            if self.combiner and keys.size:
                keys, values, _ = fold_by_dest(
                    keys, values, app.combine_ufunc)
                mo.cpu_ops += float(mo.records + keys.size)
            mo.shuffled = int(keys.size)
            mo.spill = rec_bytes * mo.shuffled
            if not self.combiner:
                mo.spill_precombine = mo.spill
            if keys.size:
                rids = stable_hash_array(keys) % num_reducers
                counts = np.bincount(rids, minlength=num_reducers)
                order = np.argsort(rids, kind="stable")
                sk = keys[order]
                sv = values[order]
                bounds = np.concatenate(
                    ([0], np.cumsum(counts))).tolist()
                for r in np.flatnonzero(counts).tolist():
                    mo.chunks[r] = (sk[bounds[r]:bounds[r + 1]],
                                    sv[bounds[r]:bounds[r + 1]])
                    mo.sends[r] = float(counts[r]) * rec_bytes
            per_part.append(mo)
        return per_part

    # ------------------------------------------------------------------
    # Reduce phase — per-reducer group-by + UDF
    # ------------------------------------------------------------------
    def _reduce_bucket_scalar(
        self, app: MapReduceApp, state: Any, chunk_list: list
    ) -> tuple[list, float]:
        grouped: dict[Any, list] = {}
        for chunk in chunk_list:  # partition order, emission order within
            for key, value in chunk:
                grouped.setdefault(key, []).append(value)
        emitted_out: list[tuple[Any, Any]] = []

        def emit(key, value, _out=emitted_out):
            _out.append((key, value))

        cpu = 0.0
        for key, values in grouped.items():
            app.reduce(key, values, state, emit)
            cpu += len(values) + 1.0
        return emitted_out, cpu

    def _reduce_bucket_vectorized(
        self, app: MapReduceApp, state: Any, chunk_list: list
    ) -> tuple[list, float]:
        """Sort-based group-by: stable argsort keeps each key's bag in
        shuffle arrival order, matching the scalar dict-insert oracle."""
        if not chunk_list:
            return [], 0.0
        keys = np.concatenate([c[0] for c in chunk_list])
        values = np.concatenate([c[1] for c in chunk_list])
        order = np.argsort(keys, kind="stable")
        k = keys[order]
        v = values[order]
        n = int(k.size)
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(k[1:], k[:-1], out=new_group[1:])
        starts = np.flatnonzero(new_group)
        uniq = k[starts]
        bounds = np.concatenate((starts, [n]))
        cpu = float(n + uniq.size)
        if type(app).reduce_array is not MapReduceApp.reduce_array:
            pairs = app.reduce_array(uniq, bounds, v, state)
            if pairs is not None:
                return list(pairs), cpu
        emitted_out: list[tuple[Any, Any]] = []

        def emit(key, value, _out=emitted_out):
            _out.append((key, value))

        blist = bounds.tolist()
        for i, key in enumerate(uniq.tolist()):
            app.reduce(key, v[blist[i]:blist[i + 1]].tolist(),
                       state, emit)
        return emitted_out, cpu

    def _finish_outputs_vectorized(
        self, app: MapReduceApp, pairs: list, outputs: dict
    ) -> tuple[float, dict[int, float]] | None:
        """Fold reduce output pairs into ``outputs`` + writeback in bulk.

        Only valid with default (constant) output sizing; per-record
        byte sums and per-home writeback accumulations are products of
        integer-valued floats, so they equal the scalar loop bit for
        bit.  Returns None (caller falls back to the per-pair loop) for
        writeback apps with non-integer keys.
        """
        rec = float(app.key_nbytes(None) + app.value_nbytes(None))
        writeback: dict[int, float] = {}
        if app.writeback_to_partitions and pairs:
            keys = np.asarray([key for key, _ in pairs])
            if keys.dtype.kind not in "iu":
                return None
            ok = (keys >= 0) & (keys < self.pgraph.num_vertices)
            homes = self.assignment[self.pgraph.parts[keys[ok]]]
            counts = np.bincount(homes)
            writeback = {int(h): float(counts[h]) * rec
                         for h in np.flatnonzero(counts)}
        outputs.update(pairs)
        return rec * len(pairs), writeback

    def _observe_round(self, scheduler: StageScheduler,
                       report: RoundReport,
                       udf_wall_seconds: float) -> None:
        """Record the round's span and metrics on the job's stream."""
        stream = scheduler.events
        rounds = int(stream.metrics.get("mapreduce.rounds"))
        stream.emit(
            name=f"round[{rounds}]",
            kind="round",
            start=report.map_stage.start_time,
            end=report.reduce_stage.end_time,
            wall_self_seconds=udf_wall_seconds,
        )
        m = stream.metrics
        m.add("mapreduce.rounds")
        m.add("mapreduce.map_records", report.map_records)
        m.add("mapreduce.shuffle_bytes", report.shuffle_bytes)
        m.add("mapreduce.network_bytes", report.network_bytes)
        m.add("mapreduce.shuffle_records", report.shuffle_records)
        m.add("mapreduce.shuffle_bytes_precombine",
              report.shuffle_bytes_precombine)
        m.add("wall.udf_seconds", udf_wall_seconds)
        if scheduler.sanitizer is not None:
            scheduler.sanitizer.on_superstep(stream, scheduler.cluster)
