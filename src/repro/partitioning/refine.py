"""Fiduccia–Mattheyses boundary refinement.

After each uncoarsening projection the bisection is locally improved with FM
passes: vertices are moved one at a time to the other side in order of gain
(cut-weight reduction), each vertex at most once per pass, and the pass is
rolled back to the best prefix seen.  Balance is enforced with a tolerance
``epsilon`` on the heavier side.  This is the "local refinement" step the
paper's Appendix A.2 describes (dotted -> solid cut in Figure 8).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partitioning.metrics import weighted_cut
from repro.partitioning.wgraph import WGraph

__all__ = ["fm_refine", "compute_gains"]


def compute_gains(wgraph: WGraph, side: np.ndarray) -> np.ndarray:
    """Gain of moving each vertex to the opposite side.

    ``gain[v] = external_weight(v) - internal_weight(v)``; positive gains
    reduce the cut.
    """
    n = wgraph.num_vertices
    gain = np.zeros(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(wgraph.indptr))
    same = side[src] == side[wgraph.indices]
    np.subtract.at(gain, src[same], wgraph.eweights[same])
    np.add.at(gain, src[~same], wgraph.eweights[~same])
    return gain


def fm_refine(
    wgraph: WGraph,
    side: np.ndarray,
    epsilon: float = 0.05,
    max_passes: int = 8,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a bisection in place-copy; returns the improved assignment.

    ``epsilon`` bounds the imbalance: each side must keep weight at least
    ``(0.5 - epsilon) * total``.  Passes stop when one yields no improvement.
    """
    side = np.asarray(side, dtype=np.int64).copy()
    n = wgraph.num_vertices
    if n <= 2:
        return side
    total = wgraph.total_vertex_weight
    min_side_weight = int((0.5 - epsilon) * total)

    for _ in range(max_passes):
        improved = _fm_pass(wgraph, side, total, min_side_weight)
        if not improved:
            break
    return side


def _fm_pass(
    wgraph: WGraph, side: np.ndarray, total: int, min_side_weight: int
) -> bool:
    """One FM pass; mutates ``side``; returns True if the cut improved."""
    n = wgraph.num_vertices
    gain = compute_gains(wgraph, side)
    locked = np.zeros(n, dtype=bool)
    side_weight = np.zeros(2, dtype=np.int64)
    np.add.at(side_weight, side, wgraph.vweights)

    heap: list[tuple[int, int]] = [(-int(gain[v]), v) for v in range(n)]
    heapq.heapify(heap)

    start_cut = weighted_cut(wgraph, side)
    best_cut = start_cut
    current_cut = start_cut
    moves: list[int] = []
    best_prefix = 0

    while heap:
        neg_gain, v = heapq.heappop(heap)
        if locked[v] or -neg_gain != gain[v]:
            continue
        s = int(side[v])
        if side_weight[s] - wgraph.vweights[v] < min_side_weight:
            # moving v would violate balance; lock it out of this pass
            locked[v] = True
            continue
        # perform the move
        locked[v] = True
        current_cut -= int(gain[v])
        side[v] = 1 - s
        side_weight[s] -= wgraph.vweights[v]
        side_weight[1 - s] += wgraph.vweights[v]
        moves.append(v)
        for u, w in zip(wgraph.neighbors(v), wgraph.edge_weights_of(v)):
            if locked[u]:
                continue
            if side[u] == side[v]:
                gain[u] -= 2 * w  # u's edge to v became internal
            else:
                gain[u] += 2 * w  # u's edge to v became external
            heapq.heappush(heap, (-int(gain[u]), int(u)))
        if current_cut < best_cut:
            best_cut = current_cut
            best_prefix = len(moves)

    # roll back moves after the best prefix
    for v in moves[best_prefix:]:
        side[v] = 1 - side[v]
    return best_cut < start_cut
