"""Graph coarsening: contract a matching into a smaller weighted graph.

Matched pairs become a single coarse vertex whose weight is the sum of the
pair's weights; parallel coarse edges are merged with summed weights and
intra-pair edges vanish.  The mapping fine->coarse is returned so partitions
of the coarse graph can be projected back during uncoarsening.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.wgraph import WGraph

__all__ = ["contract_matching", "CoarseningLevel", "coarsen_until"]


class CoarseningLevel:
    """One level of the coarsening hierarchy."""

    __slots__ = ("fine", "coarse", "fine_to_coarse")

    def __init__(self, fine: WGraph, coarse: WGraph, fine_to_coarse: np.ndarray):
        self.fine = fine
        self.coarse = coarse
        self.fine_to_coarse = fine_to_coarse

    def project(self, coarse_parts: np.ndarray) -> np.ndarray:
        """Project a coarse assignment back onto the fine graph."""
        return np.asarray(coarse_parts, dtype=np.int64)[self.fine_to_coarse]


def contract_matching(
    wgraph: WGraph, match: np.ndarray
) -> tuple[WGraph, np.ndarray]:
    """Contract ``match`` and return ``(coarse_graph, fine_to_coarse)``."""
    n = wgraph.num_vertices
    fine_to_coarse = -np.ones(n, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] >= 0:
            continue
        u = match[v]
        fine_to_coarse[v] = next_id
        if u != v and fine_to_coarse[u] < 0:
            fine_to_coarse[u] = next_id
        next_id += 1
    nc = next_id

    vweights = np.zeros(nc, dtype=np.int64)
    np.add.at(vweights, fine_to_coarse, wgraph.vweights)

    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(wgraph.indptr))
    csrc = fine_to_coarse[src]
    cdst = fine_to_coarse[wgraph.indices]
    keep = csrc != cdst  # drop intra-pair edges
    csrc, cdst, cw = csrc[keep], cdst[keep], wgraph.eweights[keep]
    if csrc.size:
        key = csrc * np.int64(nc) + cdst
        order = np.argsort(key, kind="stable")
        key, cw = key[order], cw[order]
        boundaries = np.flatnonzero(np.diff(key)) + 1
        starts = np.concatenate([[0], boundaries])
        merged_key = key[starts]
        merged_w = np.add.reduceat(cw, starts)
        msrc = (merged_key // nc).astype(np.int64)
        mdst = (merged_key % nc).astype(np.int64)
    else:
        msrc = mdst = merged_w = np.zeros(0, dtype=np.int64)

    indptr = np.zeros(nc + 1, dtype=np.int64)
    np.cumsum(np.bincount(msrc, minlength=nc), out=indptr[1:])
    coarse = WGraph(indptr, mdst, merged_w, vweights)
    return coarse, fine_to_coarse


def coarsen_until(
    wgraph: WGraph,
    target_vertices: int,
    rng: np.random.Generator,
    min_shrink: float = 0.9,
    max_levels: int = 40,
) -> list[CoarseningLevel]:
    """Coarsen repeatedly until ``target_vertices`` or progress stalls.

    Stops when a level shrinks the vertex count by less than
    ``1 - min_shrink`` (matching would be mostly singletons) or after
    ``max_levels`` contractions.  Returns the hierarchy finest-first.
    """
    from repro.partitioning.matching import heavy_edge_matching

    levels: list[CoarseningLevel] = []
    current = wgraph
    for _ in range(max_levels):
        if current.num_vertices <= target_vertices:
            break
        match = heavy_edge_matching(current, rng)
        coarse, mapping = contract_matching(current, match)
        if coarse.num_vertices >= current.num_vertices * min_shrink:
            break
        levels.append(CoarseningLevel(current, coarse, mapping))
        current = coarse
    return levels
