"""K-way balance refinement after recursive bisection.

Recursive bisection balances each split within a tolerance, but the
tolerance compounds across levels: with ``eps = 0.05`` and six levels the
heaviest leaf can reach ``1.05**6 ≈ 1.34×`` the ideal weight — enough to
make the machine holding it the job's straggler.  Metis fixes this with a
k-way refinement pass; we do the same: greedily migrate boundary vertices
from overweight partitions to underweight *neighboring* partitions,
choosing moves that hurt the edge cut least (often improving it).
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.wgraph import WGraph

__all__ = ["kway_refine_balance"]


def kway_refine_balance(
    wgraph: WGraph,
    parts: np.ndarray,
    num_parts: int,
    tolerance: float = 0.05,
    max_moves: int | None = None,
) -> np.ndarray:
    """Rebalance ``parts`` to within ``tolerance`` of the ideal weight.

    Mutates and returns a copy of ``parts``.  Only vertices with an edge
    into the target partition are moved (keeps partitions connected-ish
    and the cut damage bounded); each move picks the (vertex, target) pair
    with the best cut gain among the heaviest partition's boundary.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = wgraph.num_vertices
    if n == 0 or num_parts <= 1:
        return parts
    weights = np.zeros(num_parts, dtype=np.float64)
    np.add.at(weights, parts, wgraph.vweights.astype(np.float64))
    target = weights.sum() / num_parts
    ceiling = (1.0 + tolerance) * target
    if max_moves is None:
        max_moves = 8 * n

    for _ in range(max_moves):
        heavy = int(np.argmax(weights))
        if weights[heavy] <= ceiling:
            break
        move = _best_move(wgraph, parts, weights, heavy, target)
        if move is None:
            # no migratable boundary vertex; give up on this partition
            break
        vertex, dest = move
        weights[heavy] -= wgraph.vweights[vertex]
        weights[dest] += wgraph.vweights[vertex]
        parts[vertex] = dest
    return parts


def _best_move(
    wgraph: WGraph,
    parts: np.ndarray,
    weights: np.ndarray,
    heavy: int,
    target: float,
) -> tuple[int, int] | None:
    """Best (vertex, destination) migration out of partition ``heavy``."""
    best: tuple[int, int] | None = None
    best_score = -np.inf
    members = np.flatnonzero(parts == heavy)
    for v in members:
        v = int(v)
        vw = float(wgraph.vweights[v])
        if vw > weights[heavy] - target:
            # moving v would overshoot below the ideal weight
            if vw > 1.5 * (weights[heavy] - target):
                continue
        # edge affinity towards each neighboring partition
        affinity: dict[int, float] = {}
        internal = 0.0
        for u, w in zip(wgraph.neighbors(v), wgraph.edge_weights_of(v)):
            q = int(parts[u])
            if q == heavy:
                internal += w
            else:
                affinity[q] = affinity.get(q, 0.0) + w
        for q, external in affinity.items():
            if weights[q] + vw > weights[heavy] - vw:
                continue  # destination would become the new straggler
            gain = external - internal  # cut improvement if positive
            score = gain - 0.001 * weights[q] / max(target, 1.0)
            if score > best_score:
                best_score = score
                best = (v, q)
    return best
