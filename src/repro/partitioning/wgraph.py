"""Weighted undirected graph used internally by the multilevel partitioner.

Partitioning operates on a symmetrized, weighted view of the input digraph:
vertex weights count how many original vertices a coarse vertex represents,
edge weights count how many original edges a coarse edge represents.  The
edge cut of any partition of a coarse graph therefore equals the cut of the
projected partition of the original graph, which is the invariant the
multilevel scheme relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import Graph

__all__ = ["WGraph"]


class WGraph:
    """Symmetric weighted CSR graph (no self loops).

    ``indices[indptr[v]:indptr[v+1]]`` are the neighbors of ``v`` and
    ``eweights`` the matching edge weights; each undirected edge is stored
    twice (once per endpoint) with equal weight.
    """

    __slots__ = ("indptr", "indices", "eweights", "vweights")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        eweights: np.ndarray,
        vweights: np.ndarray,
    ):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.eweights = np.asarray(eweights, dtype=np.int64)
        self.vweights = np.asarray(vweights, dtype=np.int64)
        if self.indices.size != self.eweights.size:
            raise PartitioningError("indices and eweights must align")
        if self.indptr.size != self.vweights.size + 1:
            raise PartitioningError("indptr and vweights must align")

    @property
    def num_vertices(self) -> int:
        return self.vweights.size

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each stored twice internally)."""
        return self.indices.size // 2

    @property
    def total_vertex_weight(self) -> int:
        return int(self.vweights.sum())

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]: self.indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        return self.eweights[self.indptr[v]: self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @classmethod
    def from_digraph(cls, graph: Graph,
                     balance: str = "edges") -> "WGraph":
        """Symmetrize a digraph; edge weight = #original edges merged.

        ``balance`` picks the vertex weights the partitioner balances:
        ``"edges"`` (default) weights each vertex by ``1 + out_degree`` so
        partitions end up with similar *edge* counts — the paper's stated
        constraint, and what equalizes per-partition work and storage —
        while ``"vertices"`` weights uniformly.
        """
        indptr, indices, weights = graph.to_undirected()
        if balance == "edges":
            vweights = 1 + graph.out_degrees()
        elif balance == "vertices":
            vweights = np.ones(graph.num_vertices, dtype=np.int64)
        else:
            raise PartitioningError("balance must be 'edges' or 'vertices'")
        return cls(indptr, indices, weights, vweights)

    @classmethod
    def from_edges(
        cls,
        edges,
        num_vertices: int,
        eweights=None,
        vweights=None,
    ) -> "WGraph":
        """Build from undirected edge pairs (each given once)."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                         dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        w = (np.ones(arr.shape[0], dtype=np.int64) if eweights is None
             else np.asarray(eweights, dtype=np.int64))
        src = np.concatenate([arr[:, 0], arr[:, 1]])
        dst = np.concatenate([arr[:, 1], arr[:, 0]])
        ww = np.concatenate([w, w])
        order = np.lexsort((dst, src))
        src, dst, ww = src[order], dst[order], ww[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_vertices), out=indptr[1:])
        vw = (np.ones(num_vertices, dtype=np.int64) if vweights is None
              else np.asarray(vweights, dtype=np.int64))
        return cls(indptr, dst, ww, vw)

    def validate_symmetry(self) -> bool:
        """True iff every stored arc has a mirror with equal weight."""
        pairs: dict[tuple[int, int], int] = {}
        for v in range(self.num_vertices):
            for u, w in zip(self.neighbors(v), self.edge_weights_of(v)):
                pairs[(v, int(u))] = int(w)
        return all(
            pairs.get((u, v)) == w for (v, u), w in pairs.items()
        )
