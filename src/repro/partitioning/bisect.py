"""Multilevel graph bisection.

The full pipeline of Appendix A.2 / Figure 8: *coarsen* the graph with
heavy-edge matching until it is small, *partition* the coarsest graph with
GGGP, then *uncoarsen*, projecting the bisection back level by level with FM
refinement at each level.  This is the building block both the
bandwidth-aware partitioner and the oblivious (ParMetis-like) baseline call
recursively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.partitioning.coarsen import coarsen_until
from repro.partitioning.ggp import gggp_bisection, random_bisection
from repro.partitioning.metrics import weighted_cut
from repro.partitioning.refine import fm_refine
from repro.partitioning.wgraph import WGraph

__all__ = ["BisectionOptions", "BisectionResult", "multilevel_bisection"]


@dataclass(frozen=True)
class BisectionOptions:
    """Tuning knobs for one multilevel bisection.

    ``coarsest_size``: stop coarsening at this many vertices.
    ``epsilon``: balance tolerance for refinement.
    ``gggp_trials``: growth attempts on the coarsest graph.
    ``refine``: disable to measure the FM ablation.
    ``initial``: ``"gggp"`` or ``"random"`` (ablation baseline).
    """

    coarsest_size: int = 64
    epsilon: float = 0.05
    gggp_trials: int = 4
    refine: bool = True
    initial: str = "gggp"
    max_passes: int = 8


@dataclass
class BisectionResult:
    """Outcome of a multilevel bisection."""

    side: np.ndarray
    cut: int
    num_levels: int
    coarsest_vertices: int
    stats: dict = field(default_factory=dict)


def multilevel_bisection(
    wgraph: WGraph,
    rng: np.random.Generator,
    options: BisectionOptions | None = None,
) -> BisectionResult:
    """Bisect ``wgraph`` with the multilevel scheme; 0/1 side per vertex."""
    options = options or BisectionOptions()
    n = wgraph.num_vertices
    if n == 0:
        return BisectionResult(np.zeros(0, dtype=np.int64), 0, 0, 0)
    if n == 1:
        return BisectionResult(np.zeros(1, dtype=np.int64), 0, 0, 1)

    levels = coarsen_until(wgraph, options.coarsest_size, rng)
    coarsest = levels[-1].coarse if levels else wgraph

    if options.initial == "random":
        side = random_bisection(coarsest, rng)
    else:
        side = gggp_bisection(coarsest, rng, num_trials=options.gggp_trials)
    if options.refine:
        side = fm_refine(coarsest, side, epsilon=options.epsilon,
                         max_passes=options.max_passes, rng=rng)

    for level in reversed(levels):
        side = level.project(side)
        if options.refine:
            side = fm_refine(level.fine, side, epsilon=options.epsilon,
                             max_passes=options.max_passes, rng=rng)

    cut = weighted_cut(wgraph, side)
    return BisectionResult(
        side=side,
        cut=cut,
        num_levels=len(levels),
        coarsest_vertices=coarsest.num_vertices,
        stats={"coarsest_edges": coarsest.num_edges},
    )
