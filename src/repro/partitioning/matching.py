"""Heavy-edge matching for the coarsening phase.

Multilevel partitioners (Karypis & Kumar [15, 16]) coarsen by repeatedly
collapsing a matching of the graph.  *Heavy-edge matching* visits vertices
in random order and matches each unmatched vertex with its unmatched
neighbor of maximum edge weight, which concentrates weight inside coarse
vertices and keeps the coarse cut representative of the fine cut.
"""

from __future__ import annotations

import numpy as np

from repro.partitioning.wgraph import WGraph

__all__ = ["heavy_edge_matching", "random_matching"]


def heavy_edge_matching(wgraph: WGraph, rng: np.random.Generator) -> np.ndarray:
    """Return ``match`` where ``match[v]`` is ``v``'s partner (or ``v``).

    Visits vertices in random order; an unmatched vertex grabs its heaviest
    unmatched neighbor.  Unmatchable vertices stay matched to themselves.
    """
    n = wgraph.num_vertices
    match = -np.ones(n, dtype=np.int64)
    order = rng.permutation(n)
    indptr, indices, eweights = wgraph.indptr, wgraph.indices, wgraph.eweights
    for v in order:
        if match[v] >= 0:
            continue
        best = -1
        best_weight = -1
        for j in range(indptr[v], indptr[v + 1]):
            u = indices[j]
            if match[u] >= 0 or u == v:
                continue
            w = eweights[j]
            if w > best_weight:
                best_weight = w
                best = u
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    return match


def random_matching(wgraph: WGraph, rng: np.random.Generator) -> np.ndarray:
    """Match each vertex with a uniformly random unmatched neighbor.

    A weaker heuristic kept as an ablation baseline for the coarsening
    design choice (DESIGN.md Section 6).
    """
    n = wgraph.num_vertices
    match = -np.ones(n, dtype=np.int64)
    order = rng.permutation(n)
    indptr, indices = wgraph.indptr, wgraph.indices
    for v in order:
        if match[v] >= 0:
            continue
        candidates = [
            int(indices[j])
            for j in range(indptr[v], indptr[v + 1])
            if match[indices[j]] < 0 and indices[j] != v
        ]
        if candidates:
            u = candidates[int(rng.integers(len(candidates)))]
            match[v] = u
            match[u] = v
        else:
            match[v] = v
    return match
