"""Greedy Graph Growing Partitioning (GGGP) initial bisection.

GGGP (Karypis & Kumar [15]) grows one side of the bisection from a seed
vertex, always absorbing the frontier vertex whose move decreases the cut
the most, until that side holds half the total vertex weight.  It runs on
the coarsest graph of the multilevel hierarchy, where it is cheap, and the
result is refined during uncoarsening.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import PartitioningError
from repro.partitioning.metrics import weighted_cut
from repro.partitioning.wgraph import WGraph

__all__ = ["gggp_bisection", "random_bisection"]


def _grow_from_seed(wgraph: WGraph, seed: int, half_weight: int) -> np.ndarray:
    """Grow side 0 from ``seed`` until it reaches ``half_weight``."""
    n = wgraph.num_vertices
    side = np.ones(n, dtype=np.int64)  # 1 = ungrown side
    # gain[v] = reduction in cut if v moves into side 0
    gain = np.zeros(n, dtype=np.int64)
    in_heap = np.zeros(n, dtype=bool)
    heap: list[tuple[int, int]] = []

    def push(v: int) -> None:
        heapq.heappush(heap, (-int(gain[v]), int(v)))
        in_heap[v] = True

    side[seed] = 0
    grown_weight = int(wgraph.vweights[seed])
    for u, w in zip(wgraph.neighbors(seed), wgraph.edge_weights_of(seed)):
        if side[u] == 1:
            gain[u] += 2 * w
            push(int(u))

    while grown_weight < half_weight and heap:
        neg_gain, v = heapq.heappop(heap)
        if side[v] == 0 or -neg_gain != gain[v]:
            continue  # stale entry
        side[v] = 0
        grown_weight += int(wgraph.vweights[v])
        for u, w in zip(wgraph.neighbors(v), wgraph.edge_weights_of(v)):
            if side[u] == 1:
                gain[u] += 2 * w
                push(int(u))

    # If growth stalled (disconnected graph), absorb arbitrary vertices.
    if grown_weight < half_weight:
        for v in range(n):
            if grown_weight >= half_weight:
                break
            if side[v] == 1:
                side[v] = 0
                grown_weight += int(wgraph.vweights[v])
    return side


def gggp_bisection(
    wgraph: WGraph, rng: np.random.Generator, num_trials: int = 4
) -> np.ndarray:
    """Bisect ``wgraph``; returns 0/1 assignment per vertex.

    Runs ``num_trials`` growths from random seeds and keeps the lowest-cut
    result, as Metis does on the coarsest graph.
    """
    n = wgraph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    half_weight = (wgraph.total_vertex_weight + 1) // 2
    best: np.ndarray | None = None
    best_cut = -1
    for _ in range(max(1, num_trials)):
        seed = int(rng.integers(n))
        side = _grow_from_seed(wgraph, seed, half_weight)
        cut = weighted_cut(wgraph, side)
        if best is None or cut < best_cut:
            best, best_cut = side, cut
    assert best is not None
    return best


def random_bisection(wgraph: WGraph, rng: np.random.Generator) -> np.ndarray:
    """Random balanced bisection (ablation baseline for GGGP)."""
    n = wgraph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = rng.permutation(n)
    side = np.ones(n, dtype=np.int64)
    half_weight = (wgraph.total_vertex_weight + 1) // 2
    acc = 0
    for v in order:
        if acc >= half_weight:
            break
        side[v] = 0
        acc += int(wgraph.vweights[v])
    return side


def check_bisection(side: np.ndarray) -> None:
    """Validate that ``side`` is a 0/1 array (helper for tests)."""
    vals = np.unique(side)
    if vals.size and not np.isin(vals, [0, 1]).all():
        raise PartitioningError("bisection sides must be 0 or 1")
