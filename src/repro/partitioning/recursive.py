"""Recursive multilevel bisection into ``P = 2**L`` partitions.

Surfer partitions by recursive bisection (Section 4.1): the process forms a
balanced binary tree — the *partition sketch* — whose leaves are the final
partitions.  Partition ids encode the bisection path: the bit at depth
``l`` (MSB first) records which side the vertex fell on at level ``l``, so
siblings in the sketch differ in exactly their lowest id bit.  The recorded
per-node cuts feed the sketch analysis and the bandwidth-aware placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitioningError
from repro.partitioning.bisect import (
    BisectionOptions,
    multilevel_bisection,
)
from repro.partitioning.wgraph import WGraph

__all__ = ["RecursivePartition", "recursive_bisection", "num_levels_for_parts"]


def num_levels_for_parts(num_parts: int) -> int:
    """``L`` such that ``2**L == num_parts``; errors if not a power of two."""
    if num_parts <= 0 or num_parts & (num_parts - 1):
        raise PartitioningError("num_parts must be a positive power of two")
    return num_parts.bit_length() - 1


@dataclass
class RecursivePartition:
    """Result of recursive bisection.

    ``parts[v]`` is the partition id of vertex ``v`` with bit-path encoding;
    ``node_cuts[(level, prefix)]`` is the weighted cut of the bisection that
    split sketch node ``prefix`` at ``level`` (root is ``(0, 0)``);
    ``node_sizes[(level, prefix)]`` the vertex weight of that sketch node.
    """

    parts: np.ndarray
    num_parts: int
    node_cuts: dict[tuple[int, int], int] = field(default_factory=dict)
    node_sizes: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def num_levels(self) -> int:
        return num_levels_for_parts(self.num_parts)

    def side_at_level(self, level: int) -> np.ndarray:
        """0/1 side taken by each vertex at bisection ``level`` (0-based)."""
        shift = self.num_levels - 1 - level
        return (self.parts >> shift) & 1

    def prefix_at_level(self, level: int) -> np.ndarray:
        """Sketch-node id (bit prefix) of each vertex at depth ``level``."""
        shift = self.num_levels - level
        return self.parts >> shift

    def total_cut_at_level(self, level: int) -> int:
        """``T_l``: total cut among partitions at sketch depth ``level``.

        Sums the recorded bisection cuts of all sketch nodes shallower than
        ``level``, which equals the number of cross-partition (weighted)
        edges when the graph is split into the ``2**level`` nodes of that
        depth — the quantity the paper's monotonicity property bounds.
        """
        return sum(
            cut for (lvl, _), cut in self.node_cuts.items() if lvl < level
        )


def recursive_bisection(
    wgraph: WGraph,
    num_parts: int,
    seed: int = 0,
    options: BisectionOptions | None = None,
    kway_tolerance: float | None = 0.05,
) -> RecursivePartition:
    """Partition ``wgraph`` into ``num_parts = 2**L`` parts recursively.

    Bisection tolerances compound across levels, so a final k-way balance
    refinement (``kway_tolerance``; None disables) migrates boundary
    vertices off overweight leaves, as Metis does.  ``node_cuts`` record
    the pre-refinement bisections.
    """
    levels = num_levels_for_parts(num_parts)
    rng = np.random.default_rng(seed)
    n = wgraph.num_vertices
    parts = np.zeros(n, dtype=np.int64)
    result = RecursivePartition(parts=parts, num_parts=num_parts)
    result.node_sizes[(0, 0)] = wgraph.total_vertex_weight
    if levels == 0:
        return result
    _bisect_node(
        wgraph, np.arange(n, dtype=np.int64), 0, 0, levels, rng, options,
        result,
    )
    if kway_tolerance is not None and num_parts > 1:
        from repro.partitioning.kway import kway_refine_balance

        result.parts[:] = kway_refine_balance(
            wgraph, result.parts, num_parts, tolerance=kway_tolerance
        )
    return result


def _bisect_node(
    root: WGraph,
    vertices: np.ndarray,
    level: int,
    prefix: int,
    total_levels: int,
    rng: np.random.Generator,
    options: BisectionOptions | None,
    result: RecursivePartition,
) -> None:
    """Recursively bisect the induced subgraph on ``vertices``."""
    sub = _induced_wgraph(root, vertices)
    bisection = multilevel_bisection(sub, rng, options)
    result.node_cuts[(level, prefix)] = bisection.cut

    side = bisection.side
    left = vertices[side == 0]
    right = vertices[side == 1]
    shift = total_levels - 1 - level
    result.parts[right] |= np.int64(1) << shift

    for child_prefix, child_vertices in ((prefix * 2, left),
                                         (prefix * 2 + 1, right)):
        weight = int(root.vweights[child_vertices].sum())
        result.node_sizes[(level + 1, child_prefix)] = weight
        if level + 1 < total_levels:
            _bisect_node(root, child_vertices, level + 1, child_prefix,
                         total_levels, rng, options, result)


def _induced_wgraph(root: WGraph, vertices: np.ndarray) -> WGraph:
    """Induced weighted subgraph on ``vertices`` with local ids."""
    local = -np.ones(root.num_vertices, dtype=np.int64)
    local[vertices] = np.arange(vertices.size)
    src = np.repeat(np.arange(root.num_vertices, dtype=np.int64),
                    np.diff(root.indptr))
    keep = (local[src] >= 0) & (local[root.indices] >= 0)
    lsrc = local[src[keep]]
    ldst = local[root.indices[keep]]
    lw = root.eweights[keep]
    order = np.lexsort((ldst, lsrc))
    lsrc, ldst, lw = lsrc[order], ldst[order], lw[order]
    indptr = np.zeros(vertices.size + 1, dtype=np.int64)
    np.cumsum(np.bincount(lsrc, minlength=vertices.size), out=indptr[1:])
    return WGraph(indptr, ldst, lw, root.vweights[vertices])
