"""Structure-oblivious partitioners used as baselines.

Random partitioning is the sanity baseline of Table 5; hash partitioning is
what MapReduce's shuffle does and what a flat GFS-style layout amounts to.
Both balance sizes but ignore the graph structure entirely.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import Graph

__all__ = ["random_partition", "hash_partition", "chunk_partition"]


def _check(num_vertices: int, num_parts: int) -> None:
    if num_parts <= 0:
        raise PartitioningError("num_parts must be positive")
    if num_vertices < 0:
        raise PartitioningError("num_vertices must be non-negative")


def random_partition(graph: Graph, num_parts: int, seed: int = 0) -> np.ndarray:
    """Balanced uniform-random assignment (Table 5's 'random partitioning')."""
    _check(graph.num_vertices, num_parts)
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    # deal vertices round-robin onto a shuffled order for exact balance
    parts = np.arange(n, dtype=np.int64) % num_parts
    rng.shuffle(parts)
    return parts


def hash_partition(graph: Graph, num_parts: int) -> np.ndarray:
    """Deterministic hash assignment, as MapReduce's shuffle uses.

    Uses a Knuth multiplicative hash of the vertex id so consecutive ids
    scatter (a plain modulo would spuriously preserve locality for the
    range-encoded ids Surfer assigns).
    """
    _check(graph.num_vertices, num_parts)
    ids = np.arange(graph.num_vertices, dtype=np.uint64)
    hashed = (ids * np.uint64(2654435761)) & np.uint64(0xFFFFFFFF)
    return (hashed % np.uint64(num_parts)).astype(np.int64)


def chunk_partition(graph: Graph, num_parts: int) -> np.ndarray:
    """Contiguous equal ranges of vertex ids (a flat-file split)."""
    _check(graph.num_vertices, num_parts)
    n = graph.num_vertices
    return (np.arange(n, dtype=np.int64) * num_parts) // max(n, 1)
