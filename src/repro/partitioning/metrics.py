"""Partition-quality metrics.

The paper's objective is to minimize the number of cross-partition edges
subject to balanced partition sizes (Section 2), and it reports quality as
the *inner edge ratio* ``ier = ie / |E|`` (Table 5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import Graph
from repro.partitioning.wgraph import WGraph

__all__ = [
    "edge_cut",
    "weighted_cut",
    "inner_edge_ratio",
    "cross_partition_edges",
    "cut_matrix",
    "balance",
    "partition_sizes",
    "validate_assignment",
]


def validate_assignment(parts: np.ndarray, num_vertices: int,
                        num_parts: int | None = None) -> np.ndarray:
    """Check an assignment array and return it as int64."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (num_vertices,):
        raise PartitioningError(
            f"assignment must have shape ({num_vertices},), got {parts.shape}"
        )
    if parts.size and parts.min() < 0:
        raise PartitioningError("negative partition id")
    if num_parts is not None and parts.size and parts.max() >= num_parts:
        raise PartitioningError("partition id exceeds num_parts")
    return parts


def edge_cut(graph: Graph, parts: np.ndarray) -> int:
    """Number of directed edges whose endpoints lie in different parts."""
    parts = validate_assignment(parts, graph.num_vertices)
    src = graph.edge_sources()
    dst = graph.out_indices
    return int(np.count_nonzero(parts[src] != parts[dst]))


def weighted_cut(wgraph: WGraph, parts: np.ndarray) -> int:
    """Total weight of cut undirected edges in a :class:`WGraph`."""
    parts = validate_assignment(parts, wgraph.num_vertices)
    src = np.repeat(np.arange(wgraph.num_vertices, dtype=np.int64),
                    np.diff(wgraph.indptr))
    cut = parts[src] != parts[wgraph.indices]
    return int(wgraph.eweights[cut].sum() // 2)


def inner_edge_ratio(graph: Graph, parts: np.ndarray) -> float:
    """``ier = inner_edges / |E|`` as defined in Appendix F."""
    if graph.num_edges == 0:
        return 1.0
    return 1.0 - edge_cut(graph, parts) / graph.num_edges


def cross_partition_edges(graph: Graph, parts: np.ndarray) -> np.ndarray:
    """Boolean mask (aligned with CSR edge order) of cross-partition edges."""
    parts = validate_assignment(parts, graph.num_vertices)
    return parts[graph.edge_sources()] != parts[graph.out_indices]


def cut_matrix(graph: Graph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """``C[i, j]`` = number of directed edges from part ``i`` to part ``j``.

    The paper's ``C(n1, n2)`` between sketch nodes is the symmetrized sum
    ``C[i, j] + C[j, i]`` aggregated over each node's leaves.
    """
    parts = validate_assignment(parts, graph.num_vertices, num_parts)
    src_p = parts[graph.edge_sources()]
    dst_p = parts[graph.out_indices]
    mat = np.zeros((num_parts, num_parts), dtype=np.int64)
    np.add.at(mat, (src_p, dst_p), 1)
    return mat


def partition_sizes(parts: np.ndarray, num_parts: int,
                    weights: np.ndarray | None = None) -> np.ndarray:
    """Vertex count (or total weight) per partition."""
    parts = np.asarray(parts, dtype=np.int64)
    if weights is None:
        return np.bincount(parts, minlength=num_parts).astype(np.int64)
    return np.bincount(parts, weights=weights, minlength=num_parts).astype(np.int64)


def balance(parts: np.ndarray, num_parts: int,
            weights: np.ndarray | None = None) -> float:
    """Load imbalance: ``max_part_weight / ideal_part_weight`` (>= 1.0)."""
    sizes = partition_sizes(parts, num_parts, weights)
    total = sizes.sum()
    if total == 0:
        return 1.0
    ideal = total / num_parts
    return float(sizes.max() / ideal)
