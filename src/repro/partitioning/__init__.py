"""Multilevel graph-partitioning substrate (Metis-like, from scratch)."""

from repro.partitioning.wgraph import WGraph
from repro.partitioning.matching import heavy_edge_matching, random_matching
from repro.partitioning.coarsen import (
    CoarseningLevel,
    coarsen_until,
    contract_matching,
)
from repro.partitioning.ggp import gggp_bisection, random_bisection
from repro.partitioning.refine import compute_gains, fm_refine
from repro.partitioning.bisect import (
    BisectionOptions,
    BisectionResult,
    multilevel_bisection,
)
from repro.partitioning.recursive import (
    RecursivePartition,
    num_levels_for_parts,
    recursive_bisection,
)
from repro.partitioning.baselines import (
    chunk_partition,
    hash_partition,
    random_partition,
)
from repro.partitioning.metrics import (
    balance,
    cross_partition_edges,
    cut_matrix,
    edge_cut,
    inner_edge_ratio,
    partition_sizes,
    validate_assignment,
    weighted_cut,
)

__all__ = [
    "WGraph",
    "heavy_edge_matching",
    "random_matching",
    "CoarseningLevel",
    "coarsen_until",
    "contract_matching",
    "gggp_bisection",
    "random_bisection",
    "compute_gains",
    "fm_refine",
    "BisectionOptions",
    "BisectionResult",
    "multilevel_bisection",
    "RecursivePartition",
    "num_levels_for_parts",
    "recursive_bisection",
    "chunk_partition",
    "hash_partition",
    "random_partition",
    "balance",
    "cross_partition_edges",
    "cut_matrix",
    "edge_cut",
    "inner_edge_ratio",
    "partition_sizes",
    "validate_assignment",
    "weighted_cut",
]
