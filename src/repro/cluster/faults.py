"""Fault injection for the fault-tolerance experiments (Figure 10 and the
fault-scenario sweep).

A :class:`FaultPlan` schedules three kinds of machine events, indexed by
machine id for O(1) lookup during scheduling:

* **permanent kills** (:class:`MachineKill`) — the machine stops accepting
  tasks at ``time`` and never returns; its in-flight task is lost and
  re-queued, and the partition store promotes replicas — reproducing the
  paper's 'kill a slave node at 235 seconds' experiment;
* **transient faults** (:class:`TransientFault`) — the machine is down for
  ``[time, time + downtime)`` and then rejoins with its disk intact; the
  in-flight task is lost and re-dispatched after heartbeat detection while
  queued tasks resume on the machine after recovery;
* **slowdowns** (:class:`Slowdown`) — a straggler factor applied uniformly
  to the machine's disk/CPU/NIC rates over ``[time, time + duration)``;
  work in the window proceeds at ``1/factor`` of the nominal rate.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.errors import FaultInjectionError

__all__ = ["FaultPlan", "MachineKill", "TransientFault", "Slowdown",
           "Outage"]


@dataclass(frozen=True)
class MachineKill:
    """Kill ``machine`` permanently at simulated ``time`` seconds."""

    machine: int
    time: float


@dataclass(frozen=True)
class TransientFault:
    """``machine`` is down for ``[time, time + downtime)`` then rejoins."""

    machine: int
    time: float
    downtime: float

    @property
    def end(self) -> float:
        return self.time + self.downtime


@dataclass(frozen=True)
class Slowdown:
    """``machine`` runs ``factor``× slower over ``[time, time + duration)``."""

    machine: int
    time: float
    duration: float
    factor: float

    @property
    def end(self) -> float:
        return self.time + self.duration


@dataclass(frozen=True)
class Outage:
    """A window during which a machine cannot make progress.

    ``end`` is ``inf`` for a permanent kill.
    """

    start: float
    end: float
    permanent: bool


def _check_overlap(windows, start: float, end: float, what: str) -> None:
    for w in windows:
        if w.time < end and start < w.end:
            raise FaultInjectionError(
                f"{what} [{start}, {end}) overlaps existing "
                f"[{w.time}, {w.end})"
            )


class FaultPlan:
    """A schedule of machine kills, transient faults and slowdowns.

    All per-machine queries are O(1) dict lookups (plus a short scan of
    that machine's own windows); the job scheduler calls them once per
    task dispatch.
    """

    def __init__(self, kills: list[MachineKill] | None = None):
        self._kills: dict[int, MachineKill] = {}
        self._transients: dict[int, list[TransientFault]] = {}
        self._slowdowns: dict[int, list[Slowdown]] = {}
        for k in kills or []:
            self.add_kill(k.machine, k.time)

    # ------------------------------------------------------------------
    @property
    def kills(self) -> list[MachineKill]:
        """All scheduled kills, ordered by time."""
        return sorted(self._kills.values(), key=lambda k: k.time)

    @property
    def transients(self) -> list[TransientFault]:
        return sorted(
            (f for fs in self._transients.values() for f in fs),
            key=lambda f: f.time,
        )

    @property
    def slowdowns(self) -> list[Slowdown]:
        return sorted(
            (s for ss in self._slowdowns.values() for s in ss),
            key=lambda s: s.time,
        )

    @property
    def empty(self) -> bool:
        return not (self._kills or self._transients or self._slowdowns)

    def machines(self) -> set[int]:
        """All machine ids with at least one scheduled event."""
        return (set(self._kills) | set(self._transients)
                | set(self._slowdowns))

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(machine: int, time: float) -> None:
        if time < 0:
            raise FaultInjectionError("event time must be non-negative")
        if machine < 0:
            raise FaultInjectionError("machine id must be non-negative")

    def add_kill(self, machine: int, time: float) -> "FaultPlan":
        self._validate(machine, time)
        if machine in self._kills:
            raise FaultInjectionError(
                f"machine {machine} already scheduled to fail"
            )
        self._kills[machine] = MachineKill(machine, time)
        return self

    def add_transient(self, machine: int, time: float,
                      downtime: float) -> "FaultPlan":
        self._validate(machine, time)
        if downtime <= 0:
            raise FaultInjectionError("downtime must be positive")
        windows = self._transients.setdefault(machine, [])
        _check_overlap(windows, time, time + downtime, "transient fault")
        bisect.insort(windows, TransientFault(machine, time, downtime),
                      key=lambda f: f.time)
        return self

    def add_slowdown(self, machine: int, time: float, duration: float,
                     factor: float) -> "FaultPlan":
        self._validate(machine, time)
        if duration <= 0:
            raise FaultInjectionError("slowdown duration must be positive")
        if factor <= 1.0:
            raise FaultInjectionError("slowdown factor must be > 1")
        windows = self._slowdowns.setdefault(machine, [])
        _check_overlap(windows, time, time + duration, "slowdown")
        bisect.insort(windows, Slowdown(machine, time, duration, factor),
                      key=lambda s: s.time)
        return self

    # ------------------------------------------------------------------
    def kill_time(self, machine: int) -> float | None:
        """When ``machine`` dies permanently, or None if it never does."""
        kill = self._kills.get(machine)
        return kill.time if kill is not None else None

    def is_dead(self, machine: int, now: float) -> bool:
        """Permanently dead at ``now``."""
        t = self.kill_time(machine)
        return t is not None and now >= t

    def is_down(self, machine: int, now: float) -> bool:
        """Unable to make progress at ``now`` (dead or in an outage)."""
        if self.is_dead(machine, now):
            return True
        return any(f.time <= now < f.end
                   for f in self._transients.get(machine, ()))

    def next_outage(self, machine: int, now: float) -> Outage | None:
        """The earliest outage still relevant at ``now``.

        Returns the first window (transient or permanent) whose end lies
        after ``now`` — the window the machine is currently inside, or the
        next one it will hit.  ``None`` when the machine runs undisturbed
        forever.
        """
        best: Outage | None = None
        kill = self._kills.get(machine)
        if kill is not None:
            best = Outage(kill.time, math.inf, True)
        for f in self._transients.get(machine, ()):
            if f.end <= now:
                continue
            if best is None or f.time < best.start:
                best = Outage(f.time, f.end, False)
            break  # sorted: the first live window is the earliest
        return best

    def advance(self, machine: int, start: float, work: float) -> float:
        """Wall-clock finish time of ``work`` nominal seconds from ``start``.

        Inside a slowdown window the machine produces ``1/factor`` seconds
        of work per wall second; outside, one for one.  With no slowdowns
        this is exactly ``start + work``.
        """
        if work <= 0:
            return start
        windows = self._slowdowns.get(machine)
        if not windows:
            return start + work
        t, remaining = start, work
        for w in windows:
            if w.end <= t:
                continue
            if w.time > t:
                gap = w.time - t
                if remaining <= gap:
                    return t + remaining
                remaining -= gap
                t = w.time
            # inside [t, w.end): work accrues at 1/factor
            capacity = (w.end - t) / w.factor
            if remaining <= capacity:
                return t + remaining * w.factor
            remaining -= capacity
            t = w.end
        return t + remaining
