"""Fault injection for the fault-tolerance experiment (Figure 10).

A :class:`FaultPlan` schedules machine kills at simulated times.  The job
scheduler consults the plan while dispatching: a machine whose kill time has
passed stops accepting tasks, its in-flight task is lost and re-queued, and
the partition store promotes replicas — reproducing the paper's 'kill a
slave node at 235 seconds' experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultInjectionError

__all__ = ["FaultPlan", "MachineKill"]


@dataclass(frozen=True)
class MachineKill:
    """Kill ``machine`` at simulated ``time`` seconds."""

    machine: int
    time: float


@dataclass
class FaultPlan:
    """An ordered set of machine-kill events."""

    kills: list[MachineKill] = field(default_factory=list)

    def add_kill(self, machine: int, time: float) -> "FaultPlan":
        if time < 0:
            raise FaultInjectionError("kill time must be non-negative")
        if machine < 0:
            raise FaultInjectionError("machine id must be non-negative")
        if any(k.machine == machine for k in self.kills):
            raise FaultInjectionError(
                f"machine {machine} already scheduled to fail"
            )
        self.kills.append(MachineKill(machine, time))
        self.kills.sort(key=lambda k: k.time)
        return self

    def kill_time(self, machine: int) -> float | None:
        """When ``machine`` dies, or None if it never does."""
        for kill in self.kills:
            if kill.machine == machine:
                return kill.time
        return None

    def is_dead(self, machine: int, now: float) -> bool:
        t = self.kill_time(machine)
        return t is not None and now >= t

    @property
    def empty(self) -> bool:
        return not self.kills
