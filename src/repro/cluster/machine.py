"""Per-machine simulated state: clock and resource counters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.spec import MachineSpec

__all__ = ["MachineState"]


@dataclass
class MachineState:
    """Mutable simulation state of one slave machine.

    ``clock`` is the machine-local simulated time: tasks dispatched to this
    machine start no earlier than ``clock`` and push it forward.  ``alive``
    is toggled by fault injection.  Counters feed the paper's disk-I/O and
    total-machine-time metrics.
    """

    machine_id: int
    spec: MachineSpec
    clock: float = 0.0
    alive: bool = True
    failed_at: float | None = None
    busy_time: float = 0.0
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    cpu_ops: float = 0.0
    tasks_executed: int = 0
    #: transient-fault bookkeeping: total seconds spent down, and how many
    #: times the machine left and re-joined the cluster
    down_seconds: float = 0.0
    recoveries: int = 0

    def fail(self, at_time: float) -> None:
        """Mark the machine dead as of ``at_time`` (heartbeat loss).

        The local clock stops at the moment of death: a machine that was
        idle-waiting out a transient window when the kill hit must not
        keep a clock beyond its last recorded work, or the cluster's
        response time would exceed anything the trace can account for.
        """
        self.alive = False
        self.failed_at = at_time
        self.clock = min(self.clock, at_time)

    def reset(self) -> None:
        self.clock = 0.0
        self.alive = True
        self.failed_at = None
        self.busy_time = 0.0
        self.disk_read_bytes = 0
        self.disk_write_bytes = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.cpu_ops = 0.0
        self.tasks_executed = 0
        self.down_seconds = 0.0
        self.recoveries = 0
