"""Network cost model and traffic accounting.

Transfers between distinct machines take ``bytes / bandwidth(src, dst)``
simulated seconds and are counted as network traffic; transfers between
partitions co-located on one machine are free and not counted — this is
exactly the locality the bandwidth-aware placement exploits and the paper's
network-I/O metric measures (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import Topology

__all__ = ["TrafficCounter", "NetworkModel"]


@dataclass
class TrafficCounter:
    """Accumulated traffic of one simulation run.

    ``background_bytes`` counts transfers flagged as background repair
    traffic (re-replication after a machine failure); they are included in
    ``total_bytes`` as well — the copies are real flows on the wire.
    """

    total_bytes: int = 0
    cross_pod_bytes: int = 0
    background_bytes: int = 0
    transfers: int = 0
    per_pair: dict[tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, nbytes: int,
               cross_pod: bool, background: bool = False) -> None:
        self.total_bytes += nbytes
        self.transfers += 1
        if cross_pod:
            self.cross_pod_bytes += nbytes
        if background:
            self.background_bytes += nbytes
        key = (src, dst)
        self.per_pair[key] = self.per_pair.get(key, 0) + nbytes

    def reset(self) -> None:
        self.total_bytes = 0
        self.cross_pod_bytes = 0
        self.background_bytes = 0
        self.transfers = 0
        self.per_pair.clear()


class NetworkModel:
    """Charges transfer times against a :class:`Topology` and keeps counters.

    ``metrics`` (optional) is the current job's
    :class:`~repro.runtime.events.MetricsRegistry`; when bound (the
    Surfer binds one per run), every accounted transfer also increments
    the named ``network.*`` counters so the observability layer sees the
    same totals as :class:`TrafficCounter`.
    """

    def __init__(self, topology: Topology, metrics=None):
        self.topology = topology
        self.traffic = TrafficCounter()
        self.metrics = metrics

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Simulated seconds to move ``nbytes`` from ``src`` to ``dst``.

        Local moves (``src == dst``) are free.  Does not record traffic;
        use :meth:`transfer` for accounted sends.
        """
        if src == dst or nbytes <= 0:
            return 0.0
        return nbytes / self.topology.bandwidth(src, dst)

    def transfer(self, src: int, dst: int, nbytes: int,
                 background: bool = False) -> float:
        """Record an accounted transfer and return its simulated time.

        ``background=True`` marks repair traffic (replica re-creation):
        counted as real network flow but tracked separately.
        """
        if src == dst or nbytes <= 0:
            return 0.0
        cross_pod = self.topology.pod_of(src) != self.topology.pod_of(dst)
        self.traffic.record(src, dst, int(nbytes), cross_pod, background)
        if self.metrics is not None:
            self.metrics.add("network.bytes_total", int(nbytes))
            self.metrics.add("network.transfers")
            if cross_pod:
                self.metrics.add("network.bytes_cross_pod", int(nbytes))
            if background:
                self.metrics.add("network.bytes_background", int(nbytes))
        return nbytes / self.topology.bandwidth(src, dst)

    def effective_bandwidth(
        self, src: int, dst: int, users: dict | None = None
    ) -> float:
        """Bandwidth of one flow given stage-wide congestion state.

        ``users`` maps each shared-resource key to the set of machines
        using it during the current stage; the flow receives a fair share
        ``capacity / |users|`` of every resource it crosses, capped by the
        full link rate.  Without ``users`` the pairwise worst case from
        the topology applies.
        """
        return self.flow_constraint(src, dst, users)[0]

    def flow_constraint(
        self, src: int, dst: int, users: dict | None = None
    ) -> tuple[float, object]:
        """(bandwidth, bottleneck resource key) of one flow.

        The key identifies which shared resource limits the flow (None
        when only the full-rate link does); flows limited by the *same*
        resource must share its capacity, while flows limited by distinct
        resources can proceed in parallel.
        """
        if src == dst:
            return float("inf"), None
        if users is None:
            bw = self.topology.bandwidth(src, dst)
            key = None
            if bw < self.topology.link_bps:
                resources = self.topology.flow_resources(src, dst)
                key = resources[0][0] if resources else ("pair", src, dst)
            return bw, key
        bw = self.topology.link_bps
        bottleneck: object = None
        for key, capacity, __ in self.topology.flow_resources(src, dst):
            sharers = max(1, len(users.get(key, ())))
            share = capacity / sharers
            if share < bw:
                bw = share
                bottleneck = key
        return bw, bottleneck

    def flows_time(
        self,
        machine: int,
        flows,
        nic_bps: float,
        outbound: bool = True,
        max_streams: int = 8,
        users: dict | None = None,
    ) -> float:
        """Time for one machine to move a set of concurrent flows.

        ``flows`` is ``[(peer, nbytes), ...]``.  Flows are grouped by the
        shared resource that bottlenecks them: flows through the *same*
        congested resource (one pod uplink, one slow NIC) drain at that
        resource's fair-share rate with no multiplexing gain, while flows
        limited by distinct resources — or by nothing but the full-rate
        link — proceed in parallel (up to ``max_streams`` for full-rate
        flows), all capped by this machine's NIC.  This is the sender- and
        receiver-occupancy model used for every task.
        """
        groups: dict[object, list[float]] = {}
        total = 0.0
        for peer, nbytes in flows:
            peer = int(peer)
            if peer == machine or nbytes <= 0:
                continue
            if outbound:
                bw, key = self.flow_constraint(machine, peer, users)
            else:
                bw, key = self.flow_constraint(peer, machine, users)
            entry = groups.setdefault(key, [0.0, 0, bw])
            entry[0] += nbytes
            entry[1] += 1
            entry[2] = min(entry[2], bw)
            total += nbytes
        if total <= 0:
            return 0.0
        time = total / nic_bps
        for key, (nbytes, count, bw) in groups.items():
            streams = min(count, max_streams) if key is None else 1
            capacity = min(nic_bps, bw * streams)
            time = max(time, nbytes / capacity)
        return time

    def broadcast_time(self, src: int, dests, nbytes: float) -> float:
        """Time to send ``nbytes`` to each destination, serialized at src."""
        return float(sum(self.transfer_time(src, int(d), nbytes)
                         for d in dests))

    def aggregate_bandwidth(self, group_a, group_b) -> float:
        return self.topology.aggregate_bandwidth(group_a, group_b)

    def all_to_all_time(self, machines, bytes_per_pair: float) -> float:
        """Worst-case all-to-all exchange time among ``machines``.

        Every ordered pair ships ``bytes_per_pair``; each sender serializes
        its sends, and the exchange completes when the slowest sender does —
        the worst-case model of Appendix F.
        """
        machines = [int(m) for m in machines]
        worst = 0.0
        for src in machines:
            sender_time = sum(
                self.transfer_time(src, dst, bytes_per_pair)
                for dst in machines if dst != src
            )
            worst = max(worst, sender_time)
        return worst

    def cross_exchange_time(self, group_a, group_b,
                            total_bytes: float) -> float:
        """Time to ship ``total_bytes`` from ``group_a`` to ``group_b``.

        The volume is spread uniformly over the ordered cross pairs; each
        sender serializes its sends and the exchange finishes with the
        slowest sender (the same worst-case model as all-to-all).
        """
        group_a = [int(m) for m in group_a]
        group_b = [int(m) for m in group_b]
        pairs = [(a, b) for a in group_a for b in group_b if a != b]
        if not pairs or total_bytes <= 0:
            return 0.0
        per_pair = total_bytes / len(pairs)
        worst = 0.0
        for a in group_a:
            sender_time = sum(
                self.transfer_time(a, b, per_pair)
                for b in group_b if b != a
            )
            worst = max(worst, sender_time)
        return worst

    def reset(self) -> None:
        self.traffic.reset()
