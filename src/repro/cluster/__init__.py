"""Cloud-cluster simulator substrate: topologies, network, machines, faults."""

from repro.cluster.spec import DEFAULT_MACHINE, GIGABIT_BPS, MachineSpec
from repro.cluster.topology import (
    FlatTopology,
    HeterogeneousTopology,
    Topology,
    TreeTopology,
    t1,
    t2,
    t3,
)
from repro.cluster.network import NetworkModel, TrafficCounter
from repro.cluster.machine import MachineState
from repro.cluster.cluster import Cluster, ClusterMetrics, partitions_for_memory
from repro.cluster.storage import PartitionStore
from repro.cluster.faults import (
    FaultPlan,
    MachineKill,
    Outage,
    Slowdown,
    TransientFault,
)
from repro.cluster.calibration import (
    CalibratedTopology,
    calibrate_bandwidth,
    calibrated_machine_graph,
)

__all__ = [
    "DEFAULT_MACHINE",
    "GIGABIT_BPS",
    "MachineSpec",
    "FlatTopology",
    "HeterogeneousTopology",
    "Topology",
    "TreeTopology",
    "t1",
    "t2",
    "t3",
    "NetworkModel",
    "TrafficCounter",
    "MachineState",
    "Cluster",
    "ClusterMetrics",
    "partitions_for_memory",
    "PartitionStore",
    "FaultPlan",
    "MachineKill",
    "Outage",
    "Slowdown",
    "TransientFault",
    "CalibratedTopology",
    "calibrate_bandwidth",
    "calibrated_machine_graph",
]
