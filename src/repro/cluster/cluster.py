"""Cluster facade: machines + network, metrics, partition-count rule.

A :class:`Cluster` is the substrate every engine runs on.  It owns one
:class:`~repro.cluster.machine.MachineState` per machine and a
:class:`~repro.cluster.network.NetworkModel` over the chosen topology, and
exposes the aggregate metrics the paper reports: response time (makespan),
total machine time, total network I/O, total disk I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.cluster.machine import MachineState
from repro.cluster.network import NetworkModel
from repro.cluster.spec import DEFAULT_MACHINE, MachineSpec
from repro.cluster.topology import FlatTopology, Topology

__all__ = ["Cluster", "ClusterMetrics", "partitions_for_memory"]


@dataclass(frozen=True)
class ClusterMetrics:
    """Aggregate metrics of everything run on a cluster since last reset."""

    response_time: float
    total_machine_time: float
    network_bytes: int
    disk_read_bytes: int
    disk_write_bytes: int
    #: bytes copied in the background to restore lost replicas (included
    #: in ``network_bytes`` — re-replication is real traffic on the wire)
    re_replication_bytes: int = 0

    @property
    def disk_bytes(self) -> int:
        """Total disk I/O (read + write), the paper's 'Disk' column."""
        return self.disk_read_bytes + self.disk_write_bytes


def partitions_for_memory(graph_bytes: int, memory_bytes: int) -> int:
    """The paper's partition-count rule ``P = 2**ceil(log2(||G|| / r))``.

    Returns at least 1 (a graph that already fits in memory needs a single
    partition).
    """
    if graph_bytes <= 0 or memory_bytes <= 0:
        raise TopologyError("sizes must be positive")
    ratio = graph_bytes / memory_bytes
    if ratio <= 1.0:
        return 1
    return 2 ** math.ceil(math.log2(ratio))


class Cluster:
    """A set of simulated machines connected by a topology."""

    def __init__(
        self,
        topology: Topology | None = None,
        num_machines: int | None = None,
        machine_spec: MachineSpec = DEFAULT_MACHINE,
    ):
        if topology is None:
            topology = FlatTopology(num_machines or 32)
        elif num_machines is not None and num_machines != topology.num_machines:
            raise TopologyError(
                "num_machines conflicts with the topology's machine count"
            )
        self.topology = topology
        self.machine_spec = machine_spec
        self.network = NetworkModel(topology)
        self.machines = [
            MachineState(i, machine_spec)
            for i in range(topology.num_machines)
        ]

    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.topology.num_machines

    def machine(self, machine_id: int) -> MachineState:
        if not 0 <= machine_id < self.num_machines:
            raise TopologyError(f"unknown machine {machine_id}")
        return self.machines[machine_id]

    def alive_machines(self) -> list[int]:
        return [m.machine_id for m in self.machines if m.alive]

    # ------------------------------------------------------------------
    def metrics(self) -> ClusterMetrics:
        """Snapshot the aggregate metrics accumulated so far."""
        return ClusterMetrics(
            response_time=max((m.clock for m in self.machines), default=0.0),
            total_machine_time=sum(m.busy_time for m in self.machines),
            network_bytes=self.network.traffic.total_bytes,
            disk_read_bytes=sum(m.disk_read_bytes for m in self.machines),
            disk_write_bytes=sum(m.disk_write_bytes for m in self.machines),
            re_replication_bytes=self.network.traffic.background_bytes,
        )

    def reset(self) -> None:
        """Zero all clocks and counters for a fresh run."""
        for m in self.machines:
            m.reset()
        self.network.reset()

    def describe(self) -> str:
        return self.topology.describe()
