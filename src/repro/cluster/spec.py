"""Machine and cluster hardware specifications.

Defaults mirror the paper's testbed (Appendix F): Quad Xeon machines with
8 GB RAM, two 1 TB SATA disks and 1 Gb Ethernet.  The simulator expresses
every resource as a rate so all costs reduce to simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError

__all__ = ["MachineSpec", "GIGABIT_BPS", "DEFAULT_MACHINE"]

# 1 Gb Ethernet in bytes/second.
GIGABIT_BPS = 125_000_000.0


@dataclass(frozen=True)
class MachineSpec:
    """Hardware rates of one slave machine.

    ``memory_bytes`` bounds the partition size (principle P2);
    ``disk_read_bps`` / ``disk_write_bps`` are sequential disk rates;
    ``cpu_ops_per_sec`` converts abstract work units (one processed edge or
    record equals one unit) into time; ``nic_bps`` caps the NIC regardless
    of what the topology offers.
    """

    memory_bytes: float = 8 * 1024**3
    disk_read_bps: float = 100_000_000.0
    disk_write_bps: float = 80_000_000.0
    cpu_ops_per_sec: float = 50_000_000.0
    nic_bps: float = GIGABIT_BPS
    #: slowdown of disk operations on a partition whose working set does
    #: not fit in memory (random instead of sequential I/O — principle P2)
    random_io_penalty: float = 4.0

    def __post_init__(self) -> None:
        for name in ("disk_read_bps", "disk_write_bps",
                     "cpu_ops_per_sec", "nic_bps"):
            if getattr(self, name) <= 0:
                raise TopologyError(f"{name} must be positive")
        if self.memory_bytes <= 0:
            raise TopologyError("memory_bytes must be positive")
        if self.random_io_penalty < 1:
            raise TopologyError("random_io_penalty must be >= 1")

    def scaled(self, factor: float) -> "MachineSpec":
        """A spec with every rate divided by ``factor``.

        Used to run reduced-size workloads in the same *regime* as the
        paper's testbed: dividing network, disk and CPU rates by the same
        factor makes one simulated byte stand for ``factor`` real bytes
        while preserving every rate ratio.
        """
        if factor <= 0:
            raise TopologyError("scale factor must be positive")
        return MachineSpec(
            memory_bytes=self.memory_bytes / factor,
            disk_read_bps=self.disk_read_bps / factor,
            disk_write_bps=self.disk_write_bps / factor,
            cpu_ops_per_sec=self.cpu_ops_per_sec / factor,
            nic_bps=self.nic_bps / factor,
            random_io_penalty=self.random_io_penalty,
        )

    def disk_read_time(self, nbytes: float) -> float:
        return nbytes / self.disk_read_bps

    def disk_write_time(self, nbytes: float) -> float:
        return nbytes / self.disk_write_bps

    def cpu_time(self, ops: float) -> float:
        return ops / self.cpu_ops_per_sec


DEFAULT_MACHINE = MachineSpec()
