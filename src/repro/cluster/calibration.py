"""Pairwise bandwidth calibration (Section 4.2).

"Given a set of machines, the machine graph can be easily constructed by
calibrating the network bandwidth between any two machines in the set."
The deployed system never reads the topology database — it *measures*.
:func:`calibrate_bandwidth` reproduces that step against the simulator:
timed probe transfers between every machine pair yield an empirical
bandwidth matrix, and :func:`calibrated_machine_graph` builds the machine
graph the bandwidth-aware partitioner consumes from those measurements
alone.

Probes observe the same congestion model as real traffic, so a calibrated
machine graph matches the oracle one up to measurement noise — which the
tests assert.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.cluster.network import NetworkModel
from repro.cluster.topology import Topology
from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.machine_graph import MachineGraph

__all__ = ["calibrate_bandwidth", "calibrated_machine_graph",
           "CalibratedTopology"]

#: probe transfer size: big enough to dwarf fixed overheads
PROBE_BYTES = 64 * 1024 * 1024


def calibrate_bandwidth(
    topology: Topology,
    machines=None,
    probe_bytes: float = PROBE_BYTES,
    repeats: int = 3,
) -> np.ndarray:
    """Measure the pairwise bandwidth matrix with timed probe transfers.

    Returns a dense symmetric matrix in bytes/second with ``inf`` on the
    diagonal.  Each ordered pair is probed ``repeats`` times (the paper
    reports averaged, stable measurements); probes run one at a time, so
    they observe the uncontended path — the quantity the machine-graph
    weights want.
    """
    if probe_bytes <= 0:
        raise TopologyError("probe_bytes must be positive")
    if repeats < 1:
        raise TopologyError("repeats must be >= 1")
    if machines is None:
        machines = list(range(topology.num_machines))
    machines = [int(m) for m in machines]
    network = NetworkModel(topology)
    n = len(machines)
    matrix = np.full((topology.num_machines, topology.num_machines),
                     np.inf)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = machines[i], machines[j]
            elapsed = sum(
                network.transfer_time(a, b, probe_bytes)
                + network.transfer_time(b, a, probe_bytes)
                for _ in range(repeats)
            )
            # round trip moved 2 * repeats * probe_bytes
            bandwidth = (2 * repeats * probe_bytes) / elapsed
            matrix[a, b] = matrix[b, a] = bandwidth
    return matrix


class CalibratedTopology(Topology):
    """A topology backed purely by a measured bandwidth matrix.

    What a production deployment actually has: no switch diagram, just
    numbers.  ``pod_of`` is unknown (single pod) and there are no named
    shared resources — the bandwidth-aware partitioner only needs the
    pairwise weights.
    """

    def __init__(self, matrix: np.ndarray, link_bps: float | None = None):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise TopologyError("bandwidth matrix must be square")
        finite = matrix[np.isfinite(matrix)]
        if finite.size == 0:
            raise TopologyError("bandwidth matrix has no finite entries")
        if link_bps is None:
            link_bps = float(finite.max())
        super().__init__(matrix.shape[0], link_bps)
        self.matrix = matrix

    def bandwidth(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        if src == dst:
            return float("inf")
        return float(self.matrix[src, dst])

    def describe(self) -> str:
        return f"Calibrated(n={self.num_machines})"


def calibrated_machine_graph(
    topology: Topology,
    machines=None,
    probe_bytes: float = PROBE_BYTES,
) -> "MachineGraph":
    """Machine graph built from measured — not declared — bandwidths."""
    from repro.core.machine_graph import MachineGraph

    matrix = calibrate_bandwidth(topology, machines, probe_bytes)
    calibrated = CalibratedTopology(matrix)
    return MachineGraph(calibrated, machines)
