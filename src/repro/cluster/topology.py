"""Cloud network topologies: T1 (flat), T2 (tree), T3 (heterogeneous).

The paper evaluates on a flat 32-machine pod (T1) and *simulates* uneven
bandwidth by slowing cross-pod transfers by a delay factor — by default 16x
for pairs meeting at a second-level switch and 32x at the top-level switch
(Section 6.1, Appendix F).  T3 models hardware heterogeneity: a random half
of the machines runs at half bandwidth, and a pair's bandwidth is the
minimum of its endpoints'.

A topology answers one question — ``bandwidth(i, j)`` in bytes/second — plus
structural queries (pod membership, lowest common switch level) used by the
machine-graph construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.cluster.spec import GIGABIT_BPS

__all__ = [
    "Topology",
    "FlatTopology",
    "TreeTopology",
    "HeterogeneousTopology",
    "t1",
    "t2",
    "t3",
]


class Topology:
    """Pairwise-bandwidth model over machines ``0 .. n-1``."""

    def __init__(self, num_machines: int, link_bps: float = GIGABIT_BPS):
        if num_machines <= 0:
            raise TopologyError("num_machines must be positive")
        if link_bps <= 0:
            raise TopologyError("link_bps must be positive")
        self.num_machines = num_machines
        self.link_bps = float(link_bps)

    # -- interface -----------------------------------------------------
    def bandwidth(self, src: int, dst: int) -> float:
        """Bytes/second between two machines (infinite when src == dst)."""
        raise NotImplementedError

    def pod_of(self, machine: int) -> int:
        """Pod index of ``machine`` (flat topologies are one pod)."""
        self._check(machine)
        return 0

    def flow_resources(
        self, src: int, dst: int
    ) -> list[tuple[tuple, float, int]]:
        """Shared congestible resources on the ``src -> dst`` path.

        Each entry is ``(resource_key, capacity_bps, user_machine)``: the
        resource's aggregate capacity and which endpoint's traffic transits
        it.  The scheduler counts distinct users per resource within a
        stage and grants each a fair share — so a pod uplink crossed by
        every machine degrades to the paper's worst-case all-to-all pair
        bandwidth, while a few concentrated bulk flows get proportionally
        more.  Flat topologies have no shared resources.
        """
        return []

    @property
    def num_pods(self) -> int:
        return 1

    def describe(self) -> str:
        return f"{type(self).__name__}(n={self.num_machines})"

    # -- derived helpers -----------------------------------------------
    def bandwidth_matrix(self) -> np.ndarray:
        """Dense pairwise bandwidth matrix; diagonal is ``inf``."""
        n = self.num_machines
        mat = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                mat[i, j] = np.inf if i == j else self.bandwidth(i, j)
        return mat

    def aggregate_bandwidth(self, group_a, group_b) -> float:
        """Sum of pair bandwidths across two disjoint machine groups.

        This is the quantity the bandwidth-aware partitioner minimizes on
        the machine-graph bisection (Section 4.2).
        """
        set_b = set(int(m) for m in group_b)
        total = 0.0
        for a in group_a:
            for b in set_b:
                if int(a) != b:
                    total += self.bandwidth(int(a), b)
        return total

    def _check(self, machine: int) -> None:
        if not 0 <= machine < self.num_machines:
            raise TopologyError(
                f"machine {machine} out of range [0, {self.num_machines})"
            )


class FlatTopology(Topology):
    """T1: every machine pair shares the full link bandwidth."""

    def bandwidth(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        if src == dst:
            return float("inf")
        return self.link_bps

    def describe(self) -> str:
        return f"T1(n={self.num_machines})"


class TreeTopology(Topology):
    """T2(#pod, #level): switch-based tree with uneven pair bandwidth.

    Machines are grouped into ``num_pods`` equal pods.  With
    ``num_levels == 1`` all pods hang off the top switch; pairs in different
    pods get ``link_bps / top_factor``.  With ``num_levels == 2`` pods are
    paired under mid-level switches; pairs meeting at a mid switch get
    ``link_bps / mid_factor`` and pairs meeting at the top switch get
    ``link_bps / top_factor``.  Defaults are the paper's 32x / 16x.
    """

    def __init__(
        self,
        num_machines: int,
        num_pods: int,
        num_levels: int = 1,
        link_bps: float = GIGABIT_BPS,
        top_factor: float = 32.0,
        mid_factor: float = 16.0,
    ):
        super().__init__(num_machines, link_bps)
        if num_pods <= 0 or num_machines % num_pods:
            raise TopologyError("num_pods must evenly divide num_machines")
        if num_levels not in (1, 2):
            raise TopologyError("num_levels must be 1 or 2")
        if num_levels == 2 and num_pods % 2:
            raise TopologyError("two-level trees need an even pod count")
        if top_factor < 1 or mid_factor < 1:
            raise TopologyError("delay factors must be >= 1")
        self._num_pods = num_pods
        self.num_levels = num_levels
        self.top_factor = float(top_factor)
        self.mid_factor = float(mid_factor)
        self.pod_size = num_machines // num_pods

    @property
    def num_pods(self) -> int:
        return self._num_pods

    def pod_of(self, machine: int) -> int:
        self._check(machine)
        return machine // self.pod_size

    def group_of(self, machine: int) -> int:
        """Mid-level switch group (pairs of pods) for two-level trees."""
        pod = self.pod_of(machine)
        return pod // 2 if self.num_levels == 2 else 0

    def common_switch_level(self, src: int, dst: int) -> int:
        """0 = same pod, 1 = mid-level switch, 2 = top-level switch."""
        if self.pod_of(src) == self.pod_of(dst):
            return 0
        if self.num_levels == 2 and self.group_of(src) == self.group_of(dst):
            return 1
        return 2

    def bandwidth(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        if src == dst:
            return float("inf")
        level = self.common_switch_level(src, dst)
        if level == 0:
            return self.link_bps
        if level == 1:
            return self.link_bps / self.mid_factor
        return self.link_bps / self.top_factor

    def uplink_capacity(self, level: int) -> float:
        """Aggregate capacity of one pod's uplink at a switch level.

        Calibrated so the worst case — all ``pod_size`` machines of the
        pod pushing through the uplink at once — gives each exactly the
        paper's degraded pair bandwidth ``link / factor``.
        """
        factor = self.mid_factor if level == 1 else self.top_factor
        return self.pod_size * self.link_bps / factor

    def flow_resources(
        self, src: int, dst: int
    ) -> list[tuple[tuple, float, int]]:
        level = self.common_switch_level(src, dst)
        if level == 0:
            return []
        capacity = self.uplink_capacity(level)
        return [
            (("uplink", self.pod_of(src), level), capacity, src),
            (("uplink", self.pod_of(dst), level), capacity, dst),
        ]

    def describe(self) -> str:
        return (f"T2(pods={self.num_pods},levels={self.num_levels},"
                f"n={self.num_machines})")


class HeterogeneousTopology(Topology):
    """T3: a random half of the machines has ``1/slow_factor`` bandwidth.

    A pair's bandwidth is limited by the slower endpoint (Appendix F).
    """

    def __init__(
        self,
        num_machines: int,
        link_bps: float = GIGABIT_BPS,
        slow_fraction: float = 0.5,
        slow_factor: float = 2.0,
        seed: int = 0,
    ):
        super().__init__(num_machines, link_bps)
        if not 0 <= slow_fraction <= 1:
            raise TopologyError("slow_fraction must lie in [0, 1]")
        if slow_factor < 1:
            raise TopologyError("slow_factor must be >= 1")
        rng = np.random.default_rng(seed)
        num_slow = int(round(slow_fraction * num_machines))
        slow = rng.choice(num_machines, size=num_slow, replace=False)
        self.is_slow = np.zeros(num_machines, dtype=bool)
        self.is_slow[slow] = True
        self.slow_factor = float(slow_factor)

    def bandwidth(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        if src == dst:
            return float("inf")
        if self.is_slow[src] or self.is_slow[dst]:
            return self.link_bps / self.slow_factor
        return self.link_bps

    def flow_resources(
        self, src: int, dst: int
    ) -> list[tuple[tuple, float, int]]:
        """A slow machine's NIC is the shared bottleneck of its flows."""
        resources: list[tuple[tuple, float, int]] = []
        slow_bps = self.link_bps / self.slow_factor
        if self.is_slow[src]:
            resources.append((("slow-nic", src), slow_bps, src))
        if self.is_slow[dst]:
            resources.append((("slow-nic", dst), slow_bps, dst))
        return resources

    def describe(self) -> str:
        return f"T3(n={self.num_machines},slow={int(self.is_slow.sum())})"


def t1(num_machines: int = 32, link_bps: float = GIGABIT_BPS) -> FlatTopology:
    """The paper's flat 32-machine pod."""
    return FlatTopology(num_machines, link_bps)


def t2(
    num_pods: int,
    num_levels: int,
    num_machines: int = 32,
    link_bps: float = GIGABIT_BPS,
    top_factor: float = 32.0,
    mid_factor: float = 16.0,
) -> TreeTopology:
    """The paper's T2(#pod, #level) tree variants (Figure 5)."""
    return TreeTopology(num_machines, num_pods, num_levels, link_bps,
                        top_factor, mid_factor)


def t3(
    num_machines: int = 32,
    link_bps: float = GIGABIT_BPS,
    seed: int = 0,
) -> HeterogeneousTopology:
    """The paper's heterogeneous cluster: half the machines at half speed."""
    return HeterogeneousTopology(num_machines, link_bps, 0.5, 2.0, seed)
