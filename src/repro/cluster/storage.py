"""Replicated partition store (the GFS-like layer).

Each graph partition has one *primary* replica on the machine chosen by the
placement algorithm plus ``replication - 1`` secondaries on distinct other
machines, following GFS's scheme (Section 3).  On a machine failure the
store promotes a surviving replica, which is what lets the job manager
re-execute a task elsewhere (Appendix B, Figure 10).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlacementError

__all__ = ["PartitionStore"]


class PartitionStore:
    """Tracks replica locations of every partition on a cluster."""

    def __init__(
        self,
        placement,
        num_machines: int,
        replication: int = 3,
        seed: int = 0,
    ):
        """``placement[p]`` is partition ``p``'s primary machine."""
        placement = np.asarray(placement, dtype=np.int64)
        if replication < 1:
            raise PlacementError("replication must be >= 1")
        if replication > num_machines:
            raise PlacementError(
                "replication cannot exceed the number of machines"
            )
        if placement.size and (
            placement.min() < 0 or placement.max() >= num_machines
        ):
            raise PlacementError("placement machine id out of range")
        self.num_machines = num_machines
        self.replication = replication
        rng = np.random.default_rng(seed)
        self._replicas: list[list[int]] = []
        for p, primary in enumerate(placement):
            others = [m for m in range(num_machines) if m != primary]
            extra = rng.choice(
                others, size=replication - 1, replace=False
            ).tolist() if replication > 1 else []
            self._replicas.append([int(primary)] + [int(m) for m in extra])

    @property
    def num_partitions(self) -> int:
        return len(self._replicas)

    def primary(self, partition: int) -> int:
        """Current primary machine of ``partition``."""
        return self._replicas[partition][0]

    def replicas(self, partition: int) -> list[int]:
        """All machines holding ``partition`` (primary first)."""
        return list(self._replicas[partition])

    def placement_array(self) -> np.ndarray:
        """Primary machine per partition as an array."""
        return np.array([r[0] for r in self._replicas], dtype=np.int64)

    def partitions_on(self, machine: int) -> list[int]:
        """Partitions whose *primary* replica lives on ``machine``."""
        return [p for p, r in enumerate(self._replicas) if r[0] == machine]

    def handle_failure(self, machine: int) -> list[int]:
        """Drop ``machine`` from every replica set; promote survivors.

        Returns the partitions whose primary moved.  Raises if any
        partition would lose its last replica.
        """
        moved: list[int] = []
        for p, reps in enumerate(self._replicas):
            if machine not in reps:
                continue
            survivors = [m for m in reps if m != machine]
            if not survivors:
                raise PlacementError(
                    f"partition {p} lost its last replica on machine {machine}"
                )
            if reps[0] == machine:
                moved.append(p)
            self._replicas[p] = survivors
        return moved
