"""Replicated partition store (the GFS-like layer).

Each graph partition has one *primary* replica on the machine chosen by the
placement algorithm plus ``replication - 1`` secondaries on distinct other
machines, following GFS's scheme (Section 3).  On a machine failure the
store promotes a surviving replica, which is what lets the job manager
re-execute a task elsewhere (Appendix B, Figure 10), and — like GFS — the
lost replicas are *re-created* on surviving machines so a later failure
does not hit a degraded replica set (:meth:`re_replicate`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DataLossError, PlacementError

__all__ = ["PartitionStore"]


class PartitionStore:
    """Tracks replica locations of every partition on a cluster."""

    def __init__(
        self,
        placement,
        num_machines: int,
        replication: int = 3,
        seed: int = 0,
        partition_bytes=None,
        topology=None,
    ):
        """``placement[p]`` is partition ``p``'s primary machine.

        ``partition_bytes`` (optional, per partition) sizes the copy
        traffic of replica re-creation; without it re-replication still
        restores replica counts but charges no bytes.  ``topology``
        (optional) makes replica repair placement-aware: new holders are
        chosen by copy bandwidth from the primary, not just by load.
        """
        placement = np.asarray(placement, dtype=np.int64)
        if replication < 1:
            raise PlacementError("replication must be >= 1")
        if replication > num_machines:
            raise PlacementError(
                "replication cannot exceed the number of machines"
            )
        if placement.size and (
            placement.min() < 0 or placement.max() >= num_machines
        ):
            raise PlacementError("placement machine id out of range")
        self.num_machines = num_machines
        self.replication = replication
        if partition_bytes is None:
            self.partition_bytes = np.zeros(placement.size, dtype=np.int64)
        else:
            self.partition_bytes = np.asarray(partition_bytes,
                                              dtype=np.int64)
            if self.partition_bytes.size != placement.size:
                raise PlacementError(
                    "partition_bytes length must match the placement"
                )
        self.topology = topology
        rng = np.random.default_rng(seed)
        self._replicas: list[list[int]] = []
        self._failed: set[int] = set()
        for p, primary in enumerate(placement):
            others = [m for m in range(num_machines) if m != primary]
            extra = rng.choice(
                others, size=replication - 1, replace=False
            ).tolist() if replication > 1 else []
            self._replicas.append([int(primary)] + [int(m) for m in extra])

    @classmethod
    def from_replica_sets(
        cls,
        replica_sets: Sequence[Sequence[int]],
        num_machines: int,
        replication: int,
        partition_bytes=None,
        failed: Iterable[int] = (),
        topology=None,
    ) -> "PartitionStore":
        """A store over explicitly given replica sets (primary first).

        Used by the job-level restart path: after a data loss the driver
        rebuilds the metadata from the replicas that survived on alive
        machines (plus any partitions freshly restored from the durable
        tier).  ``failed`` machines are excluded from future repair.
        """
        if replication < 1:
            raise PlacementError("replication must be >= 1")
        failed_set = {int(m) for m in failed}
        store = cls.__new__(cls)
        store.num_machines = num_machines
        store.replication = replication
        store.topology = topology
        store._failed = failed_set
        store._replicas = []
        for p, reps in enumerate(replica_sets):
            holders = [int(m) for m in reps]
            if not holders:
                raise PlacementError(f"partition {p} has no replica")
            for m in holders:
                if not 0 <= m < num_machines:
                    raise PlacementError(f"unknown machine {m}")
                if m in failed_set:
                    raise PlacementError(
                        f"replica of partition {p} on failed machine {m}"
                    )
            if len(set(holders)) != len(holders):
                raise PlacementError(
                    f"duplicate replica holders for partition {p}"
                )
            store._replicas.append(holders)
        if partition_bytes is None:
            store.partition_bytes = np.zeros(len(store._replicas),
                                             dtype=np.int64)
        else:
            store.partition_bytes = np.asarray(partition_bytes,
                                               dtype=np.int64)
            if store.partition_bytes.size != len(store._replicas):
                raise PlacementError(
                    "partition_bytes length must match the replica sets"
                )
        return store

    @property
    def num_partitions(self) -> int:
        return len(self._replicas)

    @property
    def failed_machines(self) -> frozenset[int]:
        """Machines reported dead via :meth:`handle_failure`."""
        return frozenset(self._failed)

    def primary(self, partition: int) -> int:
        """Current primary machine of ``partition``."""
        return self._replicas[partition][0]

    def replicas(self, partition: int) -> list[int]:
        """All machines holding ``partition`` (primary first)."""
        return list(self._replicas[partition])

    def partition_nbytes(self, partition: int) -> int:
        """Disk footprint of one partition (0 when sizes were not given)."""
        return int(self.partition_bytes[partition])

    def placement_array(self) -> np.ndarray:
        """Primary machine per partition as an array."""
        return np.array([r[0] for r in self._replicas], dtype=np.int64)

    def partitions_on(self, machine: int) -> list[int]:
        """Partitions whose *primary* replica lives on ``machine``."""
        return [p for p, r in enumerate(self._replicas) if r[0] == machine]

    # ------------------------------------------------------------------
    def handle_failure(self, machine: int) -> list[int]:
        """Drop ``machine`` from every replica set; promote survivors.

        Idempotent: a repeated call for the same machine is a no-op and
        returns ``[]``.  Returns the partitions whose primary moved.
        Raises :class:`DataLossError` if any partition would lose its
        last replica — the job cannot produce a correct result then.
        """
        if machine in self._failed:
            return []
        self._failed.add(machine)
        moved: list[int] = []
        for p, reps in enumerate(self._replicas):
            if machine not in reps:
                continue
            survivors = [m for m in reps if m != machine]
            if not survivors:
                raise DataLossError(
                    f"partition {p} lost its last replica on machine {machine}"
                )
            if reps[0] == machine:
                moved.append(p)
            self._replicas[p] = survivors
        return moved

    def add_replica(self, partition: int, machine: int) -> None:
        """Register a freshly copied replica of ``partition``."""
        if not 0 <= machine < self.num_machines:
            raise PlacementError(f"unknown machine {machine}")
        if machine in self._failed:
            raise PlacementError(
                f"cannot place a replica on failed machine {machine}"
            )
        reps = self._replicas[partition]
        if machine not in reps:
            reps.append(machine)

    def under_replicated(self) -> list[int]:
        """Partitions currently holding fewer than ``replication`` copies."""
        return [p for p, r in enumerate(self._replicas)
                if len(r) < self.replication]

    def re_replicate(self, alive) -> list[tuple[int, int, int]]:
        """Restore every under-replicated partition on surviving machines.

        ``alive`` is the set of machines able to receive copies.  New
        replica holders are chosen deterministically: the least-loaded
        alive machine, with ties broken *placement-aware* when the store
        knows the topology — the candidate with the highest bandwidth to
        the copy source (the partition's primary) wins, which keeps
        repair traffic off the oversubscribed pod uplinks just like the
        bandwidth-aware placement keeps job traffic off them.  Remaining
        ties go to the lowest machine id (the pre-topology rule, and the
        fallback when no topology was given).  Each copy is sourced from
        the partition's current primary.  Returns the copies made as
        ``(partition, src, dst)`` so the caller can charge the traffic;
        the store metadata is updated in place.
        """
        alive = sorted(set(alive) - self._failed)
        load = {m: 0 for m in alive}
        for reps in self._replicas:
            for m in reps:
                if m in load:
                    load[m] += 1
        copies: list[tuple[int, int, int]] = []
        for p in self.under_replicated():
            reps = self._replicas[p]
            while len(reps) < self.replication:
                candidates = [m for m in alive if m not in reps]
                if not candidates:
                    break  # fewer survivors than the replication target
                dst = self._repair_target(candidates, load, reps[0])
                reps.append(dst)
                load[dst] += 1
                copies.append((p, reps[0], dst))
        return copies

    def _repair_target(self, candidates: list[int], load: dict[int, int],
                       primary: int) -> int:
        """Deterministic destination for one repair copy."""
        if self.topology is None:
            return min(candidates, key=lambda m: (load[m], m))
        return min(
            candidates,
            key=lambda m: (load[m], -self.topology.bandwidth(primary, m), m),
        )
