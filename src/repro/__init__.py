"""repro — reproduction of Surfer, "Large Graph Processing in the Cloud".

Public API highlights:

* :mod:`repro.graph` — CSR digraphs, generators, adjacency I/O, oracles.
* :mod:`repro.partitioning` — from-scratch multilevel partitioner.
* :mod:`repro.cluster` — deterministic cloud-cluster simulator (T1/T2/T3).
* :mod:`repro.core` — bandwidth-aware partitioning, partition sketch,
  partitioned graph, the Surfer engine facade.
* :mod:`repro.propagation` — the transfer/combine primitive with the
  O1–O4 optimization levels and cascaded multi-iteration execution.
* :mod:`repro.mapreduce` — the home-grown MapReduce comparison primitive.
* :mod:`repro.apps` — NR, RS, TC, VDD, RLG, TFL in both primitives.
* :mod:`repro.bench` — workloads and the per-table/figure experiments.
"""

__version__ = "1.0.0"

from repro.errors import (
    FaultInjectionError,
    GraphError,
    GraphFormatError,
    JobError,
    PartitioningError,
    PlacementError,
    SchedulingError,
    SurferError,
    TopologyError,
)

__all__ = [
    "__version__",
    "SurferError",
    "GraphError",
    "GraphFormatError",
    "PartitioningError",
    "TopologyError",
    "PlacementError",
    "SchedulingError",
    "JobError",
    "FaultInjectionError",
]
