"""Process-stable key hashing for message and shuffle routing.

Python's built-in ``hash`` is salted per process for ``str`` (and
anything containing one), so two workers — or the same worker restarted
with a different ``PYTHONHASHSEED`` — would route the same virtual-vertex
key or shuffle key to *different* destinations.  Routing must be a pure
function of the key: re-executed tasks (fault tolerance) and independent
processes have to agree on where a key lives.

``stable_hash`` keeps the Knuth multiplicative hash for integer keys
(cheap, well-spread, and what the seed engines always used) and routes
every other key through ``zlib.crc32`` of a deterministic byte encoding:
UTF-8 for strings, raw bytes as-is, ``repr`` (which is deterministic for
ints, floats, tuples and frozensets of those) for everything else.

``stable_hash_array`` is the vectorized twin used by the array fast
paths: the Knuth hash as one uint64 multiply over an integer ndarray,
and a batched CRC32 pass for fixed-width (``S``-dtype) byte keys — both
bit-identical to ``stable_hash`` applied per element.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["stable_hash", "stable_hash_array"]

_KNUTH = 2654435761
_MASK32 = 0xFFFFFFFF


def stable_hash(key: object) -> int:
    """A 32-bit hash of ``key`` that is identical across processes."""
    if isinstance(key, (int, np.integer)):
        return (int(key) * _KNUTH) & _MASK32
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, (bytes, bytearray)):
        data = bytes(key)
    else:
        data = repr(key).encode("utf-8")
    return zlib.crc32(data) & _MASK32


def stable_hash_array(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`stable_hash` over an ndarray of keys.

    Integer arrays take the Knuth multiplicative hash computed in
    wrapping uint64 arithmetic: the low 32 bits of ``key * _KNUTH`` only
    depend on ``key mod 2**64``, so the mod-2**64 wraparound (including
    two's-complement negatives) reproduces the arbitrary-precision
    scalar result exactly.  Fixed-width byte arrays (dtype kind ``S``)
    hash each element's bytes — as numpy yields them, i.e. with trailing
    NULs stripped — through ``zlib.crc32`` in one batched pass.

    Returns an int64 array of 32-bit hash values aligned with ``keys``.
    """
    arr = np.asarray(keys)
    if arr.dtype.kind in "iu":
        if arr.dtype.kind == "i":
            wide = arr.astype(np.int64, copy=False).view(np.uint64)
        else:
            wide = arr.astype(np.uint64, copy=False)
        hashed = (wide * np.uint64(_KNUTH)) & np.uint64(_MASK32)
        return hashed.astype(np.int64)
    if arr.dtype.kind == "S":
        crc32 = zlib.crc32
        return np.fromiter(
            (crc32(k) & _MASK32 for k in arr.tolist()),
            dtype=np.int64, count=arr.size,
        ).reshape(arr.shape)
    raise TypeError(
        f"stable_hash_array: unsupported key dtype {arr.dtype!r} "
        "(need an integer or fixed-width bytes array)"
    )
