"""Process-stable key hashing for message and shuffle routing.

Python's built-in ``hash`` is salted per process for ``str`` (and
anything containing one), so two workers — or the same worker restarted
with a different ``PYTHONHASHSEED`` — would route the same virtual-vertex
key or shuffle key to *different* destinations.  Routing must be a pure
function of the key: re-executed tasks (fault tolerance) and independent
processes have to agree on where a key lives.

``stable_hash`` keeps the Knuth multiplicative hash for integer keys
(cheap, well-spread, and what the seed engines always used) and routes
every other key through ``zlib.crc32`` of a deterministic byte encoding:
UTF-8 for strings, raw bytes as-is, ``repr`` (which is deterministic for
ints, floats, tuples and frozensets of those) for everything else.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["stable_hash"]


def stable_hash(key) -> int:
    """A 32-bit hash of ``key`` that is identical across processes."""
    if isinstance(key, (int, np.integer)):
        return (int(key) * 2654435761) & 0xFFFFFFFF
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, (bytes, bytearray)):
        data = bytes(key)
    else:
        data = repr(key).encode("utf-8")
    return zlib.crc32(data) & 0xFFFFFFFF
