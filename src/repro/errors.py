"""Exception hierarchy for the Surfer reproduction.

All library-raised exceptions derive from :class:`SurferError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class SurferError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(SurferError):
    """Malformed graph input or an operation invalid for a given graph."""


class GraphFormatError(GraphError):
    """A serialized graph (adjacency text/binary) could not be parsed."""


class PartitioningError(SurferError):
    """A partitioning request could not be satisfied."""


class TopologyError(SurferError):
    """Invalid cluster/topology specification."""


class PlacementError(SurferError):
    """Partition-to-machine placement is inconsistent or impossible."""


class DataLossError(PlacementError):
    """Every replica of some partition was lost; the job cannot recover.

    Subclasses :class:`PlacementError` so existing callers that guarded the
    replica store keep working; new code should catch this directly — the
    scheduler and the Surfer facade convert it into a clean failed-job
    result instead of crashing the simulation.
    """


class SchedulingError(SurferError):
    """The job scheduler was asked to do something impossible."""


class JobError(SurferError):
    """A job specification is invalid (bad UDFs, missing annotations...)."""


class FaultInjectionError(SurferError):
    """Invalid fault-injection request (e.g. killing an unknown machine)."""


class BenchConfigError(SurferError):
    """A declarative benchmark config (TOML) failed validation.

    ``errors`` carries every violation found, not just the first, so a
    config author fixes one round-trip's worth of problems at a time.
    """

    def __init__(self, source: str, errors: list[str]) -> None:
        self.source = source
        self.errors = list(errors)
        super().__init__(
            f"invalid bench config {source}: " + "; ".join(self.errors)
        )


class BenchRunError(SurferError):
    """A benchmark run violated an execution invariant (failed job,
    trace/counter mismatch, nondeterministic simulated metrics)."""


class SanitizerError(SurferError):
    """SimSan (the opt-in runtime sanitizer) detected an invariant
    violation: a BSP write race, a counter-conservation drift at a
    superstep boundary, broken span push/pop discipline, or a writable
    shard view.  Raised at the superstep where the violation occurred,
    not at job end, so the failing schedule is still in hand."""
