"""VDD — vertex degree distribution (Appendix D) in both primitives.

VDD is a vertex-oriented task: it needs no edge traversal, just a global
group-by on degree.  The propagation version demonstrates the *virtual
vertex* mechanism (Section 3.3): each vertex emits ``(degree, 1)`` to the
virtual vertex whose id is the degree value; the virtual vertex sums.
Because routing is a hash of the degree, graph locality is irrelevant —
which is why the paper sees no benefit from bandwidth-aware placement on
VDD and parity with MapReduce (Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import VertexState
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp

__all__ = ["DegreeDistributionPropagation", "DegreeDistributionMapReduce"]


def _vdd_state(pgraph) -> VertexState:
    state = VertexState(pgraph=pgraph, values={})
    state.extra["out_deg"] = pgraph.graph.out_degrees()
    return state


class DegreeDistributionPropagation(PropagationApp):
    """Propagation-emulated VDD via virtual vertices."""

    name = "VDD"
    is_associative = True
    uses_virtual_vertices = True

    def setup(self, pgraph) -> VertexState:
        return _vdd_state(pgraph)

    def virtual_transfer(self, u, state):
        yield int(state.extra["out_deg"][u]), 1

    def virtual_combine(self, key, values, state):
        return sum(values)

    def merge(self, a, b):
        return a + b

    def update(self, state, combined):
        state.values.update(combined)

    def finalize(self, state):
        return dict(state.values)


class DegreeDistributionMapReduce(MapReduceApp):
    """MapReduce VDD with per-partition combining."""

    name = "VDD"
    combine_ufunc = np.add

    def setup(self, pgraph) -> VertexState:
        return _vdd_state(pgraph)

    def map(self, partition, pgraph, state, emit):
        table: dict[int, int] = {}
        out_deg = state.extra["out_deg"]
        for u in pgraph.partition_vertices[partition]:
            d = int(out_deg[u])
            table[d] = table.get(d, 0) + 1
        for degree, count in table.items():
            emit(degree, count)

    def map_array(self, partition, pgraph, state):
        out_deg = state.extra["out_deg"]
        degs = out_deg[pgraph.partition_vertices[partition]]
        uniq, counts = np.unique(degs, return_counts=True)
        return uniq.astype(np.int64, copy=False), counts

    def reduce(self, key, values, state, emit):
        emit(key, sum(values))

    def reduce_array(self, keys, bounds, values, state):
        if keys.size == 0:
            return []
        # reduceat folds each segment sequentially; counts are exact ints
        totals = np.add.reduceat(values, bounds[:-1])
        return list(zip(keys.tolist(), totals.tolist()))

    def combine(self, key, values, state):
        return sum(values)

    def update(self, state, outputs):
        state.values.update(outputs)

    def finalize(self, state):
        return dict(state.values)
