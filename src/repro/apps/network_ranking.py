"""NR — network ranking (PageRank) in both primitives (Appendix D).

The paper's formula:
``PR(v) = (1-d)/N + d * (PR(t1)/C(t1) + ... + PR(tm)/C(tm))``
over in-neighbors ``t_i``, with damping ``d`` and no dangling-rank
redistribution.  Both implementations below reproduce
:func:`repro.graph.algorithms.pagerank` bit-for-float.

The propagation UDFs (Algorithm 1) are a handful of lines; the MapReduce
map (Algorithm 2) must hand-roll the per-partition partial-rank hash table
— the programmability gap Table 4 counts.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import VertexState
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp, fold_by_dest

__all__ = ["NetworkRankingPropagation", "NetworkRankingMapReduce"]


def _rank_state(pgraph) -> VertexState:
    n = pgraph.num_vertices
    state = VertexState(
        pgraph=pgraph,
        values=np.full(n, 1.0 / n) if n else np.zeros(0),
    )
    state.extra["out_deg"] = pgraph.graph.out_degrees()
    return state


class NetworkRankingPropagation(PropagationApp):
    """Propagation-based PageRank (Algorithm 1)."""

    name = "NR"
    is_associative = True
    combine_all_vertices = True
    merge_ufunc = np.add

    def __init__(self, damping: float = 0.85):
        self.damping = damping

    def setup(self, pgraph) -> VertexState:
        state = _rank_state(pgraph)
        # teleport term is iteration-invariant; combine() runs per vertex
        state.extra["teleport"] = (
            (1.0 - self.damping) / pgraph.num_vertices
            if pgraph.num_vertices else 0.0
        )
        return state

    def transfer(self, u, v, state):
        return self.damping * state.values[u] / state.extra["out_deg"][u]

    def transfer_array(self, src, dst, state):
        return self.damping * state.values[src] / state.extra["out_deg"][src]

    def combine(self, v, values, state):
        return state.extra["teleport"] + sum(values)

    def merge(self, a, b):
        return a + b

    def finalize(self, state):
        return state.values


class NetworkRankingMapReduce(MapReduceApp):
    """MapReduce-based PageRank (Algorithm 2).

    ``map`` scans a graph partition once, accumulating partial ranks in a
    hash table (the paper's in-map data reduction), then emits one pair
    per distinct destination.  Zero-contributions are emitted for the
    partition's own vertices so every vertex reaches ``reduce`` and
    receives its teleport term.

    With ``in_map_combining=False`` the map emits one raw pair per edge
    (plus a zero per partition vertex) and leaves the data reduction to
    the engine's map-side combiner — the Hadoop formulation Algorithm 2
    improves on; the combined shuffle is bit-identical to the in-map
    hash-table output, which makes the combiner's shuffle reduction
    directly measurable.
    """

    name = "NR"
    writeback_to_partitions = True
    combine_ufunc = np.add

    def __init__(self, damping: float = 0.85,
                 in_map_combining: bool = True):
        self.damping = damping
        self.in_map_combining = in_map_combining

    def setup(self, pgraph) -> VertexState:
        return _rank_state(pgraph)

    def map(self, partition, pgraph, state, emit):
        src, dst = pgraph.partition_edges(partition)
        out_deg = state.extra["out_deg"]
        if not self.in_map_combining:
            for u, v in zip(src, dst):
                emit(int(v), self.damping * state.values[u] / out_deg[u])
            for u in pgraph.partition_vertices[partition]:
                emit(int(u), 0.0)
            return
        rtable: dict[int, float] = {}
        for u, v in zip(src, dst):
            delta = self.damping * state.values[u] / out_deg[u]
            rtable[int(v)] = rtable.get(int(v), 0.0) + delta
        for u in pgraph.partition_vertices[partition]:
            u = int(u)
            if u not in rtable:
                rtable[u] = 0.0
        for v, partial in rtable.items():
            emit(v, partial)

    def map_array(self, partition, pgraph, state):
        src, dst = pgraph.partition_edges(partition)
        out_deg = state.extra["out_deg"]
        deltas = self.damping * state.values[src] / out_deg[src]
        own = pgraph.partition_vertices[partition].astype(
            np.int64, copy=False)
        if not self.in_map_combining:
            keys = np.concatenate((dst.astype(np.int64, copy=False), own))
            values = np.concatenate((deltas, np.zeros(own.size)))
            return keys, values
        if dst.size:
            uniq, merged, _ = fold_by_dest(
                dst.astype(np.int64, copy=False), deltas, np.add)
        else:
            uniq = np.empty(0, dtype=np.int64)
            merged = np.empty(0)
        # uniq is sorted: membership test via binary search
        if uniq.size:
            pos = np.minimum(np.searchsorted(uniq, own), uniq.size - 1)
            missing = own[uniq[pos] != own]
        else:
            missing = own
        keys = np.concatenate((uniq, missing))
        values = np.concatenate((merged, np.zeros(missing.size)))
        return keys, values

    def reduce(self, key, values, state, emit):
        rank = (1.0 - self.damping) / state.num_vertices + sum(values)
        emit(key, rank)

    def reduce_array(self, keys, bounds, values, state):
        if keys.size == 0:
            return []
        gids = np.repeat(np.arange(keys.size), np.diff(bounds))
        # bincount accumulates in input order: 0.0 + v1 + v2 + ...,
        # matching the scalar sum() fold bit for bit
        totals = np.bincount(gids, weights=values, minlength=keys.size)
        ranks = (1.0 - self.damping) / state.num_vertices + totals
        return list(zip(keys.tolist(), ranks.tolist()))

    def combine(self, key, values, state):
        return sum(values)

    def finalize(self, state):
        return state.values
