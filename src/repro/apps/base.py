"""Shared state containers and helpers for the applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.partitioned import PartitionedGraph

__all__ = ["VertexState", "sample_mask", "undirected_neighbor_sets"]


@dataclass
class VertexState:
    """Generic per-vertex state: a values container plus app extras."""

    pgraph: PartitionedGraph
    values: Any
    extra: dict = field(default_factory=dict)

    @property
    def graph(self):
        return self.pgraph.graph

    @property
    def num_vertices(self) -> int:
        return self.pgraph.num_vertices


def sample_mask(num_vertices: int, ratio: float, seed: int = 0) -> np.ndarray:
    """Deterministic vertex sample of approximately ``ratio`` fraction.

    TC and TFL run on a 10 % vertex sample in the paper; the mask is a
    seeded hash so every engine and optimization level sees the same
    subset.
    """
    if ratio >= 1.0:
        return np.ones(num_vertices, dtype=bool)
    if ratio <= 0.0:
        return np.zeros(num_vertices, dtype=bool)
    ids = np.arange(num_vertices, dtype=np.uint64)
    hashed = ((ids + np.uint64(seed)) * np.uint64(2654435761)) & np.uint64(
        0xFFFFFFFF
    )
    return hashed < np.uint64(int(ratio * 0xFFFFFFFF))


def undirected_neighbor_sets(graph) -> list[set[int]]:
    """Per-vertex undirected neighbor sets (for triangle counting)."""
    indptr, indices, _ = graph.to_undirected()
    return [
        set(int(w) for w in indices[indptr[v]: indptr[v + 1]])
        for v in range(graph.num_vertices)
    ]
