"""HADI-style diameter estimation with Flajolet–Martin sketches.

The paper cites HADI [12] — "fast diameter estimation and mining in
massive graphs with Hadoop" — as the canonical batch graph job of its
era.  This extension app reproduces HADI's algorithm on Surfer's
propagation primitive:

* each vertex starts with ``K`` Flajolet–Martin bitmasks seeded by
  hashing its id;
* every iteration each vertex ORs in its in-neighbors' masks, so after
  ``h`` iterations vertex ``v``'s masks sketch the set of vertices that
  reach ``v`` within ``h`` hops;
* the *neighborhood function* ``N(h)`` — the total number of reachable
  pairs within ``h`` hops — is estimated from the masks; the effective
  diameter is the smallest ``h`` with ``N(h) >= 0.9 * N(inf)``.

OR is associative, so local combination kicks in; convergence (no mask
changed) ends the iteration — both Surfer features in one app.  Deploy on
``graph.symmetrized()`` for the undirected diameter.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import VertexState
from repro.propagation.api import PropagationApp

__all__ = ["DiameterEstimationPropagation", "fm_estimate",
           "neighborhood_function_exact", "effective_diameter"]

#: magic constant of the Flajolet-Martin estimator
_FM_PHI = 0.77351
_MASK_BITS = 32


def _fm_seed_masks(num_vertices: int, num_masks: int,
                   seed: int) -> np.ndarray:
    """One FM bitmask per (vertex, copy): a single geometric bit set."""
    rng = np.random.default_rng(seed)
    # P(bit = b) = 2^-(b+1)
    bits = rng.geometric(0.5, size=(num_vertices, num_masks)) - 1
    bits = np.minimum(bits, _MASK_BITS - 1)
    return (np.int64(1) << bits.astype(np.int64))


def fm_estimate(masks) -> float:
    """Estimated set cardinality from ``K`` FM bitmasks."""
    masks = np.asarray(masks, dtype=np.int64).reshape(-1)
    lowest_zero = []
    for mask in masks:
        b = 0
        while mask & (np.int64(1) << np.int64(b)):
            b += 1
        lowest_zero.append(b)
    return float(2.0 ** np.mean(lowest_zero)) / _FM_PHI


def neighborhood_function_exact(graph, max_hops: int) -> list[int]:
    """Oracle: exact ``N(h)`` by BFS from every vertex (small graphs)."""
    from repro.graph.algorithms import bfs_levels

    totals = [0] * (max_hops + 1)
    for source in range(graph.num_vertices):
        dist = bfs_levels(graph, source)
        for h in range(max_hops + 1):
            totals[h] += int(np.count_nonzero((dist >= 0) & (dist <= h)))
    return totals


def effective_diameter(n_of_h: list[float], quantile: float = 0.9) -> int:
    """Smallest ``h`` whose ``N(h)`` reaches ``quantile`` of the plateau."""
    if not n_of_h:
        return 0
    target = quantile * n_of_h[-1]
    for h, value in enumerate(n_of_h):
        if value >= target:
            return h
    return len(n_of_h) - 1


class DiameterEstimationPropagation(PropagationApp):
    """HADI on propagation: FM-mask OR-ing with convergence detection."""

    name = "DIAM"
    is_associative = True
    combine_all_vertices = False

    def __init__(self, num_masks: int = 8, seed: int = 17):
        self.num_masks = num_masks
        self.seed = seed

    def setup(self, pgraph) -> VertexState:
        masks = _fm_seed_masks(pgraph.num_vertices, self.num_masks,
                               self.seed)
        state = VertexState(pgraph=pgraph, values=masks)
        state.extra["changed"] = pgraph.num_vertices
        state.extra["n_of_h"] = [self._estimate_total(masks)]
        return state

    def _estimate_total(self, masks: np.ndarray) -> float:
        return float(sum(fm_estimate(masks[v])
                         for v in range(masks.shape[0])))

    def transfer(self, u, v, state):
        return tuple(int(m) for m in state.values[u])

    def combine(self, v, values, state):
        merged = np.array(state.values[v], dtype=np.int64)
        for masks in values:
            merged |= np.array(masks, dtype=np.int64)
        return tuple(int(m) for m in merged)

    def merge(self, a, b):
        return tuple(x | y for x, y in zip(a, b))

    def value_nbytes(self, value):
        return 8.0 * len(value)

    def update(self, state, combined):
        changed = 0
        for v, masks in combined.items():
            new = np.array(masks, dtype=np.int64)
            if not np.array_equal(new, state.values[v]):
                state.values[v] = new
                changed += 1
        state.extra["changed"] = changed
        state.extra["n_of_h"].append(self._estimate_total(state.values))

    def converged(self, state) -> bool:
        return state.extra["changed"] == 0

    def finalize(self, state):
        n_of_h = state.extra["n_of_h"]
        return {
            "neighborhood_function": n_of_h,
            "effective_diameter": effective_diameter(n_of_h),
        }
