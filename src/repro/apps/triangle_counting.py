"""TC — triangle counting (Appendix D) in both primitives.

A triangle is three vertices pairwise connected (either direction).  Each
selected vertex ships its undirected neighbor list along its out-edges;
the receiver intersects the arrived list with its own.  Each triangle is
discovered once per connected vertex pair — exactly three times — so the
global count is the sum of pair discoveries divided by three.  Receiving
both directions of a mutual edge would double-count a pair, so the
receiver only counts a source it cannot itself reach, or the smaller id on
mutual edges.

With ``select_ratio < 1`` the count covers triangles whose *shipping pair*
is selected (the paper samples 10 % of vertices).  Tests use ratio 1.0 and
compare against the exact oracle.
"""

from __future__ import annotations

from repro.apps.base import VertexState, sample_mask, undirected_neighbor_sets
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp

__all__ = ["TriangleCountingPropagation", "TriangleCountingMapReduce"]


def _tc_state(pgraph, select_ratio: float, seed: int) -> VertexState:
    state = VertexState(pgraph=pgraph, values={})
    state.extra["neighbor_sets"] = undirected_neighbor_sets(pgraph.graph)
    state.extra["selected"] = sample_mask(
        pgraph.num_vertices, select_ratio, seed
    )
    return state


def _count_pair(v: int, u: int, u_list, state) -> int:
    """Triangles discovered at ``v`` from ``u``'s neighbor list.

    Counts only when the pair ``{u, v}`` is examined at this endpoint:
    always when ``v`` cannot reach ``u`` itself (one-way edge), and at the
    larger endpoint on mutual edges.
    """
    sets = state.extra["neighbor_sets"]
    if v < u and u in _out_sets(state)[v]:
        return 0  # mutual edge: the larger endpoint examines this pair
    common = sets[v].intersection(u_list)
    common.discard(u)
    common.discard(v)
    return len(common)


def _out_sets(state) -> list[set[int]]:
    cached = state.extra.get("out_sets")
    if cached is None:
        graph = state.graph
        cached = [
            set(int(w) for w in graph.out_neighbors(v))
            for v in range(graph.num_vertices)
        ]
        state.extra["out_sets"] = cached
    return cached


class TriangleCountingPropagation(PropagationApp):
    """Propagation-based triangle counting (Algorithm 3)."""

    name = "TC"
    is_associative = False

    def __init__(self, select_ratio: float = 1.0, seed: int = 11):
        self.select_ratio = select_ratio
        self.seed = seed

    def setup(self, pgraph) -> VertexState:
        return _tc_state(pgraph, self.select_ratio, self.seed)

    def select(self, u, state):
        return bool(state.extra["selected"][u])

    def transfer(self, u, v, state):
        if not state.extra["selected"][v]:
            return None
        return (u, tuple(sorted(state.extra["neighbor_sets"][u])))

    def combine(self, v, values, state):
        count = 0
        seen: set[int] = set()
        for u, u_list in values:
            if u in seen:
                continue
            seen.add(u)
            count += _count_pair(v, u, u_list, state)
        return count or None

    def value_nbytes(self, value):
        __, u_list = value
        return 8.0 * (1 + len(u_list))

    def update(self, state, combined):
        state.values.update(combined)

    def finalize(self, state):
        return sum(state.values.values()) // 3


class TriangleCountingMapReduce(MapReduceApp):
    """MapReduce-based triangle counting.

    ``map`` emits each selected source's neighbor list keyed by every
    selected out-neighbor; ``reduce`` intersects per destination.
    """

    name = "TC"

    def __init__(self, select_ratio: float = 1.0, seed: int = 11):
        self.select_ratio = select_ratio
        self.seed = seed

    def setup(self, pgraph) -> VertexState:
        return _tc_state(pgraph, self.select_ratio, self.seed)

    def map(self, partition, pgraph, state, emit):
        selected = state.extra["selected"]
        sets = state.extra["neighbor_sets"]
        src, dst = pgraph.partition_edges(partition)
        for u, v in zip(src, dst):
            u, v = int(u), int(v)
            if selected[u] and selected[v]:
                emit(v, (u, tuple(sorted(sets[u]))))

    def reduce(self, key, values, state, emit):
        count = 0
        seen: set[int] = set()
        for u, u_list in values:
            if u in seen:
                continue
            seen.add(u)
            count += _count_pair(key, u, u_list, state)
        if count:
            emit(key, count)

    def value_nbytes(self, value):
        __, u_list = value
        return 8.0 * (1 + len(u_list))

    def output_nbytes(self, key, value):
        return 16.0  # (vertex, count) record

    def update(self, state, outputs):
        state.values.update(outputs)

    def finalize(self, state):
        return sum(state.values.values()) // 3
