"""TFL — two-hop friend lists (Appendix D) in both primitives.

Each selected vertex pushes its out-neighbor list to each of its
out-neighbors; a vertex's two-hop friend list is the deduplicated union of
the lists it receives, i.e. the people its in-neighbors point to.  The
per-vertex oracle is :func:`repro.graph.algorithms.two_hop_neighbors`.

Neighbor lists make the intermediate data enormous — the paper's TFL is
its most network-intensive workload (2.9 TB at O1, Table 3) and the one
local combination helps most, since lists destined for the same remote
vertex deduplicate before crossing the network.
"""

from __future__ import annotations

from repro.apps.base import VertexState, sample_mask
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp

__all__ = ["TwoHopFriendsPropagation", "TwoHopFriendsMapReduce"]


def _tfl_state(pgraph, select_ratio: float, seed: int) -> VertexState:
    state = VertexState(pgraph=pgraph, values={})
    state.extra["selected"] = sample_mask(
        pgraph.num_vertices, select_ratio, seed
    )
    return state


class TwoHopFriendsPropagation(PropagationApp):
    """Propagation-based two-hop friend lists."""

    name = "TFL"
    is_associative = True

    def __init__(self, select_ratio: float = 1.0, seed: int = 13):
        self.select_ratio = select_ratio
        self.seed = seed

    def setup(self, pgraph) -> VertexState:
        return _tfl_state(pgraph, self.select_ratio, self.seed)

    def select(self, u, state):
        return bool(state.extra["selected"][u])

    def transfer(self, u, v, state):
        return frozenset(int(w) for w in state.graph.out_neighbors(u))

    def combine(self, v, values, state):
        return frozenset().union(*values) if values else None

    def merge(self, a, b):
        return a | b

    def value_nbytes(self, value):
        return 8.0 * max(1, len(value))

    def result_nbytes(self, v, value):
        return 12.0 + 8.0 * len(value)

    def update(self, state, combined):
        state.values.update(combined)

    def finalize(self, state):
        return {v: set(friends) for v, friends in state.values.items()}


class TwoHopFriendsMapReduce(MapReduceApp):
    """MapReduce-based two-hop friend lists."""

    name = "TFL"

    def __init__(self, select_ratio: float = 1.0, seed: int = 13):
        self.select_ratio = select_ratio
        self.seed = seed

    def setup(self, pgraph) -> VertexState:
        return _tfl_state(pgraph, self.select_ratio, self.seed)

    def map(self, partition, pgraph, state, emit):
        selected = state.extra["selected"]
        graph = pgraph.graph
        for u in pgraph.partition_vertices[partition]:
            u = int(u)
            if not selected[u]:
                continue
            friends = tuple(int(w) for w in graph.out_neighbors(u))
            for v in friends:
                emit(v, friends)

    def reduce(self, key, values, state, emit):
        emit(key, frozenset(w for friends in values for w in friends))

    def value_nbytes(self, value):
        return 8.0 * max(1, len(value))

    def output_nbytes(self, key, value):
        return 12.0 + 8.0 * len(value)

    def update(self, state, outputs):
        state.values.update(outputs)

    def finalize(self, state):
        return {v: set(friends) for v, friends in state.values.items()}
