"""Traversal applications on the sparse-frontier propagation mode.

Four workloads from the distributed-graph-algorithms survey, each
maintaining an explicit active set (``uses_frontier = True``) so the
engine's frontier mode scans only the vertices that changed last
iteration:

* **BFS** — level-synchronous breadth-first search from one source;
* **SSSP** — Bellman–Ford shortest paths over deterministic integer
  pseudo-weights (positive, derived by a seedless mix of the edge's
  endpoint ids so every engine and path sees identical weights);
* **KCORE** — k-core decomposition by iterated h-index refinement
  (Montresor et al.): every vertex repeatedly lowers its coreness
  estimate to the h-index of its neighbors' estimates; deploy on
  ``graph.symmetrized()``;
* **DPR** — delta-PageRank: only vertices whose rank changed by more
  than the tolerance propagate their delta, so the convergent tail
  ships a vanishing fraction of dense-NR's messages.

All four follow the PR 2 discipline: the scalar ``transfer``/``combine``
path is the oracle and the ``*_array`` fast path is bit-identical to it
(checked by tests/test_frontier_traversal.py).  ``select`` always agrees
with the ``frontier()`` mask — the frontier contract — so frontier and
dense runs emit identical messages.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.apps.base import VertexState
from repro.propagation.api import PropagationApp

__all__ = [
    "BreadthFirstSearchPropagation",
    "ShortestPathsPropagation",
    "KCoreDecompositionPropagation",
    "DeltaPageRankPropagation",
    "edge_weight",
    "edge_weight_array",
    "h_index",
]


# -- deterministic pseudo-weights for SSSP ------------------------------
_W_MULT = np.uint64(0x9E3779B97F4A7C15)
_W_MIX = np.uint64(0xC2B2AE3D27D4EB4F)
_W_SHIFT = np.uint64(33)
_W_RANGE = np.uint64(15)


def edge_weight_array(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Deterministic positive integer weight per edge, in ``1..16``.

    A seedless multiplicative mix of the endpoint ids in wrapping
    ``uint64`` arithmetic — no RNG, no hash salt, identical on every
    engine, path and process.
    """
    h = (src.astype(np.uint64) + np.uint64(1)) * _W_MULT
    h = h + (dst.astype(np.uint64) + np.uint64(1)) * _W_MIX
    h = h ^ (h >> _W_SHIFT)
    return (h & _W_RANGE).astype(np.int64) + 1


def edge_weight(u: int, v: int) -> int:
    """Scalar twin of :func:`edge_weight_array` (bit-identical by
    construction: it *is* the array version on singleton inputs)."""
    return int(edge_weight_array(
        np.array([u], dtype=np.int64), np.array([v], dtype=np.int64))[0])


def h_index(values: Any) -> int:
    """Largest ``h`` such that ``h`` of the values are ``>= h``."""
    arr = np.sort(np.asarray(values, dtype=np.int64))[::-1]
    h = 0
    for i in range(arr.size):
        if int(arr[i]) >= i + 1:
            h = i + 1
        else:
            break
    return h


def _frontier_state(pgraph: Any, values: np.ndarray,
                    active: np.ndarray) -> VertexState:
    state = VertexState(pgraph=pgraph, values=values)
    state.extra["active"] = active
    state.extra["changed"] = int(active.sum())
    return state


class BreadthFirstSearchPropagation(PropagationApp):
    """Level-synchronous BFS: hop distance from ``source``, -1 unreached.

    The frontier is the set of vertices whose distance improved last
    iteration; each frontier vertex offers ``dist + 1`` to its
    out-neighbors, and a vertex adopts the smallest offer that improves
    on its current distance.
    """

    name = "BFS"
    is_associative = True
    uses_frontier = True
    merge_ufunc = np.minimum

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def setup(self, pgraph: Any) -> VertexState:
        n = pgraph.num_vertices
        dist = -np.ones(n, dtype=np.int64)
        active = np.zeros(n, dtype=bool)
        if n:
            dist[self.source] = 0
            active[self.source] = True
        return _frontier_state(pgraph, dist, active)

    def frontier(self, state: Any) -> np.ndarray:
        return state.extra["active"]

    def select(self, u: int, state: Any) -> bool:
        return bool(state.extra["active"][u])

    def select_array(self, vertices: np.ndarray,
                     state: Any) -> np.ndarray:
        return state.extra["active"][vertices]

    def transfer(self, u: int, v: int, state: Any) -> int:
        return int(state.values[u]) + 1

    def transfer_array(self, src: np.ndarray, dst: np.ndarray,
                       state: Any) -> np.ndarray:
        return state.values[src] + 1

    def combine(self, v: int, values: list, state: Any) -> int:
        return min(values)

    def merge(self, a: int, b: int) -> int:
        return a if a <= b else b

    def update(self, state: Any, combined: dict) -> None:
        dist = state.values
        active = np.zeros(dist.shape[0], dtype=bool)
        changed = 0
        for v, d in combined.items():
            if dist[v] < 0 or d < dist[v]:
                dist[v] = d
                active[v] = True
                changed += 1
        state.extra["active"] = active
        state.extra["changed"] = changed

    def converged(self, state: Any) -> bool:
        return state.extra["changed"] == 0

    def finalize(self, state: Any) -> np.ndarray:
        return state.values.copy()


class ShortestPathsPropagation(BreadthFirstSearchPropagation):
    """Bellman–Ford SSSP over the deterministic pseudo-weights.

    Identical relaxation scheme to BFS with per-edge weights instead of
    the constant 1; converges once no distance improves (positive
    weights bound the rounds by the longest shortest-path hop count).
    """

    name = "SSSP"

    def transfer(self, u: int, v: int, state: Any) -> int:
        return int(state.values[u]) + edge_weight(u, v)

    def transfer_array(self, src: np.ndarray, dst: np.ndarray,
                       state: Any) -> np.ndarray:
        return state.values[src] + edge_weight_array(src, dst)


class KCoreDecompositionPropagation(PropagationApp):
    """K-core decomposition by iterated h-index refinement.

    Deploy on ``graph.symmetrized()``.  Every vertex starts at its
    (undirected) degree and repeatedly lowers its estimate to the
    h-index of its neighbors' current estimates — the fixed point is the
    coreness (Montresor et al., *Distributed k-Core Decomposition*).
    ``combine`` recomputes the estimate from the neighbors' values in
    ``state`` and ignores the message payloads, so it is trivially
    order-insensitive; the messages only mark *which* vertices must
    recompute.
    """

    name = "KCORE"
    is_associative = True
    uses_frontier = True
    merge_ufunc = np.minimum

    def setup(self, pgraph: Any) -> VertexState:
        est = pgraph.graph.out_degrees().astype(np.int64).copy()
        active = np.ones(pgraph.num_vertices, dtype=bool)
        return _frontier_state(pgraph, est, active)

    def frontier(self, state: Any) -> np.ndarray:
        return state.extra["active"]

    def select(self, u: int, state: Any) -> bool:
        return bool(state.extra["active"][u])

    def select_array(self, vertices: np.ndarray,
                     state: Any) -> np.ndarray:
        return state.extra["active"][vertices]

    def transfer(self, u: int, v: int, state: Any) -> int:
        return int(state.values[u])

    def transfer_array(self, src: np.ndarray, dst: np.ndarray,
                       state: Any) -> np.ndarray:
        return state.values[src]

    def combine(self, v: int, values: list, state: Any) -> int:
        est = state.values
        neighbor_est = est[state.graph.out_neighbors(v)]
        return min(int(est[v]), h_index(neighbor_est))

    def merge(self, a: int, b: int) -> int:
        return a if a <= b else b

    def update(self, state: Any, combined: dict) -> None:
        est = state.values
        active = np.zeros(est.shape[0], dtype=bool)
        changed = 0
        for v, e in combined.items():
            if e < est[v]:
                est[v] = e
                active[v] = True
                changed += 1
        state.extra["active"] = active
        state.extra["changed"] = changed

    def converged(self, state: Any) -> bool:
        return state.extra["changed"] == 0

    def finalize(self, state: Any) -> np.ndarray:
        return state.values.copy()


class DeltaPageRankPropagation(PropagationApp):
    """Delta-PageRank: propagate rank *changes*, not whole ranks.

    Every vertex accumulates ``rank = sum of arrived deltas`` starting
    from the uniform base ``(1-d)/n``; a vertex stays in the frontier
    only while its last delta exceeds ``tolerance``.  The fixed point is
    the power-series PageRank with the paper's ``dangling='self'``
    semantics (no redistribution), so the :func:`repro.graph.algorithms.
    pagerank` oracle matches to within the tolerance.  Dense NR ships
    every edge every iteration; the delta formulation ships only the
    shrinking frontier's edges — the convergent-tail saving the bench
    config ``delta_pr.toml`` records.
    """

    name = "DPR"
    is_associative = True
    uses_frontier = True
    merge_ufunc = np.add

    def __init__(self, damping: float = 0.85,
                 tolerance: float = 1e-6) -> None:
        self.damping = damping
        self.tolerance = tolerance

    def setup(self, pgraph: Any) -> VertexState:
        n = pgraph.num_vertices
        base = (1.0 - self.damping) / n if n else 0.0
        rank = np.full(n, base)
        state = VertexState(pgraph=pgraph, values=rank)
        state.extra["delta"] = np.full(n, base)
        state.extra["out_deg"] = (
            pgraph.graph.out_degrees().astype(np.float64))
        active = np.abs(state.extra["delta"]) > self.tolerance
        state.extra["active"] = active
        state.extra["changed"] = int(active.sum())
        return state

    def frontier(self, state: Any) -> np.ndarray:
        return state.extra["active"]

    def select(self, u: int, state: Any) -> bool:
        return bool(state.extra["active"][u])

    def select_array(self, vertices: np.ndarray,
                     state: Any) -> np.ndarray:
        return state.extra["active"][vertices]

    def transfer(self, u: int, v: int, state: Any) -> float:
        return (self.damping * float(state.extra["delta"][u])
                / float(state.extra["out_deg"][u]))

    def transfer_array(self, src: np.ndarray, dst: np.ndarray,
                       state: Any) -> np.ndarray:
        # same IEEE operation order as the scalar path: (d * delta) / deg
        return ((self.damping * state.extra["delta"][src])
                / state.extra["out_deg"][src])

    def combine(self, v: int, values: list, state: Any) -> float:
        acc = 0.0
        for value in values:
            acc = acc + value
        return acc

    def merge(self, a: float, b: float) -> float:
        return a + b

    def update(self, state: Any, combined: dict) -> None:
        rank = state.values
        delta = state.extra["delta"]
        delta[:] = 0.0
        active = np.zeros(rank.shape[0], dtype=bool)
        changed = 0
        for v, d in combined.items():
            rank[v] += d
            delta[v] = d
            if abs(d) > self.tolerance:
                active[v] = True
                changed += 1
        state.extra["active"] = active
        state.extra["changed"] = changed

    def converged(self, state: Any) -> bool:
        return state.extra["changed"] == 0

    def finalize(self, state: Any) -> np.ndarray:
        return state.values.copy()
