"""CC — connected components via label propagation (extension app).

Weakly connected components is the other canonical batch graph job of the
Pregel/PEGASUS era (the paper cites PEGASUS, whose GIM-V showcase is
exactly this).  Each vertex holds a component label (initially its own
id); every iteration it broadcasts its label along *both* edge directions
and keeps the minimum it has seen.  The iteration converges when no label
changes — the natural demonstration of Surfer's multi-iteration /
convergence API.

Implemented in both primitives like the paper's six applications; the
oracle is :func:`repro.graph.algorithms.weakly_connected_components`.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import VertexState
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp

__all__ = ["ConnectedComponentsPropagation", "ConnectedComponentsMapReduce",
           "canonical_labels"]


def canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber component labels to 0..k-1 in order of first appearance."""
    mapping: dict[int, int] = {}
    out = np.zeros_like(labels)
    for i, label in enumerate(labels):
        key = int(label)
        if key not in mapping:
            mapping[key] = len(mapping)
        out[i] = mapping[key]
    return out


def _cc_state(pgraph) -> VertexState:
    n = pgraph.num_vertices
    state = VertexState(pgraph=pgraph,
                        values=np.arange(n, dtype=np.int64))
    state.extra["changed"] = n  # everything "changed" before iteration 1
    return state


class ConnectedComponentsPropagation(PropagationApp):
    """Classic min-label push.

    Labels must be able to flow against edge direction, so deploy this on
    ``graph.symmetrized()`` — the natural input for an undirected
    notion of connectivity.
    """

    name = "CC"
    is_associative = True
    combine_all_vertices = True
    merge_ufunc = np.minimum

    def setup(self, pgraph) -> VertexState:
        return _cc_state(pgraph)

    def transfer(self, u, v, state):
        return int(state.values[u])

    def transfer_array(self, src, dst, state):
        return state.values[src]

    def combine(self, v, values, state):
        return int(min([state.values[v], *values]))

    def merge(self, a, b):
        return a if a < b else b

    def update(self, state, combined):
        changed = 0
        for v, label in combined.items():
            if state.values[v] != label:
                state.values[v] = label
                changed += 1
        state.extra["changed"] = changed

    def converged(self, state) -> bool:
        """True once an iteration changed no label."""
        return state.extra["changed"] == 0

    def finalize(self, state):
        return canonical_labels(state.values)


class ConnectedComponentsMapReduce(MapReduceApp):
    """The MapReduce counterpart: emit pair-minimum labels both ways."""

    name = "CC"
    writeback_to_partitions = True

    def setup(self, pgraph) -> VertexState:
        return _cc_state(pgraph)

    def map(self, partition, pgraph, state, emit):
        table: dict[int, int] = {}
        src, dst = pgraph.partition_edges(partition)
        for u, v in zip(src, dst):
            low = int(min(state.values[u], state.values[v]))
            for w in (int(u), int(v)):
                if low < table.get(w, w + 10**18):
                    table[w] = low
        for v, label in table.items():
            emit(v, label)

    def reduce(self, key, values, state, emit):
        emit(key, int(min([state.values[key], *values])))

    def update(self, state, outputs):
        changed = 0
        for v, label in outputs.items():
            if state.values[v] != label:
                state.values[v] = label
                changed += 1
        state.extra["changed"] = changed

    def converged(self, state) -> bool:
        return state.extra["changed"] == 0

    def finalize(self, state):
        return canonical_labels(state.values)
