"""The paper's six applications, each in both primitives.

``APP_REGISTRY`` maps the paper's short names to ``(propagation class,
mapreduce class, default iterations)``; the benchmark harness iterates it
to regenerate Tables 2–4 and Figure 7.
"""

from repro.apps.base import VertexState, sample_mask, undirected_neighbor_sets
from repro.apps.network_ranking import (
    NetworkRankingMapReduce,
    NetworkRankingPropagation,
)
from repro.apps.recommender import (
    RecommenderMapReduce,
    RecommenderPropagation,
    accepts,
)
from repro.apps.triangle_counting import (
    TriangleCountingMapReduce,
    TriangleCountingPropagation,
)
from repro.apps.degree_distribution import (
    DegreeDistributionMapReduce,
    DegreeDistributionPropagation,
)
from repro.apps.reverse_link_graph import (
    ReverseLinkGraphMapReduce,
    ReverseLinkGraphPropagation,
    reversed_graph_from_lists,
)
from repro.apps.two_hop_friends import (
    TwoHopFriendsMapReduce,
    TwoHopFriendsPropagation,
)
from repro.apps.connected_components import (
    ConnectedComponentsMapReduce,
    ConnectedComponentsPropagation,
    canonical_labels,
)
from repro.apps.diameter import (
    DiameterEstimationPropagation,
    effective_diameter,
    fm_estimate,
    neighborhood_function_exact,
)
from repro.apps.traversal import (
    BreadthFirstSearchPropagation,
    DeltaPageRankPropagation,
    KCoreDecompositionPropagation,
    ShortestPathsPropagation,
    edge_weight,
    edge_weight_array,
    h_index,
)

#: name -> (propagation app class, mapreduce app class, default iterations)
APP_REGISTRY = {
    "VDD": (DegreeDistributionPropagation, DegreeDistributionMapReduce, 1),
    "RS": (RecommenderPropagation, RecommenderMapReduce, 2),
    "NR": (NetworkRankingPropagation, NetworkRankingMapReduce, 1),
    "RLG": (ReverseLinkGraphPropagation, ReverseLinkGraphMapReduce, 1),
    "TC": (TriangleCountingPropagation, TriangleCountingMapReduce, 1),
    "TFL": (TwoHopFriendsPropagation, TwoHopFriendsMapReduce, 1),
}

APP_ORDER = ("VDD", "RS", "NR", "RLG", "TC", "TFL")

#: extension applications beyond the paper's six (see DESIGN.md section 6)
EXTENSION_APPS = {
    "CC": (ConnectedComponentsPropagation, ConnectedComponentsMapReduce),
    "DIAM": (DiameterEstimationPropagation, None),
    # traversal suite (frontier-capable, propagation only)
    "BFS": (BreadthFirstSearchPropagation, None),
    "SSSP": (ShortestPathsPropagation, None),
    "KCORE": (KCoreDecompositionPropagation, None),
    "DPR": (DeltaPageRankPropagation, None),
}

__all__ = [
    "VertexState",
    "sample_mask",
    "undirected_neighbor_sets",
    "NetworkRankingMapReduce",
    "NetworkRankingPropagation",
    "RecommenderMapReduce",
    "RecommenderPropagation",
    "accepts",
    "TriangleCountingMapReduce",
    "TriangleCountingPropagation",
    "DegreeDistributionMapReduce",
    "DegreeDistributionPropagation",
    "ReverseLinkGraphMapReduce",
    "ReverseLinkGraphPropagation",
    "reversed_graph_from_lists",
    "TwoHopFriendsMapReduce",
    "TwoHopFriendsPropagation",
    "APP_REGISTRY",
    "APP_ORDER",
    "EXTENSION_APPS",
    "ConnectedComponentsMapReduce",
    "ConnectedComponentsPropagation",
    "canonical_labels",
    "DiameterEstimationPropagation",
    "effective_diameter",
    "fm_estimate",
    "neighborhood_function_exact",
    "BreadthFirstSearchPropagation",
    "ShortestPathsPropagation",
    "KCoreDecompositionPropagation",
    "DeltaPageRankPropagation",
    "edge_weight",
    "edge_weight_array",
    "h_index",
]
