"""RLG — reverse link graph (Appendix D) in both primitives.

Reverses every edge and stores the reversed graph as adjacency lists:
vertex ``v`` collects the sources of all its incoming edges.  Equivalent
to :meth:`repro.graph.digraph.Graph.reverse`, which the tests use as the
oracle.
"""

from __future__ import annotations

from repro.apps.base import VertexState
from repro.graph.digraph import Graph
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp

__all__ = ["ReverseLinkGraphPropagation", "ReverseLinkGraphMapReduce",
           "reversed_graph_from_lists"]


def reversed_graph_from_lists(lists: dict, num_vertices: int) -> Graph:
    """Assemble the reversed :class:`Graph` from per-vertex source lists."""
    edges = [
        (v, u) for v, sources in lists.items() for u in sources
    ]
    return Graph.from_edges(edges, num_vertices=num_vertices, dedup=True)


class ReverseLinkGraphPropagation(PropagationApp):
    """Propagation-based edge reversal."""

    name = "RLG"
    is_associative = True

    def setup(self, pgraph) -> VertexState:
        return VertexState(pgraph=pgraph, values={})

    def transfer(self, u, v, state):
        return (u,)

    def combine(self, v, values, state):
        return tuple(sorted(set(u for vs in values for u in vs)))

    def merge(self, a, b):
        return a + b

    def value_nbytes(self, value):
        return 8.0 * len(value)

    def result_nbytes(self, v, value):
        return 12.0 + 8.0 * len(value)

    def update(self, state, combined):
        state.values.update(combined)

    def finalize(self, state):
        return reversed_graph_from_lists(
            state.values, state.num_vertices
        )


class ReverseLinkGraphMapReduce(MapReduceApp):
    """MapReduce-based edge reversal with per-partition dedup."""

    name = "RLG"

    def setup(self, pgraph) -> VertexState:
        return VertexState(pgraph=pgraph, values={})

    def map(self, partition, pgraph, state, emit):
        src, dst = pgraph.partition_edges(partition)
        for u, v in zip(src, dst):
            emit(int(v), int(u))

    def reduce(self, key, values, state, emit):
        emit(key, tuple(sorted(set(values))))

    def output_nbytes(self, key, value):
        return 12.0 + 8.0 * len(value)

    def update(self, state, outputs):
        state.values.update(outputs)

    def finalize(self, state):
        return reversed_graph_from_lists(
            state.values, state.num_vertices
        )
