"""RLG — reverse link graph (Appendix D) in both primitives.

Reverses every edge and stores the reversed graph as adjacency lists:
vertex ``v`` collects the sources of all its incoming edges.  Equivalent
to :meth:`repro.graph.digraph.Graph.reverse`, which the tests use as the
oracle.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import VertexState
from repro.graph.digraph import Graph
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp

__all__ = ["ReverseLinkGraphPropagation", "ReverseLinkGraphMapReduce",
           "reversed_graph_from_lists"]


def reversed_graph_from_lists(lists: dict, num_vertices: int) -> Graph:
    """Assemble the reversed :class:`Graph` from per-vertex source lists."""
    edges = [
        (v, u) for v, sources in lists.items() for u in sources
    ]
    return Graph.from_edges(edges, num_vertices=num_vertices, dedup=True)


class ReverseLinkGraphPropagation(PropagationApp):
    """Propagation-based edge reversal."""

    name = "RLG"
    is_associative = True

    def setup(self, pgraph) -> VertexState:
        return VertexState(pgraph=pgraph, values={})

    def transfer(self, u, v, state):
        return (u,)

    def combine(self, v, values, state):
        return tuple(sorted(set(u for vs in values for u in vs)))

    def merge(self, a, b):
        return a + b

    def value_nbytes(self, value):
        return 8.0 * len(value)

    def result_nbytes(self, v, value):
        return 12.0 + 8.0 * len(value)

    def update(self, state, combined):
        state.values.update(combined)

    def finalize(self, state):
        return reversed_graph_from_lists(
            state.values, state.num_vertices
        )


class ReverseLinkGraphMapReduce(MapReduceApp):
    """MapReduce-based edge reversal with per-partition dedup."""

    name = "RLG"

    def setup(self, pgraph) -> VertexState:
        return VertexState(pgraph=pgraph, values={})

    def map(self, partition, pgraph, state, emit):
        src, dst = pgraph.partition_edges(partition)
        for u, v in zip(src, dst):
            emit(int(v), int(u))

    def map_array(self, partition, pgraph, state):
        src, dst = pgraph.partition_edges(partition)
        return (dst.astype(np.int64, copy=False),
                src.astype(np.int64, copy=False))

    def reduce(self, key, values, state, emit):
        emit(key, tuple(sorted(set(values))))

    def reduce_array(self, keys, bounds, values, state):
        # no combiner possible here (bags don't fold to one value), but
        # the dedup+sort reduce vectorizes: one lexsort over (key, src)
        # then a per-group slice — tuple(sorted(set(bag))) exactly.
        if keys.size == 0:
            return []
        counts = np.diff(bounds)
        gids = np.repeat(np.arange(keys.size, dtype=np.int64), counts)
        order = np.lexsort((values, gids))
        sv = values[order]
        sg = gids[order]
        keep = np.empty(sv.size, dtype=bool)
        keep[0] = True
        keep[1:] = (sv[1:] != sv[:-1]) | (sg[1:] != sg[:-1])
        dv = sv[keep]
        dg = sg[keep]
        cuts = np.flatnonzero(dg[1:] != dg[:-1]) + 1
        gbounds = np.concatenate(([0], cuts, [dg.size])).tolist()
        vlist = dv.tolist()
        return [
            (key, tuple(vlist[gbounds[i]:gbounds[i + 1]]))
            for i, key in enumerate(keys.tolist())
        ]

    def output_nbytes(self, key, value):
        return 12.0 + 8.0 * len(value)

    def update(self, state, outputs):
        state.values.update(outputs)

    def finalize(self, state):
        return reversed_graph_from_lists(
            state.values, state.num_vertices
        )
