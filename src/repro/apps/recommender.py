"""RS — recommender system (Appendix D) in both primitives.

A product adoption cascade: adopters recommend the product to all their
friends each iteration; a recommended person accepts with probability
``p``.  Acceptance coins are a deterministic per-(vertex, iteration) hash
so every engine, optimization level and primitive produces the identical
adoption set.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import VertexState, sample_mask
from repro.mapreduce.api import MapReduceApp
from repro.propagation.api import PropagationApp

__all__ = ["RecommenderPropagation", "RecommenderMapReduce", "accepts"]


def accepts(v: int, iteration: int, probability: float, seed: int) -> bool:
    """Deterministic acceptance coin for vertex ``v`` at ``iteration``."""
    h = ((v * 2654435761) ^ (iteration * 40503) ^ seed) & 0xFFFFFFFF
    return h < probability * 0x100000000


def _rs_state(pgraph, initial_ratio: float, seed: int) -> VertexState:
    state = VertexState(
        pgraph=pgraph,
        values=sample_mask(pgraph.num_vertices, initial_ratio, seed).copy(),
    )
    state.extra["iteration"] = 0
    return state


class RecommenderPropagation(PropagationApp):
    """Propagation-based recommendation cascade."""

    name = "RS"
    is_associative = True
    merge_ufunc = np.logical_or

    def __init__(self, probability: float = 0.3, initial_ratio: float = 0.05,
                 seed: int = 7):
        self.probability = probability
        self.initial_ratio = initial_ratio
        self.seed = seed

    def setup(self, pgraph) -> VertexState:
        return _rs_state(pgraph, self.initial_ratio, self.seed)

    def select(self, u, state):
        return bool(state.values[u])

    def select_array(self, vertices, state):
        return state.values[vertices]

    def transfer(self, u, v, state):
        return True

    def transfer_array(self, src, dst, state):
        return np.ones(src.size, dtype=bool)

    def combine(self, v, values, state):
        if state.values[v]:
            return True
        coin = accepts(v, state.extra["iteration"], self.probability,
                       self.seed)
        return True if (values and coin) else None

    def merge(self, a, b):
        return a or b

    def value_nbytes(self, value):
        return 1.0

    def update(self, state, combined):
        for v, adopted in combined.items():
            state.values[v] = adopted
        state.extra["iteration"] += 1

    def finalize(self, state):
        return state.values


class RecommenderMapReduce(MapReduceApp):
    """MapReduce-based recommendation cascade.

    ``map`` scans the partition, deduplicates recommendations per target
    in a hash table, emits one flag per recommended vertex plus a carry
    record for current adopters; ``reduce`` applies the acceptance coin.
    """

    name = "RS"
    writeback_to_partitions = True

    def __init__(self, probability: float = 0.3, initial_ratio: float = 0.05,
                 seed: int = 7):
        self.probability = probability
        self.initial_ratio = initial_ratio
        self.seed = seed

    def setup(self, pgraph) -> VertexState:
        return _rs_state(pgraph, self.initial_ratio, self.seed)

    def map(self, partition, pgraph, state, emit):
        recommended: set[int] = set()
        src, dst = pgraph.partition_edges(partition)
        for u, v in zip(src, dst):
            if state.values[u]:
                recommended.add(int(v))
        for v in recommended:
            emit(v, 1)
        for u in pgraph.partition_vertices[partition]:
            if state.values[u]:
                emit(int(u), 2)  # carry: already an adopter

    def reduce(self, key, values, state, emit):
        if 2 in values:
            emit(key, True)
        elif accepts(key, state.extra["iteration"], self.probability,
                     self.seed):
            emit(key, True)

    def value_nbytes(self, value):
        return 1.0

    def update(self, state, outputs):
        for v, adopted in outputs.items():
            state.values[v] = adopted
        state.extra["iteration"] += 1

    def finalize(self, state):
        return state.values
