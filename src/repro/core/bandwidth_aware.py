"""Bandwidth-aware graph partitioning and placement (Algorithm 4).

``BAPart`` simultaneously recursively bisects the data graph and the
machine graph, mapping each sketch node of the data graph onto a machine
set whose internal bandwidth matches the node's cross-edge intensity
(design principles P1–P3):

* the top-level data cut — the widest one — lands on the machine-graph cut
  with the *lowest* aggregate bandwidth (the pod boundary), so all finer,
  heavier exchanges stay inside pods;
* sibling partitions (largest mutual cross-edge counts, by proximity) end
  up co-located on a machine or inside a pod.

The data-graph bisections themselves don't depend on which machines execute
them — only the elapsed time does (modeled in
:mod:`repro.core.partition_cost`) — so we compute the data sketch once with
:func:`~repro.partitioning.recursive.recursive_bisection` and derive the
placement by walking the data and machine sketches in lock step, which is
exactly the mapping Algorithm 4 produces.

The ParMetis-like baseline (:func:`oblivious_partition`) produces the same
data partitions but assigns machines randomly, blind to bandwidth — the
paper's description of ParMetis in the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitioningError
from repro.cluster.topology import Topology
from repro.core.machine_graph import MachineGraph, bisect_machines
from repro.graph.digraph import Graph
from repro.partitioning.bisect import BisectionOptions
from repro.partitioning.recursive import (
    RecursivePartition,
    num_levels_for_parts,
    recursive_bisection,
)
from repro.partitioning.wgraph import WGraph

__all__ = [
    "PartitionPlan",
    "build_machine_tree",
    "random_machine_tree",
    "bandwidth_aware_partition",
    "oblivious_partition",
]


@dataclass
class PartitionPlan:
    """A partitioned data graph plus its machine placement.

    ``parts[v]`` — partition of vertex ``v`` (bit-path ids, see
    :mod:`repro.partitioning.recursive`); ``placement[p]`` — machine whose
    primary replica holds partition ``p``; ``machine_sets[(level, prefix)]``
    — the machines responsible for that sketch node during partitioning
    (drives the elapsed-time model of Table 1).
    """

    parts: np.ndarray
    num_parts: int
    placement: np.ndarray
    machine_sets: dict[tuple[int, int], list[int]]
    node_cuts: dict[tuple[int, int], int] = field(default_factory=dict)
    node_sizes: dict[tuple[int, int], int] = field(default_factory=dict)
    method: str = "bandwidth-aware"

    @property
    def num_levels(self) -> int:
        return num_levels_for_parts(self.num_parts)

    def machines_used(self) -> list[int]:
        return sorted(set(int(m) for m in self.placement))


def build_machine_tree(
    topology: Topology,
    num_levels: int,
    machines=None,
    seed: int = 0,
) -> dict[tuple[int, int], list[int]]:
    """Recursive bandwidth-aware bisection of the machine graph.

    Returns ``machine_sets[(level, prefix)] -> machine list`` down to
    ``num_levels``.  Once a set reaches a single machine, all deeper nodes
    under it inherit that machine (Algorithm 4 lines 2–5).  If a set still
    has several machines at the leaf level, the member with the maximum
    aggregate bandwidth is kept (lines 7–9).
    """
    mgraph = MachineGraph(topology, machines)
    sets: dict[tuple[int, int], list[int]] = {}

    def recurse(machine_ids: list[int], level: int, prefix: int) -> None:
        sets[(level, prefix)] = list(machine_ids)
        if level == num_levels:
            return
        if len(machine_ids) == 1:
            recurse(machine_ids, level + 1, 2 * prefix)
            recurse(machine_ids, level + 1, 2 * prefix + 1)
            return
        sub = MachineGraph(topology, machine_ids)
        left, right = bisect_machines(sub, seed=seed + level)
        recurse(left, level + 1, 2 * prefix)
        recurse(right, level + 1, 2 * prefix + 1)

    recurse(list(mgraph.machines), 0, 0)
    # collapse multi-machine leaves to the max-aggregate-bandwidth member
    for prefix in range(1 << num_levels):
        leaf = sets[(num_levels, prefix)]
        if len(leaf) > 1:
            sub = MachineGraph(topology, leaf)
            sets[(num_levels, prefix)] = [sub.max_aggregate_bandwidth_machine()]
    return sets


def random_machine_tree(
    topology: Topology,
    num_levels: int,
    machines=None,
    seed: int = 0,
) -> dict[tuple[int, int], list[int]]:
    """Bandwidth-oblivious machine tree: random balanced splits.

    Models ParMetis "randomly choosing the available machine" — the machine
    sets at every level ignore the topology.
    """
    if machines is None:
        machines = list(range(topology.num_machines))
    machines = [int(m) for m in machines]
    rng = np.random.default_rng(seed)
    sets: dict[tuple[int, int], list[int]] = {}

    def recurse(machine_ids: list[int], level: int, prefix: int) -> None:
        sets[(level, prefix)] = list(machine_ids)
        if level == num_levels:
            if len(machine_ids) > 1:
                sets[(level, prefix)] = [
                    machine_ids[int(rng.integers(len(machine_ids)))]
                ]
            return
        if len(machine_ids) == 1:
            recurse(machine_ids, level + 1, 2 * prefix)
            recurse(machine_ids, level + 1, 2 * prefix + 1)
            return
        shuffled = list(machine_ids)
        rng.shuffle(shuffled)
        half = len(shuffled) // 2 + (len(shuffled) % 2)
        recurse(shuffled[:half], level + 1, 2 * prefix)
        recurse(shuffled[half:], level + 1, 2 * prefix + 1)

    recurse(machines, 0, 0)
    return sets


def _subtree_intensity(
    data: RecursivePartition, level: int, prefix: int
) -> int:
    """Total bisection-cut weight inside a data sketch subtree.

    A proxy for the communication the subtree's partitions will exchange
    among themselves while processing.
    """
    if level >= data.num_levels:
        return 0
    total = data.node_cuts.get((level, prefix), 0)
    total += _subtree_intensity(data, level + 1, 2 * prefix)
    total += _subtree_intensity(data, level + 1, 2 * prefix + 1)
    return total


def _internal_bandwidth(topology: Topology, machines: list[int]) -> float:
    """Aggregate pairwise bandwidth inside a machine set."""
    total = 0.0
    for i, a in enumerate(machines):
        for b in machines[i + 1:]:
            total += topology.bandwidth(a, b)
    return total


def _plan_from_tree(
    data: RecursivePartition,
    machine_sets: dict[tuple[int, int], list[int]],
    method: str,
    topology: Topology | None = None,
) -> PartitionPlan:
    """Map the data sketch onto the machine sketch.

    With a ``topology``, each node's two data children are matched to the
    two machine children by rank: the child with the heavier internal
    communication gets the machine set with the higher internal bandwidth
    (design principle P1 — e.g. on heterogeneous clusters the hot half of
    the graph lands on the fast half of the machines).  Without a
    topology the trees are walked in index order.
    """
    num_levels = data.num_levels
    placement = np.zeros(data.num_parts, dtype=np.int64)
    mapped_sets: dict[tuple[int, int], list[int]] = {}

    def walk(level: int, data_prefix: int, machine_prefix: int) -> None:
        mapped_sets[(level, data_prefix)] = machine_sets[
            (level, machine_prefix)
        ]
        if level == num_levels:
            leaf = machine_sets[(level, machine_prefix)]
            if len(leaf) != 1:
                raise PartitioningError("machine tree leaf not collapsed")
            placement[data_prefix] = leaf[0]
            return
        d0, d1 = 2 * data_prefix, 2 * data_prefix + 1
        m0, m1 = 2 * machine_prefix, 2 * machine_prefix + 1
        if topology is not None:
            heat0 = _subtree_intensity(data, level + 1, d0)
            heat1 = _subtree_intensity(data, level + 1, d1)
            bw0 = _internal_bandwidth(topology,
                                      machine_sets[(level + 1, m0)])
            bw1 = _internal_bandwidth(topology,
                                      machine_sets[(level + 1, m1)])
            if (heat0 - heat1) * (bw0 - bw1) < 0:
                m0, m1 = m1, m0
        walk(level + 1, d0, m0)
        walk(level + 1, d1, m1)

    walk(0, 0, 0)
    return PartitionPlan(
        parts=data.parts,
        num_parts=data.num_parts,
        placement=placement,
        machine_sets=mapped_sets,
        node_cuts=dict(data.node_cuts),
        node_sizes=dict(data.node_sizes),
        method=method,
    )


def bandwidth_aware_partition(
    graph: Graph | WGraph,
    topology: Topology,
    num_parts: int,
    seed: int = 0,
    options: BisectionOptions | None = None,
    data: RecursivePartition | None = None,
) -> PartitionPlan:
    """Partition ``graph`` into ``num_parts`` with bandwidth-aware placement.

    ``data`` lets callers reuse a precomputed recursive bisection (the
    data-graph cut does not depend on the topology, only the placement
    does).
    """
    if data is None:
        wgraph = (graph if isinstance(graph, WGraph)
                  else WGraph.from_digraph(graph))
        data = recursive_bisection(wgraph, num_parts, seed=seed,
                                   options=options)
    machine_sets = build_machine_tree(topology, data.num_levels, seed=seed)
    return _plan_from_tree(data, machine_sets, "bandwidth-aware",
                           topology=topology)


def oblivious_partition(
    graph: Graph | WGraph,
    topology: Topology,
    num_parts: int,
    seed: int = 0,
    options: BisectionOptions | None = None,
    data: RecursivePartition | None = None,
) -> PartitionPlan:
    """Same data partitions, bandwidth-oblivious (ParMetis-like) placement.

    The cut quality equals the bandwidth-aware plan's (same multilevel
    bisections); what differs is machine use: partitions are *scattered* —
    each assigned to a uniformly random machine (balanced round-robin over
    a shuffled machine list), so sibling partitions land on unrelated
    machines, exactly the "ParMetis randomly chooses the available
    machine" behaviour the paper contrasts against.  The machine sets used
    for the elapsed-time model are likewise random splits.
    """
    if data is None:
        wgraph = (graph if isinstance(graph, WGraph)
                  else WGraph.from_digraph(graph))
        data = recursive_bisection(wgraph, num_parts, seed=seed,
                                   options=options)
    machine_sets = random_machine_tree(topology, data.num_levels, seed=seed)
    rng = np.random.default_rng(seed + 7)
    machines = rng.permutation(topology.num_machines)
    order = rng.permutation(num_parts)
    placement = np.zeros(num_parts, dtype=np.int64)
    for slot, pid in enumerate(order):
        placement[pid] = machines[slot % machines.size]
    plan = _plan_from_tree(data, machine_sets, "oblivious")
    plan.placement = placement
    return plan
