"""The partition sketch (Section 4.1) and its three properties.

The partition sketch is the balanced binary tree of the recursive bisection
process: the root is the whole data graph, each internal node's children
are the two halves of its bisection, leaves are the final partitions.
Partition ids encode root-to-leaf paths bit by bit
(:mod:`repro.partitioning.recursive`), so sketch nodes are simply id
prefixes.

This module computes ``C(n1, n2)`` — the number of cross edges between two
sketch nodes — and checks the paper's *monotonicity* and *proximity*
properties, which hold for ideal sketches and guide placement principles
P1–P3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import Graph
from repro.partitioning.metrics import cut_matrix
from repro.partitioning.recursive import num_levels_for_parts

__all__ = ["PartitionSketch"]


class PartitionSketch:
    """Cross-edge structure of a recursive bisection of ``graph``."""

    def __init__(self, graph: Graph, parts: np.ndarray, num_parts: int):
        self.num_parts = num_parts
        self.num_levels = num_levels_for_parts(num_parts)
        self._leaf_cut = cut_matrix(graph, parts, num_parts)
        # symmetrize: C counts edges in either direction
        self._leaf_cut = self._leaf_cut + self._leaf_cut.T

    # ------------------------------------------------------------------
    def leaves_of(self, level: int, prefix: int) -> range:
        """Partition ids under sketch node ``(level, prefix)``."""
        if not 0 <= level <= self.num_levels:
            raise PartitioningError("sketch level out of range")
        if not 0 <= prefix < (1 << level):
            raise PartitioningError("sketch prefix out of range")
        span = 1 << (self.num_levels - level)
        return range(prefix * span, (prefix + 1) * span)

    def cross_edges(
        self, node_a: tuple[int, int], node_b: tuple[int, int]
    ) -> int:
        """``C(n1, n2)``: edges (either direction) between two nodes."""
        leaves_a = self.leaves_of(*node_a)
        leaves_b = self.leaves_of(*node_b)
        if set(leaves_a) & set(leaves_b):
            raise PartitioningError("sketch nodes overlap")
        block = self._leaf_cut[np.ix_(list(leaves_a), list(leaves_b))]
        return int(block.sum())

    def total_cut_at_level(self, level: int) -> int:
        """``T_l``: cross edges among the ``2**level`` nodes at ``level``."""
        if not 0 <= level <= self.num_levels:
            raise PartitioningError("sketch level out of range")
        total = 0
        for prefix_a in range(1 << level):
            for prefix_b in range(prefix_a + 1, 1 << level):
                total += self.cross_edges((level, prefix_a),
                                          (level, prefix_b))
        return total

    # ------------------------------------------------------------------
    def check_monotonicity(self) -> bool:
        """``T_i <= T_j`` for ``i <= j`` (always true structurally).

        Splitting nodes can only expose more cross edges, so monotonicity
        holds for *any* sketch; the check is kept as an invariant guard.
        """
        cuts = [self.total_cut_at_level(l) for l in range(self.num_levels + 1)]
        return all(a <= b for a, b in zip(cuts, cuts[1:]))

    def proximity_violations(self) -> list[tuple]:
        """Quadruples violating the proximity inequality.

        For sibling pairs ``(n1, n2)`` under ``p`` and ``(n3, n4)`` under
        ``p'`` where ``p`` and ``p'`` are siblings, proximity states
        ``C(n1,n2) + C(n3,n4) >= C(a,b) + C(c,d)`` for any re-pairing of
        the four nodes.  Ideal sketches satisfy it (Appendix C); real
        bisections may violate it slightly — the count quantifies how far
        from ideal a sketch is.
        """
        violations: list[tuple] = []
        for level in range(2, self.num_levels + 1):
            for gp in range(1 << (level - 2)):
                p_left, p_right = 2 * gp, 2 * gp + 1
                n1, n2 = (level, 2 * p_left), (level, 2 * p_left + 1)
                n3, n4 = (level, 2 * p_right), (level, 2 * p_right + 1)
                sibling_sum = (self.cross_edges(n1, n2)
                               + self.cross_edges(n3, n4))
                for pairing in (((n1, n3), (n2, n4)), ((n1, n4), (n2, n3))):
                    other = (self.cross_edges(*pairing[0])
                             + self.cross_edges(*pairing[1]))
                    if sibling_sum < other:
                        violations.append((level, gp, pairing,
                                           sibling_sum, other))
        return violations

    def proximity_holds(self) -> bool:
        return not self.proximity_violations()
