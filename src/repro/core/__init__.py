"""The paper's contribution: bandwidth-aware partitioning and Surfer."""

from repro.core.machine_graph import MachineGraph, bisect_machines
from repro.core.sketch import PartitionSketch
from repro.core.bandwidth_aware import (
    PartitionPlan,
    bandwidth_aware_partition,
    build_machine_tree,
    oblivious_partition,
    random_machine_tree,
)
from repro.core.partitioned import PartitionedGraph, VertexEncoding
from repro.core.persist import load_plan, save_plan
from repro.core.placement import (
    estimate_partition_costs,
    partition_traffic_matrix,
    rebalance_placement,
    refine_colocated_placement,
)
from repro.core.partition_cost import (
    PartitioningCostModel,
    PartitioningCostReport,
    simulate_partitioning_time,
)
from repro.core.surfer import (
    ALL_LEVELS,
    O1,
    O2,
    O3,
    O4,
    JobResult,
    OptimizationLevel,
    Surfer,
    default_num_parts,
)

__all__ = [
    "MachineGraph",
    "bisect_machines",
    "PartitionSketch",
    "PartitionPlan",
    "bandwidth_aware_partition",
    "build_machine_tree",
    "oblivious_partition",
    "random_machine_tree",
    "PartitionedGraph",
    "VertexEncoding",
    "load_plan",
    "save_plan",
    "estimate_partition_costs",
    "partition_traffic_matrix",
    "rebalance_placement",
    "refine_colocated_placement",
    "PartitioningCostModel",
    "PartitioningCostReport",
    "simulate_partitioning_time",
    "ALL_LEVELS",
    "O1",
    "O2",
    "O3",
    "O4",
    "JobResult",
    "OptimizationLevel",
    "Surfer",
    "default_num_parts",
]
