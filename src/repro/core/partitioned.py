"""The partitioned graph and its per-partition locality structures.

Along with each partition Surfer keeps (Section 5.1):

* a hash table of the partition's *boundary vertices* (vertices touched by
  at least one cross-partition edge), used to decide local propagation;
* a map ``(v, pid)`` from each destination vertex of a cross-partition edge
  to the remote partition holding it, used to group and route messages.

Appendix B additionally encodes vertex ids so each partition owns a
consecutive id range, making vertex->partition lookup a binary search over
``P`` prefix sums instead of a global table; :class:`VertexEncoding`
implements that scheme.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import Graph
from repro.graph.io import DEGREE_BYTES, VERTEX_ID_BYTES
from repro.partitioning.metrics import validate_assignment

__all__ = ["PartitionedGraph", "RangePartitionedGraph", "VertexEncoding"]


class VertexEncoding:
    """Consecutive-range vertex id encoding (Appendix B).

    The ``j``-th vertex of partition ``i`` gets id
    ``sum(sizes[:i]) + j``; finding a vertex's partition is then a
    ``searchsorted`` over the ``P + 1`` offsets.
    """

    def __init__(self, parts: np.ndarray, num_parts: int):
        parts = np.asarray(parts, dtype=np.int64)
        order = np.argsort(parts, kind="stable")
        self.new_to_old = order
        self.old_to_new = np.empty_like(order)
        self.old_to_new[order] = np.arange(order.size, dtype=np.int64)
        sizes = np.bincount(parts, minlength=num_parts)
        self.offsets = np.zeros(num_parts + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.offsets[1:])

    def encode(self, old_id: int) -> int:
        return int(self.old_to_new[old_id])

    def decode(self, new_id: int) -> int:
        return int(self.new_to_old[new_id])

    def partition_of(self, new_id: int) -> int:
        """Partition owning an *encoded* id, via binary search."""
        p = int(np.searchsorted(self.offsets, new_id, side="right") - 1)
        if not 0 <= new_id < self.offsets[-1]:
            raise PartitioningError(f"encoded id {new_id} out of range")
        return p

    def encode_graph(self, graph: Graph) -> Graph:
        """Relabel a graph into the encoded id space."""
        src = self.old_to_new[graph.edge_sources()]
        dst = self.old_to_new[graph.out_indices]
        return Graph.from_edges(
            np.stack([src, dst], axis=1), num_vertices=graph.num_vertices
        )


class PartitionedGraph:
    """A graph split into ``num_parts`` partitions with locality metadata."""

    def __init__(self, graph: Graph, parts: np.ndarray, num_parts: int):
        self.graph = graph
        self.parts = validate_assignment(parts, graph.num_vertices, num_parts)
        self.num_parts = num_parts

        src = graph.edge_sources()
        dst = graph.out_indices
        self.edge_src_part = self.parts[src] if src.size else src
        self.edge_dst_part = self.parts[dst] if dst.size else dst
        cross = self.edge_src_part != self.edge_dst_part

        # Boundary vertices: touched by any cross-partition edge.
        boundary = np.zeros(graph.num_vertices, dtype=bool)
        if src.size:
            boundary[src[cross]] = True
            boundary[dst[cross]] = True
        self.boundary_mask = boundary

        self.partition_vertices: list[np.ndarray] = [
            np.flatnonzero(self.parts == p) for p in range(num_parts)
        ]
        # paper's per-partition structures
        self.boundary_tables: list[set[int]] = [
            set(int(v) for v in verts[boundary[verts]])
            for verts in self.partition_vertices
        ]
        self.cross_dest_maps: list[dict[int, int]] = [
            {} for _ in range(num_parts)
        ]
        if src.size:
            for e in np.flatnonzero(cross):
                p = int(self.edge_src_part[e])
                self.cross_dest_maps[p][int(dst[e])] = int(self.edge_dst_part[e])

        self._edge_src = src
        self._edge_dst = dst
        self._edges_by_partition: list[np.ndarray] | None = None
        self._scan_edge_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_cross_edges(self) -> int:
        return int(np.count_nonzero(self.edge_src_part != self.edge_dst_part))

    @property
    def inner_vertex_ratio(self) -> float:
        """Fraction of vertices eligible for local propagation."""
        n = self.num_vertices
        if n == 0:
            return 1.0
        return 1.0 - float(self.boundary_mask.sum()) / n

    @property
    def inner_edge_ratio(self) -> float:
        m = self.graph.num_edges
        if m == 0:
            return 1.0
        return 1.0 - self.num_cross_edges / m

    def partition_of(self, vertex: int) -> int:
        return int(self.parts[vertex])

    def is_inner(self, vertex: int) -> bool:
        return not bool(self.boundary_mask[vertex])

    def partition_size(self, p: int) -> int:
        return self.partition_vertices[p].size

    def partition_edges(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-edges whose source lies in partition ``p`` as (src, dst)."""
        idx = self._partition_edge_index(p)
        return self._edge_src[idx], self._edge_dst[idx]

    def partition_edge_count(self, p: int) -> int:
        return self._partition_edge_index(p).size

    def _partition_edge_index(self, p: int) -> np.ndarray:
        if self._edges_by_partition is None:
            self._edges_by_partition = [
                np.flatnonzero(self.edge_src_part == q)
                for q in range(self.num_parts)
            ]
        return self._edges_by_partition[p]

    def partition_out_edges(
        self, p: int, vertices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Out-edges of (a subset of) partition ``p``'s vertices in scan
        order, as aligned ``(src, dst)`` arrays.

        ``vertices`` defaults to every vertex of the partition; the
        vectorized Transfer passes the ``select``-ed subset.  Unlike
        :meth:`partition_edges` this preserves the per-vertex scan order
        and honors the subset, which is what message-order-exact bulk
        routing needs.

        The full-partition gather is iteration-invariant (graph structure
        only), so it is computed once and cached; callers must treat the
        returned arrays as read-only.
        """
        if vertices is None:
            cached = self._scan_edge_cache.get(p)
            if cached is None:
                cached = self.graph.out_edges_of(self.partition_vertices[p])
                self._scan_edge_cache[p] = cached
            return cached
        return self.graph.out_edges_of(vertices)

    def partition_bytes(self, p: int) -> int:
        """Adjacency-list bytes of partition ``p`` (its disk footprint)."""
        n_p = self.partition_size(p)
        m_p = self.partition_edge_count(p)
        return n_p * (VERTEX_ID_BYTES + DEGREE_BYTES) + m_p * VERTEX_ID_BYTES

    def cross_partition_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Cross-partition edge counts per partition, ``(outgoing,
        incoming)`` — the placement cost model's network term."""
        cross = self.edge_src_part != self.edge_dst_part
        out_cross = np.bincount(
            self.edge_src_part[cross], minlength=self.num_parts
        )
        in_cross = np.bincount(
            self.edge_dst_part[cross], minlength=self.num_parts
        )
        return out_cross, in_cross

    def cross_traffic_counts(self) -> np.ndarray:
        """``T[p, q]`` = cross edges from partition ``p`` to ``q``."""
        mat = np.zeros((self.num_parts, self.num_parts), dtype=np.float64)
        cross = self.edge_src_part != self.edge_dst_part
        np.add.at(mat, (self.edge_src_part[cross],
                        self.edge_dst_part[cross]), 1.0)
        return mat

    def encoding(self) -> VertexEncoding:
        """Consecutive-range id encoding for this partitioning."""
        return VertexEncoding(self.parts, self.num_parts)

    def validate(self) -> None:
        """Internal-consistency checks (used by tests)."""
        total = sum(v.size for v in self.partition_vertices)
        if total != self.num_vertices:
            raise PartitioningError("partition vertex lists do not cover V")
        for p, table in enumerate(self.boundary_tables):
            for v in table:
                if self.parts[v] != p:
                    raise PartitioningError(
                        "boundary table lists a foreign vertex"
                    )
        for p, destmap in enumerate(self.cross_dest_maps):
            for v, pid in destmap.items():
                if self.parts[v] != pid or pid == p:
                    raise PartitioningError("(v, pid) map inconsistent")


class RangePartitionedGraph:
    """A graph partitioned into contiguous vertex ranges, out-of-core clean.

    The drop-in counterpart of :class:`PartitionedGraph` for
    shard-backed graphs: every per-partition structure is derived from
    the CSR offsets plus *chunked* scans of one partition's edge range
    at a time, so construction and queries never materialize a global
    O(m) edge array — peak memory stays O(largest partition + n).
    Partition ``p`` owns vertices ``offsets[p] .. offsets[p+1] - 1``;
    when the ranges coincide with a shard store's boundaries,
    :meth:`partition_edges` is a zero-copy view of shard ``p``'s memmap.

    Works with any :class:`~repro.graph.digraph.Graph` — plain in-memory
    graphs take the same code paths via ``out_indices_range`` views,
    which is how the bit-identity tests compare an XL out-of-core run
    against an in-RAM run of the same seed.
    """

    def __init__(self, graph: Graph, offsets: np.ndarray, num_parts: int):
        offsets = np.asarray(offsets, dtype=np.int64)
        n = graph.num_vertices
        if (offsets.size != num_parts + 1 or offsets[0] != 0
                or offsets[-1] != n or np.any(np.diff(offsets) < 0)):
            raise PartitioningError(
                "range offsets must be P+1 offsets covering [0, n]")
        self.graph = graph
        self.offsets = offsets
        self.num_parts = num_parts
        self.parts = np.repeat(
            np.arange(num_parts, dtype=np.int64), np.diff(offsets))
        self.partition_vertices: list[np.ndarray] = [
            np.arange(offsets[p], offsets[p + 1], dtype=np.int64)
            for p in range(num_parts)
        ]

        # One chunked pass per partition: boundary vertices, per-pair
        # cross-edge counts.  Each pass touches only that partition's
        # destination slice.
        indptr = graph.out_indptr
        boundary = np.zeros(n, dtype=bool)
        out_cross = np.zeros(num_parts, dtype=np.int64)
        in_cross = np.zeros(num_parts, dtype=np.int64)
        traffic = np.zeros((num_parts, num_parts), dtype=np.float64)
        for p in range(num_parts):
            vlo, vhi = int(offsets[p]), int(offsets[p + 1])
            elo, ehi = int(indptr[vlo]), int(indptr[vhi])
            if ehi == elo:
                continue
            dst = np.asarray(graph.out_indices_range(elo, ehi))  # repro: ignore[OOC001] -- bounded O(partition) chunk, not O(graph)
            dst_parts = np.searchsorted(offsets, dst, side="right") - 1
            cross = dst_parts != p
            if not cross.any():
                continue
            boundary[dst[cross]] = True
            src = np.repeat(np.arange(vlo, vhi, dtype=np.int64),
                            np.diff(indptr[vlo:vhi + 1]))
            boundary[src[cross]] = True
            counts = np.bincount(dst_parts[cross], minlength=num_parts)
            out_cross[p] = int(counts.sum())
            in_cross += counts
            traffic[p] += counts
        self.boundary_mask = boundary
        self._out_cross = out_cross
        self._in_cross = in_cross
        self._traffic = traffic

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_cross_edges(self) -> int:
        return int(self._out_cross.sum())

    @property
    def inner_vertex_ratio(self) -> float:
        n = self.num_vertices
        if n == 0:
            return 1.0
        return 1.0 - float(self.boundary_mask.sum()) / n

    @property
    def inner_edge_ratio(self) -> float:
        m = self.graph.num_edges
        if m == 0:
            return 1.0
        return 1.0 - self.num_cross_edges / m

    def partition_of(self, vertex: int) -> int:
        return int(np.searchsorted(self.offsets, vertex, side="right") - 1)

    def is_inner(self, vertex: int) -> bool:
        return not bool(self.boundary_mask[vertex])

    def partition_size(self, p: int) -> int:
        return int(self.offsets[p + 1] - self.offsets[p])

    def _edge_range(self, p: int) -> tuple[int, int]:
        indptr = self.graph.out_indptr
        return (int(indptr[self.offsets[p]]),
                int(indptr[self.offsets[p + 1]]))

    def partition_edges(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-edges whose source lies in partition ``p`` as (src, dst).

        ``dst`` is a zero-copy CSR slice (the whole shard memmap when
        partition ranges match shard boundaries); ``src`` is an O(m_p)
        expansion of the range's degrees.
        """
        vlo, vhi = int(self.offsets[p]), int(self.offsets[p + 1])
        elo, ehi = self._edge_range(p)
        src = np.repeat(np.arange(vlo, vhi, dtype=np.int64),
                        np.diff(self.graph.out_indptr[vlo:vhi + 1]))
        return src, self.graph.out_indices_range(elo, ehi)

    def partition_edge_count(self, p: int) -> int:
        elo, ehi = self._edge_range(p)
        return ehi - elo

    def partition_out_edges(
        self, p: int, vertices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scan-order out-edges of (a subset of) partition ``p``.

        For a contiguous range the full-partition scan order *is* CSR
        order, so this equals :meth:`partition_edges`; subsets delegate
        to the graph's shard-aware gather.
        """
        if vertices is None:
            return self.partition_edges(p)
        return self.graph.out_edges_of(vertices)

    def partition_bytes(self, p: int) -> int:
        n_p = self.partition_size(p)
        m_p = self.partition_edge_count(p)
        return n_p * (VERTEX_ID_BYTES + DEGREE_BYTES) + m_p * VERTEX_ID_BYTES

    def cross_partition_counts(self) -> tuple[np.ndarray, np.ndarray]:
        return self._out_cross, self._in_cross

    def cross_traffic_counts(self) -> np.ndarray:
        return self._traffic

    def encoding(self) -> VertexEncoding:
        """Consecutive-range id encoding (the identity for range plans)."""
        return VertexEncoding(self.parts, self.num_parts)

    def validate(self) -> None:
        """Internal-consistency checks (used by tests)."""
        validate_assignment(self.parts, self.num_vertices, self.num_parts)
        total = sum(v.size for v in self.partition_vertices)
        if total != self.num_vertices:
            raise PartitioningError("partition vertex lists do not cover V")
        if sum(self.partition_edge_count(p)
               for p in range(self.num_parts)) != self.graph.num_edges:
            raise PartitioningError("partition edge ranges do not cover E")
