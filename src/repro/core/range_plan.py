"""Contiguous-range partition plans for out-of-core graphs.

The recursive-bisection partitioners need the whole (weighted) edge set
in memory, which defeats the shard store's O(shard) bound.  For XL runs
we instead partition by *contiguous vertex ranges* — exactly the layout
the shard store already has on disk.  When the plan's ranges equal the
store's shard boundaries, partition ``p`` **is** shard ``p``: loading a
partition is a zero-copy memmap view and no per-edge relabeling exists
anywhere in the pipeline.

Placement still goes through the bandwidth-aware machine tree
(:func:`~repro.core.bandwidth_aware.build_machine_tree`): partition
prefixes map onto machine-tree leaves in index order, so sibling ranges
— which share the most cross edges under any locality-preserving vertex
order — land on bandwidth-close machines, same as the sketch-driven
plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import Topology
from repro.core.bandwidth_aware import PartitionPlan, build_machine_tree
from repro.errors import PartitioningError
from repro.graph.digraph import Graph
from repro.partitioning.recursive import num_levels_for_parts

__all__ = ["RangePartitionPlan", "contiguous_range_plan",
           "balanced_range_offsets"]


@dataclass
class RangePartitionPlan(PartitionPlan):
    """A :class:`PartitionPlan` whose partitions are contiguous vertex
    ranges; ``range_offsets`` holds the P+1 boundaries.  Consumers
    dispatch on this field to build a
    :class:`~repro.core.partitioned.RangePartitionedGraph` instead of
    the table-based partitioned graph."""

    range_offsets: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))


def balanced_range_offsets(graph: Graph, num_parts: int) -> np.ndarray:
    """Edge-balanced contiguous boundaries from the CSR offsets (O(n))."""
    n = graph.num_vertices
    indptr = graph.out_indptr
    total = int(indptr[-1])
    targets = (np.arange(1, num_parts, dtype=np.int64) * total) // num_parts
    inner = np.searchsorted(indptr[1:], targets, side="left") + 1
    offsets = np.concatenate((
        np.zeros(1, dtype=np.int64),
        np.minimum(inner, n).astype(np.int64),
        np.array([n], dtype=np.int64),
    ))
    return np.maximum.accumulate(offsets)


def contiguous_range_plan(
    graph: Graph,
    topology: Topology,
    num_parts: int,
    seed: int = 0,
    offsets: np.ndarray | None = None,
) -> RangePartitionPlan:
    """Partition ``graph`` into contiguous ranges with tree placement.

    ``offsets`` pins the boundaries (pass the shard store's
    ``vertex_starts`` so partitions alias shards); the default is
    edge-balanced boundaries from the indptr prefix sums.  ``num_parts``
    must be a power of two, like every plan in this repo.
    """
    if num_parts < 1:
        raise PartitioningError("num_parts must be positive")
    num_levels = num_levels_for_parts(num_parts)
    if 1 << num_levels != num_parts:
        raise PartitioningError("num_parts must be a power of two")
    if offsets is None:
        offsets = balanced_range_offsets(graph, num_parts)
    else:
        offsets = np.asarray(offsets, dtype=np.int64)
        if (offsets.size != num_parts + 1 or offsets[0] != 0
                or offsets[-1] != graph.num_vertices
                or np.any(np.diff(offsets) < 0)):
            raise PartitioningError(
                "offsets must be P+1 boundaries covering [0, n]")
    machine_sets = build_machine_tree(topology, num_levels, seed=seed)
    placement = np.zeros(num_parts, dtype=np.int64)
    for p in range(num_parts):
        leaf = machine_sets[(num_levels, p)]
        if len(leaf) != 1:
            raise PartitioningError("machine tree leaf not collapsed")
        placement[p] = leaf[0]
    parts = np.repeat(np.arange(num_parts, dtype=np.int64),
                      np.diff(offsets))
    return RangePartitionPlan(
        parts=parts,
        num_parts=num_parts,
        placement=placement,
        machine_sets=machine_sets,
        method="contiguous-range",
        range_offsets=offsets,
    )
