"""Persistence for partition plans (deployment artifacts).

Partitioning a 100 GB graph takes hours (Table 1); the resulting plan —
the vertex→partition assignment, the machine placement and the sketch
metadata — is the artifact every later job reuses.  This module
serializes a :class:`~repro.core.bandwidth_aware.PartitionPlan` to a
single ``.npz`` container (arrays stay binary, metadata rides along as
JSON) and restores it bit-for-bit.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.bandwidth_aware import PartitionPlan
from repro.errors import PlacementError

__all__ = ["save_plan", "load_plan"]

_FORMAT_VERSION = 1


def save_plan(plan: PartitionPlan, path: str | Path) -> None:
    """Write ``plan`` to ``path`` (a ``.npz`` file)."""
    metadata = {
        "format_version": _FORMAT_VERSION,
        "num_parts": plan.num_parts,
        "method": plan.method,
        "machine_sets": [
            [level, prefix, machines]
            for (level, prefix), machines in sorted(plan.machine_sets.items())
        ],
        "node_cuts": [
            [level, prefix, int(cut)]
            for (level, prefix), cut in sorted(plan.node_cuts.items())
        ],
        "node_sizes": [
            [level, prefix, int(size)]
            for (level, prefix), size in sorted(plan.node_sizes.items())
        ],
    }
    np.savez_compressed(
        path,
        parts=plan.parts,
        placement=plan.placement,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
    )


def load_plan(path: str | Path) -> PartitionPlan:
    """Read a plan written by :func:`save_plan`."""
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise PlacementError(f"cannot read plan file {path}: {exc}") from exc
    try:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        parts = archive["parts"].astype(np.int64)
        placement = archive["placement"].astype(np.int64)
    except KeyError as exc:
        raise PlacementError(f"{path} is not a plan file") from exc
    if metadata.get("format_version") != _FORMAT_VERSION:
        raise PlacementError(
            f"unsupported plan format version "
            f"{metadata.get('format_version')}"
        )
    return PartitionPlan(
        parts=parts,
        num_parts=int(metadata["num_parts"]),
        placement=placement,
        machine_sets={
            (level, prefix): list(machines)
            for level, prefix, machines in metadata["machine_sets"]
        },
        node_cuts={
            (level, prefix): cut
            for level, prefix, cut in metadata["node_cuts"]
        },
        node_sizes={
            (level, prefix): size
            for level, prefix, size in metadata["node_sizes"]
        },
        method=metadata["method"],
    )
