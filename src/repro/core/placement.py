"""Load-balanced task placement over replica holders.

Surfer's job manager dispatches tasks to slaves holding a replica of the
input partition (Appendix B); with three-way GFS replication each
partition can run on any of three machines.  Starting from the
layout-chosen primaries, :func:`rebalance_placement` greedily relieves the
bottleneck machine by moving its partitions to their least-loaded replica
holders while the estimated makespan improves — the locality-preserving
load balancing every GFS-era scheduler performs.  The layout's co-location
structure survives except where a hot sibling pair would otherwise pin the
makespan.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.storage import PartitionStore
from repro.cluster.topology import Topology
from repro.errors import PlacementError

__all__ = [
    "rebalance_placement",
    "estimate_partition_costs",
    "partition_traffic_matrix",
    "refine_colocated_placement",
]


def estimate_partition_costs(
    pgraph,
    network_factor: float = 4.5,
    message_bytes: float = 16.0,
) -> np.ndarray:
    """Rough per-partition task cost in disk-byte-equivalent units.

    Sums the partition's adjacency footprint, its edge work, and its
    expected network occupancy: every cross-partition edge incident to the
    partition moves roughly one message, and a network byte costs
    ``network_factor`` disk bytes' worth of time.  The network term is
    what lets the dispatcher split *hot* partition pairs whose traffic
    goes everywhere (hub partitions) instead of stacking them on one
    machine.
    """
    costs = np.zeros(pgraph.num_parts, dtype=np.float64)
    # both partitioned-graph flavors expose the counts; the range-based
    # one computes them chunked so no O(m) per-edge arrays are needed
    out_cross, in_cross = pgraph.cross_partition_counts()
    for p in range(pgraph.num_parts):
        local = (pgraph.partition_bytes(p)
                 + 8.0 * pgraph.partition_edge_count(p))
        network = (network_factor * message_bytes
                   * float(out_cross[p] + in_cross[p]))
        costs[p] = local + network
    return costs


def rebalance_placement(
    store: PartitionStore,
    costs: np.ndarray,
    fetch_costs: np.ndarray | None = None,
    max_moves: int | None = None,
) -> np.ndarray:
    """Assignment ``partition -> machine`` with bottleneck relief.

    Iteratively moves a partition off the most-loaded machine whenever
    that strictly lowers the maximum machine load.  Replica holders are
    free targets; any other machine is allowed at a *non-local* penalty of
    ``fetch_costs[p]`` (the partition must be pulled over the network —
    Hadoop-style non-local task execution).  With ``fetch_costs=None``
    only replica holders are considered.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (store.num_partitions,):
        raise PlacementError("costs must have one entry per partition")
    if fetch_costs is not None:
        fetch_costs = np.asarray(fetch_costs, dtype=np.float64)
        if fetch_costs.shape != costs.shape:
            raise PlacementError("fetch_costs must align with costs")
    assignment = store.placement_array().copy()
    effective = costs.copy()  # cost of each partition where it now runs
    load = np.zeros(store.num_machines)
    for p, m in enumerate(assignment):
        load[m] += costs[p]
    if max_moves is None:
        max_moves = 4 * store.num_partitions

    for _ in range(max_moves):
        bottleneck = int(np.argmax(load))
        best_move: tuple[int, int, float] | None = None
        best_new_max = load[bottleneck]
        for p in np.flatnonzero(assignment == bottleneck):
            p = int(p)
            replicas = set(store.replicas(p))
            if fetch_costs is None:
                candidates: list[int] = sorted(replicas)
            else:
                candidates = list(range(store.num_machines))
            for candidate in candidates:
                if candidate == bottleneck:
                    continue
                cost_there = costs[p] + (
                    0.0 if candidate in replicas or fetch_costs is None
                    else float(fetch_costs[p])
                )
                new_src = load[bottleneck] - effective[p]
                new_dst = load[candidate] + cost_there
                new_max = max(new_src, new_dst)
                if new_max < best_new_max - 1e-9:
                    best_new_max = new_max
                    best_move = (p, candidate, cost_there)
        if best_move is None:
            break
        p, dst, cost_there = best_move
        load[assignment[p]] -= effective[p]
        load[dst] += cost_there
        effective[p] = cost_there
        assignment[p] = dst
    return assignment


def partition_traffic_matrix(pgraph, message_bytes: float = 16.0) -> np.ndarray:
    """Symmetric estimate of inter-partition traffic in bytes.

    ``T[p, q]`` counts edges between partitions ``p`` and ``q`` in either
    direction times the per-message wire size — the volume that crosses
    the network when the two partitions sit on different machines.
    """
    mat = pgraph.cross_traffic_counts() * message_bytes
    return mat + mat.T


def refine_colocated_placement(
    pgraph,
    placement: np.ndarray,
    topology: Topology,
    network_factor: float = 4.5,
    message_bytes: float = 16.0,
    max_swaps: int | None = None,
) -> np.ndarray:
    """Relieve placement stragglers by intra-pod partition swaps.

    The sketch-driven placement co-locates sibling partitions, which is
    right when sibling traffic dominates (proximity) but stacks *hub*
    partitions — whose traffic is spread over the whole graph — onto one
    machine.  Swapping two partitions between machines *in the same pod*
    does not disturb any bandwidth-critical (cross-pod) decision, so we
    greedily swap the bottleneck machine's partitions with lighter
    partners when that lowers the two machines' worse load.  The load
    model prices both local work and the network traffic of non-co-located
    neighbors, so well-matched sibling pairs are never split.
    """
    placement = np.asarray(placement, dtype=np.int64).copy()
    num_parts = pgraph.num_parts
    local = estimate_partition_costs(pgraph, network_factor=0.0)
    traffic = partition_traffic_matrix(pgraph, message_bytes)
    pods = np.array([topology.pod_of(m) for m in range(topology.num_machines)])
    # Per-machine network slowdown relative to the cluster's typical pair
    # (heterogeneous clusters: a slow NIC doubles that machine's network
    # time, so hot partitions should drift towards fast machines).
    best_peer = np.array([
        max(topology.bandwidth(m, peer)
            for peer in range(topology.num_machines) if peer != m)
        for m in range(topology.num_machines)
    ]) if topology.num_machines > 1 else np.ones(1)
    penalty = best_peer.max() / np.maximum(best_peer, 1e-12)

    def loads(plc: np.ndarray) -> np.ndarray:
        out = np.zeros(topology.num_machines)
        np.add.at(out, plc, local)
        same = plc[:, None] == plc[None, :]
        remote_traffic = np.where(same, 0.0, traffic).sum(axis=1)
        np.add.at(out, plc,
                  network_factor * penalty[plc] * remote_traffic)
        return out

    if max_swaps is None:
        max_swaps = 4 * num_parts
    current = loads(placement)
    for _ in range(max_swaps):
        bottleneck = int(np.argmax(current))
        pod = pods[bottleneck]
        best_placement: np.ndarray | None = None
        best_pair_max = current[bottleneck]
        for p in np.flatnonzero(placement == bottleneck):
            p = int(p)
            for other in np.flatnonzero(pods == pod):
                other = int(other)
                if other == bottleneck:
                    continue
                swaps: list[int | None] = list(
                    int(q) for q in np.flatnonzero(placement == other)
                )
                swaps.append(None)  # plain move, no swap back
                for q in swaps:
                    trial = placement.copy()
                    trial[p] = other
                    if q is not None:
                        trial[q] = bottleneck
                    new = loads(trial)
                    pair_max = max(new[bottleneck], new[other])
                    if pair_max < best_pair_max - 1e-9:
                        best_pair_max = pair_max
                        best_placement = trial
        if best_placement is None:
            break
        placement = best_placement
        current = loads(placement)
    return placement
