"""The machine graph and its bandwidth-aware bisection (Section 4.2).

The machine graph is a complete undirected weighted graph: vertices are
machines, edge weights are pairwise network bandwidth.  The bandwidth-aware
partitioner bisects it minimizing the *weight of cross-partition edges*
(i.e. the aggregate bandwidth between the two halves) subject to equal
halves — so the widest cut in the data graph lands on the machine-set split
with the *least* connecting bandwidth... low-bandwidth boundaries (pod
boundaries) surface at the top of the recursion, keeping later, heavier
exchanges inside pods.

Machine counts are small (tens), so we bisect with multi-restart
Kernighan–Lin swaps, which finds the pod structure exactly on tree
topologies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.cluster.topology import Topology

__all__ = ["MachineGraph", "bisect_machines"]


class MachineGraph:
    """Complete weighted graph over a subset of a topology's machines."""

    def __init__(self, topology: Topology, machines=None):
        self.topology = topology
        if machines is None:
            machines = range(topology.num_machines)
        self.machines = [int(m) for m in machines]
        if len(set(self.machines)) != len(self.machines):
            raise PartitioningError("machine list contains duplicates")
        n = len(self.machines)
        self.weights = np.zeros((n, n))
        for i, a in enumerate(self.machines):
            for j, b in enumerate(self.machines):
                if i != j:
                    self.weights[i, j] = topology.bandwidth(a, b)

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    def cut_weight(self, side: np.ndarray) -> float:
        """Aggregate bandwidth crossing a 0/1 split of local indices."""
        left = np.flatnonzero(side == 0)
        right = np.flatnonzero(side == 1)
        return float(self.weights[np.ix_(left, right)].sum())

    def subset(self, local_indices) -> "MachineGraph":
        """Machine graph restricted to the given local indices."""
        return MachineGraph(
            self.topology, [self.machines[i] for i in local_indices]
        )

    def max_aggregate_bandwidth_machine(self) -> int:
        """Global id of the machine with the largest total bandwidth.

        Used by Algorithm 4 when partitions run out before machines do
        (line 8: "select the machine with the maximum aggregated
        bandwidth").
        """
        totals = self.weights.sum(axis=1)
        return self.machines[int(np.argmax(totals))]


def bisect_machines(
    mgraph: MachineGraph, seed: int = 0, num_restarts: int = 8
) -> tuple[list[int], list[int]]:
    """Split machines into two equal halves minimizing crossing bandwidth.

    Returns ``(left, right)`` as lists of global machine ids.  Odd counts
    put the extra machine on the left.
    """
    n = mgraph.num_machines
    if n < 2:
        raise PartitioningError("need at least two machines to bisect")
    half = n // 2
    rng = np.random.default_rng(seed)
    best_side: np.ndarray | None = None
    best_cut = float("inf")
    for _ in range(max(1, num_restarts)):
        side = np.ones(n, dtype=np.int64)
        side[rng.permutation(n)[: n - half]] = 0
        side, cut = _kl_swaps(mgraph, side)
        if cut < best_cut:
            best_cut = cut
            best_side = side
    assert best_side is not None
    left = [mgraph.machines[i] for i in np.flatnonzero(best_side == 0)]
    right = [mgraph.machines[i] for i in np.flatnonzero(best_side == 1)]
    return left, right


def _kl_swaps(
    mgraph: MachineGraph, side: np.ndarray
) -> tuple[np.ndarray, float]:
    """Greedy pairwise-swap descent on the cut weight."""
    side = side.copy()
    weights = mgraph.weights
    cut = mgraph.cut_weight(side)
    improved = True
    while improved:
        improved = False
        left = np.flatnonzero(side == 0)
        right = np.flatnonzero(side == 1)
        best_gain = 1e-12  # require strictly positive gain
        best_pair: tuple[int, int] | None = None
        for i in left:
            # external/internal weight of i
            ei = weights[i, right].sum()
            ii = weights[i, left].sum() - weights[i, i]
            for j in right:
                ej = weights[j, left].sum()
                ij = weights[j, right].sum() - weights[j, j]
                gain = (ei - ii) + (ej - ij) - 2 * weights[i, j]
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (int(i), int(j))
        if best_pair is not None:
            i, j = best_pair
            side[i], side[j] = 1, 0
            cut -= best_gain
            improved = True
    return side, mgraph.cut_weight(side)
