"""The Surfer engine facade (Section 3, Figure 1).

``Surfer`` owns a partitioned, replicated, placed graph on a simulated
cluster and executes jobs written against either primitive:

* :meth:`Surfer.run_propagation` — iterative propagation with the paper's
  optimization levels (local propagation + local combination on/off) and
  optional cascaded multi-iteration execution;
* :meth:`Surfer.run_mapreduce` — rounds of the home-grown MapReduce.

The four optimization levels of Section 6.3 decompose into two independent
choices reproduced here: the *layout* (bandwidth-aware vs. ParMetis-like
oblivious placement — fixed when the Surfer instance is built) and the
*local optimizations* flag passed per run:

====  ===================  ===================
O     layout               local optimizations
====  ===================  ===================
O1    oblivious            off
O2    bandwidth-aware      off
O3    oblivious            on
O4    bandwidth-aware      on
====  ===================  ===================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import DataLossError, JobError, SchedulingError
from repro.cluster.cluster import Cluster, ClusterMetrics
from repro.cluster.faults import FaultPlan
from repro.cluster.storage import PartitionStore
from repro.core.bandwidth_aware import (
    PartitionPlan,
    bandwidth_aware_partition,
    oblivious_partition,
)
from repro.core.partitioned import PartitionedGraph, RangePartitionedGraph
from repro.core.placement import (
    estimate_partition_costs,
    rebalance_placement,
    refine_colocated_placement,
)
from repro.graph.digraph import Graph
from repro.mapreduce.api import MapReduceApp
from repro.mapreduce.engine import MapReduceEngine, RoundReport
from repro.propagation.api import PropagationApp
from repro.propagation.cascade import (
    cascade_io_fractions,
    compute_cascade_info,
)
from repro.propagation.engine import IterationReport, PropagationEngine
from repro.runtime.checkpoint import CheckpointPolicy, CheckpointStore
from repro.runtime.events import EventStream
from repro.runtime.sanitizer import Sanitizer, sanitize_enabled
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import RecoveryEvent, TaskExecution

__all__ = ["OptimizationLevel", "O1", "O2", "O3", "O4", "ALL_LEVELS",
           "JobResult", "Surfer"]


@dataclass(frozen=True)
class OptimizationLevel:
    """One of the paper's O1–O4 configurations."""

    name: str
    bandwidth_aware_layout: bool
    local_optimizations: bool


O1 = OptimizationLevel("O1", bandwidth_aware_layout=False,
                       local_optimizations=False)
O2 = OptimizationLevel("O2", bandwidth_aware_layout=True,
                       local_optimizations=False)
O3 = OptimizationLevel("O3", bandwidth_aware_layout=False,
                       local_optimizations=True)
O4 = OptimizationLevel("O4", bandwidth_aware_layout=True,
                       local_optimizations=True)
ALL_LEVELS = (O1, O2, O3, O4)


@dataclass
class JobResult:
    """Outcome of one Surfer job.

    ``failed=True`` means the job could not recover (every replica of some
    partition lost and no checkpoint policy — or the restart budget ran
    out); ``result`` is then None and ``error`` says why.  ``restarts``
    counts job-level restarts from checkpoint and ``checkpoints`` the
    committed snapshots, so recovery cost is visible next to the result.
    ``events`` is the job's observability stream: spans for every task
    execution, stage and iteration, instants for every recovery action,
    and the metrics registry the engines and network model wrote into.
    """

    result: Any
    metrics: ClusterMetrics
    reports: list = field(default_factory=list)
    executions: list[TaskExecution] = field(default_factory=list)
    recovery_events: list[RecoveryEvent] = field(default_factory=list)
    failed: bool = False
    error: str | None = None
    events: EventStream | None = None
    restarts: int = 0
    checkpoints: int = 0

    @property
    def response_time(self) -> float:
        return self.metrics.response_time

    @property
    def total_machine_time(self) -> float:
        return self.metrics.total_machine_time


class Surfer:
    """A partitioned graph deployed on a simulated cluster."""

    def __init__(
        self,
        graph: Graph,
        cluster: Cluster,
        num_parts: int | None = None,
        layout: str = "bandwidth-aware",
        seed: int = 0,
        replication: int = 3,
        bisection_options=None,
        plan: PartitionPlan | None = None,
        data=None,
    ):
        self.graph = graph
        self.cluster = cluster
        if num_parts is None:
            num_parts = default_num_parts(cluster.num_machines)
        if plan is None:
            if layout == "bandwidth-aware":
                plan = bandwidth_aware_partition(
                    graph, cluster.topology, num_parts, seed=seed,
                    options=bisection_options, data=data,
                )
            elif layout == "oblivious":
                plan = oblivious_partition(
                    graph, cluster.topology, num_parts, seed=seed,
                    options=bisection_options, data=data,
                )
            else:
                raise JobError(
                    "layout must be 'bandwidth-aware' or 'oblivious'"
                )
        self.plan = plan
        range_offsets = getattr(plan, "range_offsets", None)
        if range_offsets is not None and np.asarray(range_offsets).size:
            # contiguous-range plan (out-of-core path): per-partition
            # structures come from chunked scans, no O(m) edge tables
            self.pgraph: PartitionedGraph | RangePartitionedGraph = (
                RangePartitionedGraph(graph, range_offsets, plan.num_parts))
        else:
            self.pgraph = PartitionedGraph(graph, plan.parts, plan.num_parts)
        # Intra-pod straggler relief: swap partitions between machines of
        # the same pod (bandwidth-neutral) when a machine would otherwise
        # pin the makespan - e.g. a co-located pair of hub partitions.
        plan.placement = refine_colocated_placement(
            self.pgraph, plan.placement, cluster.topology
        )
        replication = min(replication, cluster.num_machines)
        self.store = PartitionStore(
            plan.placement, cluster.num_machines, replication, seed,
            partition_bytes=[self.pgraph.partition_bytes(p)
                             for p in range(self.pgraph.num_parts)],
            topology=cluster.topology,
        )
        # The job manager dispatches each partition's tasks to the least
        # loaded replica holder (bottleneck relief; Appendix B).
        # Dispatch-level relief stays replica-local: non-local execution
        # would drag partitions across pods, which the placement-level
        # refinement above already rules out deliberately.
        self.assignment = rebalance_placement(
            self.store, estimate_partition_costs(self.pgraph)
        )

    # ------------------------------------------------------------------
    @property
    def num_parts(self) -> int:
        return self.pgraph.num_parts

    @property
    def layout(self) -> str:
        return self.plan.method

    # ------------------------------------------------------------------
    def run_propagation(
        self,
        app: PropagationApp,
        iterations: int = 1,
        local_opts: bool = True,
        cascaded: bool = False,
        fault_plan: FaultPlan | None = None,
        until_convergence: bool = False,
        pipelined: bool = False,
        speculation: bool = False,
        vectorized: bool | None = None,
        checkpoint: CheckpointPolicy | None = None,
        frontier: bool = False,
        sanitize: bool | None = None,
    ) -> JobResult:
        """Run ``iterations`` of propagation; returns the app's result.

        ``cascaded=True`` enables the Section 5.2 multi-iteration
        optimization (identical results, reduced intermediate value I/O).
        With ``until_convergence=True``, ``iterations`` becomes an upper
        bound and the loop stops early once the app's ``converged(state)``
        hook returns True (apps without the hook run all iterations).
        ``pipelined=True`` overlaps disk/CPU/network phases across a
        machine's consecutive tasks, ``speculation=True`` launches backup
        copies of straggler tasks (see StageScheduler).  ``vectorized``
        picks the Transfer implementation (None = auto fast path,
        False = scalar oracle, True = require the fast path); both paths
        produce bit-identical results and cost numbers.  ``checkpoint``
        (an enabled :class:`~repro.runtime.checkpoint.CheckpointPolicy`)
        snapshots the state every ``interval`` supersteps and restarts
        the job from the latest committed checkpoint on data loss,
        instead of failing — results stay bit-identical to a fault-free
        run.  ``frontier=True`` (apps with ``uses_frontier``) runs each
        iteration over the app's sparse active set: same messages, same
        results and same ``propagation.*`` counters as the dense run,
        but transfer reads shrink to the frontier slice (with top-down/
        bottom-up direction switching) and per-partition frontier
        summaries are exchanged over the network.  ``sanitize``
        attaches SimSan (the observe-only runtime sanitizer: write-race
        detection, per-superstep shadow counter reconciliation, span
        discipline); None defers to the ``REPRO_SANITIZE`` environment
        variable.
        """
        if iterations < 1:
            raise JobError("iterations must be >= 1")
        converged = getattr(app, "converged", None)
        if until_convergence and converged is None:
            raise JobError(
                f"{app.name}: until_convergence needs a converged() hook"
            )
        if frontier:
            if cascaded:
                raise JobError(
                    "frontier mode is incompatible with cascaded "
                    "propagation (cascading models dense value I/O)"
                )
            if not getattr(app, "uses_frontier", False):
                raise JobError(
                    f"{app.name}: frontier=True requires a frontier app "
                    "(uses_frontier=True with a frontier() hook)"
                )
        self.cluster.reset()
        events = self._event_stream()
        scheduler = StageScheduler(self.cluster, fault_plan, self.store,
                                   pipelined=pipelined,
                                   speculation=speculation,
                                   events=events)
        self._attach_sanitizer(scheduler, sanitize)

        fractions = None
        if cascaded and iterations > 1:
            info = compute_cascade_info(self.pgraph)
            phase = min(info.d_min, iterations)
            fractions = cascade_io_fractions(self.pgraph, info, phase)

        def make_engine() -> PropagationEngine:
            return PropagationEngine(
                self.pgraph, self.store, self.cluster,
                local_opts=local_opts, values_io_fraction=fractions,
                assignment=self.assignment, vectorized=vectorized,
                frontier=frontier,
            )

        def run_step(engine: PropagationEngine, state: Any
                     ) -> tuple[Any, IterationReport]:
            return engine.run_iteration(app, state, scheduler)

        return self._run_job(app, iterations, until_convergence, converged,
                             scheduler, checkpoint, make_engine, run_step)

    def run_mapreduce(
        self,
        app: MapReduceApp,
        rounds: int = 1,
        fault_plan: FaultPlan | None = None,
        until_convergence: bool = False,
        pipelined: bool = False,
        speculation: bool = False,
        vectorized: bool | None = None,
        combiner: bool = False,
        checkpoint: CheckpointPolicy | None = None,
        sanitize: bool | None = None,
    ) -> JobResult:
        """Run ``rounds`` of MapReduce; returns the app's result.

        ``until_convergence``, ``pipelined``, ``speculation`` and
        ``checkpoint`` mirror :meth:`run_propagation` (the checkpoint
        interval counts rounds here), and so does ``vectorized``:
        None = auto array fast path (apps with ``map_array``), False =
        scalar oracle, True = require the fast path; both paths produce
        bit-identical outputs and cost numbers.  ``combiner=True``
        enables Hadoop-style map-side combining (apps must implement
        ``combine``; plus ``combine_ufunc`` for the fast path) — shuffle
        volume shrinks, cpu charges grow, and the pre-combine volume
        stays visible on the round reports.  ``sanitize`` mirrors
        :meth:`run_propagation`.
        """
        if rounds < 1:
            raise JobError("rounds must be >= 1")
        converged = getattr(app, "converged", None)
        if until_convergence and converged is None:
            raise JobError(
                f"{app.name}: until_convergence needs a converged() hook"
            )
        self.cluster.reset()
        events = self._event_stream()
        scheduler = StageScheduler(self.cluster, fault_plan, self.store,
                                   pipelined=pipelined,
                                   speculation=speculation,
                                   events=events)
        self._attach_sanitizer(scheduler, sanitize)

        def make_engine() -> MapReduceEngine:
            return MapReduceEngine(self.pgraph, self.store, self.cluster,
                                   assignment=self.assignment,
                                   vectorized=vectorized,
                                   combiner=combiner)

        def run_step(engine: MapReduceEngine, state: Any
                     ) -> tuple[Any, RoundReport]:
            return engine.run_round(app, state, scheduler)

        return self._run_job(app, rounds, until_convergence, converged,
                             scheduler, checkpoint, make_engine, run_step)

    # ------------------------------------------------------------------
    def _run_job(
        self,
        app: Any,
        steps: int,
        until: bool,
        converged: Callable[[Any], bool] | None,
        scheduler: StageScheduler,
        checkpoint: CheckpointPolicy | None,
        make_engine: Callable[[], Any],
        run_step: Callable[[Any, Any], tuple[Any, Any]],
    ) -> JobResult:
        """The shared driver loop behind both primitives.

        Runs ``steps`` barrier steps with optional checkpointing, and —
        when a :class:`CheckpointPolicy` is enabled — turns
        ``DataLossError`` / ``SchedulingError`` into a bounded sequence
        of restart-from-checkpoint attempts with exponential backoff.
        Without a policy the pre-checkpoint behaviour is preserved
        exactly: data loss yields a clean failed job, scheduling errors
        propagate.
        """
        ckpt: CheckpointStore | None = None
        if checkpoint is not None and checkpoint.enabled:
            ckpt = CheckpointStore(checkpoint, self.pgraph,
                                   scheduler.events)
        state = app.setup(self.pgraph)
        reports: list[Any] = []
        restarts = 0
        completed = 0
        restarting = False
        while True:
            try:
                if restarting:
                    restarting = False
                    assert ckpt is not None
                    completed, state = self._restore(ckpt, scheduler,
                                                     restarts)
                    if state is None:
                        # data was lost before the first checkpoint
                        # committed: restart from scratch
                        state = app.setup(self.pgraph)
                    del reports[completed:]
                if ckpt is not None and ckpt.latest() is None:
                    self._write_checkpoint(ckpt, scheduler, state, 0)
                engine = make_engine()
                while completed < steps:
                    out, report = run_step(engine, state)
                    app.update(state, out)
                    reports.append(report)
                    completed += 1
                    if until and converged is not None and converged(state):
                        break
                    if (ckpt is not None and completed < steps
                            and completed % ckpt.policy.interval == 0):
                        self._write_checkpoint(ckpt, scheduler, state,
                                               completed)
                return JobResult(
                    result=app.finalize(state),
                    metrics=self.cluster.metrics(),
                    reports=reports,
                    executions=scheduler.executions,
                    recovery_events=scheduler.recovery_events,
                    events=scheduler.events,
                    restarts=restarts,
                    checkpoints=len(ckpt.checkpoints) if ckpt else 0,
                )
            except (DataLossError, SchedulingError) as exc:
                if ckpt is None:
                    if isinstance(exc, DataLossError):
                        return self._failed_job(scheduler, reports, exc)
                    raise
                if (restarts >= ckpt.policy.max_restarts
                        or not self.cluster.alive_machines()):
                    reason = JobError(
                        f"restart budget exhausted after {restarts} "
                        f"restart(s): {exc}"
                    ) if self.cluster.alive_machines() else JobError(
                        f"no machines left alive to restart on: {exc}"
                    )
                    return self._failed_job(
                        scheduler, reports, reason, restarts=restarts,
                        checkpoints=len(ckpt.checkpoints),
                    )
                restarts += 1
                restarting = True

    def _write_checkpoint(self, ckpt: CheckpointStore,
                          scheduler: StageScheduler, state: Any,
                          step: int) -> None:
        """Snapshot ``state`` and run the priced checkpoint-write stage.

        The snapshot is committed only after the stage completes; a
        write interrupted by data loss leaves the previous checkpoint as
        the latest consistent one.
        """
        snapshot = ckpt.snapshot_state(state)
        tasks, nbytes = ckpt.write_tasks(self.store, self.assignment, step)
        scheduler.run_stage(tasks)
        ckpt.commit(step, snapshot, nbytes)

    def _restore(self, ckpt: CheckpointStore, scheduler: StageScheduler,
                 attempt: int) -> tuple[int, Any]:
        """One restart attempt: rebuild replicas, reload the checkpoint.

        Survivor replica sets are recomputed from the alive machines;
        partitions that lost every replica come back from the durable
        tier onto the least-loaded survivor; the (placement-aware)
        re-replication then restores the replication factor, and the
        checkpointed state is read back — all as one foreground restore
        stage whose tasks start no earlier than the exponential-backoff
        deadline.  Returns ``(step, state)`` to resume from, with
        ``state=None`` when no checkpoint had committed yet.
        """
        cluster = self.cluster
        chk = ckpt.latest()
        step = chk.step if chk is not None else 0
        backoff = ckpt.policy.backoff(attempt)
        now = max((m.clock for m in cluster.machines), default=0.0)
        ready = now + backoff
        metrics = scheduler.events.metrics
        metrics.add("checkpoint.restart_attempts")
        metrics.add("checkpoint.backoff_seconds", backoff)
        scheduler.note_recovery(
            ready, "job-restart",
            task=f"from checkpoint @ superstep {step}",
        )

        alive = cluster.alive_machines()
        alive_set = set(alive)
        old = self.store
        load = {m: 0 for m in alive}
        sets: list[list[int]] = []
        restored: list[int] = []
        for p in range(old.num_partitions):
            survivors = [m for m in old.replicas(p) if m in alive_set]
            for m in survivors:
                load[m] += 1
            sets.append(survivors)
        for p, survivors in enumerate(sets):
            if not survivors:
                dst = min(alive, key=lambda m: (load[m], m))
                survivors.append(dst)
                load[dst] += 1
                restored.append(p)
        dead = set(range(cluster.num_machines)) - alive_set
        new_store = PartitionStore.from_replica_sets(
            sets, cluster.num_machines, old.replication,
            partition_bytes=old.partition_bytes,
            failed=dead,
            topology=cluster.topology,
        )
        copies = new_store.re_replicate(alive)
        self.store = new_store
        scheduler.store = new_store
        self.assignment = rebalance_placement(
            new_store, estimate_partition_costs(self.pgraph)
        )
        tasks, state_bytes, durable_bytes = ckpt.restore_tasks(
            new_store, self.assignment, restored, copies, ready
        )
        scheduler.run_stage(tasks)  # may raise -> next restart attempt
        metrics.add("checkpoint.restores")
        metrics.add("checkpoint.bytes_read", state_bytes + durable_bytes)
        metrics.add("checkpoint.restored_partitions", len(restored))
        scheduler.data_loss = None
        if chk is None:
            return 0, None
        return chk.step, ckpt.snapshot_state(chk.state)

    def _attach_sanitizer(self, scheduler: StageScheduler,
                          sanitize: bool | None) -> None:
        """Attach SimSan to a fresh scheduler when the run opts in.

        The writable-view audit of the shard-backed graph runs here,
        before any stage executes, so a mis-served store fails the job
        at attach time rather than corrupting a run.
        """
        if not sanitize_enabled(sanitize):
            return
        sanitizer = Sanitizer()
        sanitizer.check_graph(self.graph)
        scheduler.sanitizer = sanitizer

    def _event_stream(self) -> EventStream:
        """A fresh per-job observability stream, bound to the network.

        The network model holds a reference to the *current* job's
        metrics registry; rebinding per run keeps a finished
        :class:`JobResult`'s stream frozen while the cluster is reused.
        """
        events = EventStream()
        self.cluster.network.metrics = events.metrics
        return events

    def _failed_job(self, scheduler: StageScheduler, reports: list,
                    exc: Exception, restarts: int = 0,
                    checkpoints: int = 0) -> JobResult:
        """A clean failed-job result after unrecoverable data loss."""
        return JobResult(
            result=None,
            metrics=self.cluster.metrics(),
            reports=reports,
            executions=scheduler.executions,
            recovery_events=scheduler.recovery_events,
            failed=True,
            error=str(exc),
            events=scheduler.events,
            restarts=restarts,
            checkpoints=checkpoints,
        )


def default_num_parts(num_machines: int) -> int:
    """Two partitions per machine, rounded up to a power of two.

    The paper uses 64 partitions on 32 machines (2 GB partitions on 8 GB
    machines); two-per-machine keeps that ratio at any cluster size.
    """
    target = max(2, 2 * num_machines)
    return 1 << (target - 1).bit_length()
