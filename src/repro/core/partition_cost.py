"""Elapsed-time model of *distributed* graph partitioning (Table 1).

Each bisection at sketch level ``l`` runs on the machine set assigned to
that node, over ``graph_bytes / 2**l`` bytes of graph data, and costs:

* **compute** — ``coarsen_passes`` effective passes over the group's data,
  parallel across the group's machines;
* **exchange** — the coarsening/refinement rounds communicate a
  ``comm_fraction`` of the group's data all-to-all among the group (matching
  and boundary exchanges are neighborhood-heavy, so this dominates on slow
  links);
* **redistribution** — after the cut, half the group's data crosses to the
  machines of the other side.

The 2**l groups of one level run in parallel, so a level costs its slowest
group and levels run back-to-back.  Once a group is a single machine the
remaining bisections are local (compute only).

The *only* difference between the bandwidth-aware partitioner and the
ParMetis-like baseline is the machine sets: bandwidth-aware sets align with
pods below the top level (exchange at intra-pod speed), oblivious sets
straddle pods at every level — which is exactly why Table 1 shows them tied
on T1 and 39–55 % apart on T2/T3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import NetworkModel
from repro.cluster.topology import Topology

__all__ = ["PartitioningCostModel", "PartitioningCostReport",
           "simulate_partitioning_time"]


@dataclass(frozen=True)
class PartitioningCostModel:
    """Cost constants of the distributed multilevel partitioner."""

    coarsen_passes: float = 3.0
    cpu_bytes_per_sec: float = 50_000_000.0
    comm_fraction: float = 0.5
    include_redistribution: bool = True


@dataclass
class PartitioningCostReport:
    """Per-level and total simulated elapsed time."""

    total_seconds: float
    level_seconds: list[float] = field(default_factory=list)
    compute_seconds: float = 0.0
    exchange_seconds: float = 0.0
    redistribution_seconds: float = 0.0


def simulate_partitioning_time(
    graph_bytes: float,
    machine_sets: dict[tuple[int, int], list[int]],
    topology: Topology,
    model: PartitioningCostModel | None = None,
) -> PartitioningCostReport:
    """Simulate the elapsed time of one full recursive partitioning.

    ``machine_sets`` comes from :func:`repro.core.bandwidth_aware.
    build_machine_tree` (or its random counterpart) and must cover levels
    ``0 .. L``.
    """
    model = model or PartitioningCostModel()
    network = NetworkModel(topology)
    num_levels = max(level for level, _ in machine_sets)
    report = PartitioningCostReport(total_seconds=0.0)

    for level in range(num_levels):
        level_time = 0.0
        for prefix in range(1 << level):
            group = machine_sets[(level, prefix)]
            data_bytes = graph_bytes / (1 << level)
            compute = (model.coarsen_passes * data_bytes
                       / (len(group) * model.cpu_bytes_per_sec))
            exchange = 0.0
            redistribution = 0.0
            if len(group) > 1:
                per_pair = (model.comm_fraction * data_bytes
                            / (len(group) * (len(group) - 1)))
                exchange = network.all_to_all_time(group, per_pair)
                if model.include_redistribution:
                    left = machine_sets[(level + 1, 2 * prefix)]
                    right = machine_sets[(level + 1, 2 * prefix + 1)]
                    if set(left) != set(right):
                        redistribution = network.cross_exchange_time(
                            left, right, data_bytes / 2
                        )
            group_time = compute + exchange + redistribution
            if group_time > level_time:
                level_time = group_time
            report.compute_seconds += compute
            report.exchange_seconds += exchange
            report.redistribution_seconds += redistribution
        report.level_seconds.append(level_time)
        report.total_seconds += level_time
    return report
