"""Single-iteration propagation execution (Algorithm 5) with optimizations.

One iteration is two barrier stages per partition:

* **Transfer** — scan the partition's adjacency, call ``transfer`` on each
  out-edge of each selected vertex, route the messages:

  - destination in the same partition and *inner* vertex: with local
    optimizations the combine runs immediately in memory (*local
    propagation*) — no intermediate disk I/O;
  - destination in the same partition but *boundary* vertex: spilled to
    local disk to wait for remote arrivals;
  - destination in a remote partition: grouped per remote partition; with
    an associative combine the group is merged first (*local combination*)
    so one value per distinct destination crosses the network; sends to a
    partition co-located on the same machine are free.

* **Combine** — stage the arrivals to disk, fold them with ``combine``,
  write the outputs.

Without local optimizations (levels O1/O2) every message is materialized
to disk and every cross-partition message crosses the network unmerged —
which is exactly the traffic gap Tables 2 and 3 measure.

**Frontier mode** (``frontier=True``, for apps with ``uses_frontier``)
scans only each partition's active vertices per iteration: the Transfer
read is priced by a top-down/bottom-up direction switch keyed on
frontier density (Buluç–Madduri), and each partition announces its
frontier summary (bitmap or index array, whichever is smaller) to the
other machines through the regular send path.  Message products, cpu
charges and all ``propagation.*`` counters stay bit-identical to the
dense path — only the transfer-task disk reads shrink and the
``frontier.*`` counters/exchange traffic appear.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.storage import PartitionStore
from repro.errors import JobError
from repro.graph.io import DEGREE_BYTES, VALUE_BYTES, VERTEX_ID_BYTES
from repro.hashing import stable_hash
from repro.propagation.api import MessageBox, PropagationApp, fold_by_dest
from repro.runtime.events import wall_timer
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import StageResult, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioned import PartitionedGraph

__all__ = ["IterationReport", "PropagationEngine", "virtual_partition"]


def virtual_partition(key: object, num_parts: int) -> int:
    """Deterministic partition of a virtual vertex key (hash routing).

    Uses :func:`repro.hashing.stable_hash`, never the salted built-in
    ``hash`` — re-executed tasks and sibling processes must route a key
    identically regardless of ``PYTHONHASHSEED``.
    """
    return stable_hash(key) % num_parts


@dataclass
class IterationReport:
    """Cost breakdown of one propagation iteration.

    The ``frontier_*`` fields are populated only in frontier mode: the
    total active vertices scanned, the frontier-summary bytes exchanged
    between machines, the per-partition top-down/bottom-up direction
    flips relative to the previous iteration, and the number of
    partitions scanned bottom-up.
    """

    transfer_stage: StageResult
    combine_stage: StageResult
    messages_emitted: int = 0
    messages_shipped: int = 0
    network_bytes: float = 0.0
    spill_bytes: float = 0.0
    locally_propagated: int = 0
    frontier_active: int = 0
    frontier_exchange_bytes: float = 0.0
    frontier_direction_switches: int = 0
    frontier_bottom_up_scans: int = 0

    @property
    def elapsed(self) -> float:
        return self.combine_stage.end_time - self.transfer_stage.start_time


@dataclass
class _FrontierInfo:
    """Frontier-mode plan for one partition in one iteration.

    ``active`` holds the partition's active vertices ascending — the
    same enumeration order as the dense path's select-filtered scan, so
    both paths emit the identical message sequence.  ``read_bytes``
    prices the planned scan (frontier-row gather or full sequential
    scan) and replaces the dense transfer-task read; ``resident_bytes``
    is the matching working set for the memory-penalty rule.
    ``exchange_sends`` carries the frontier summary to every other
    machine hosting partitions, priced through the regular Task send
    path so ``reconcile()`` stays exact.
    """

    active: np.ndarray
    direction: str
    read_bytes: float
    resident_bytes: float
    summary_bytes: float
    exchange_sends: list[tuple[int, float]]
    switched: bool


@dataclass
class _PartitionTransfer:
    """Intermediate products of one partition's Transfer stage."""

    inner_combined: dict = field(default_factory=dict)
    boundary_box: MessageBox | None = None
    cross_boxes: dict[int, MessageBox] = field(default_factory=dict)
    spill_bytes: float = 0.0
    cpu_ops: float = 0.0
    output_bytes: float = 0.0
    messages: int = 0
    locally_propagated: int = 0


class PropagationEngine:
    """Executes propagation iterations on a partitioned graph."""

    #: Random-access multiplier for top-down frontier gathers: reading
    #: the adjacency rows of scattered active vertices costs this factor
    #: over a sequential scan of the same bytes.  The direction switch
    #: compares the penalized top-down gather against one full
    #: sequential (bottom-up) scan — the Buluç–Madduri/Beamer frontier
    #: density criterion expressed in bytes.
    RANDOM_GATHER_FACTOR = 4.0

    def __init__(
        self,
        pgraph: PartitionedGraph,
        store: PartitionStore,
        cluster: Cluster,
        local_opts: bool = True,
        values_io_fraction: np.ndarray | None = None,
        assignment: np.ndarray | None = None,
        vectorized: bool | None = None,
        frontier: bool = False,
    ) -> None:
        """``values_io_fraction[p]`` scales the per-iteration value I/O of
        partition ``p`` (used by cascaded propagation to model skipped
        intermediate reads/writes).  ``assignment[p]`` is the machine the
        job manager dispatches partition ``p``'s tasks to (must hold a
        replica); defaults to the primaries.  ``vectorized`` selects the
        Transfer implementation: ``None`` takes the array fast path when
        the app supports it, ``False`` forces the scalar path (the
        equivalence oracle), ``True`` requires the fast path and raises
        :class:`JobError` if the app cannot take it.  ``frontier=True``
        enables sparse active-set execution for apps with
        ``uses_frontier = True``: each iteration scans only the app's
        active mask, prices the Transfer read by the chosen scan
        direction, and exchanges per-partition frontier summaries —
        message products and all ``propagation.*`` counters stay
        bit-identical to the dense path."""
        self.pgraph = pgraph
        self.store = store
        self.cluster = cluster
        self.local_opts = local_opts
        self.vectorized = vectorized
        self.frontier = frontier
        if values_io_fraction is None:
            values_io_fraction = np.ones(pgraph.num_parts)
        self.values_io_fraction = values_io_fraction
        if assignment is None:
            assignment = store.placement_array()
        self.assignment = np.asarray(assignment, dtype=np.int64)
        #: per-partition scan direction of the previous iteration
        #: (frontier mode); reset with the engine on job restart, which
        #: keeps the switch counter deterministic along the restart path.
        self._directions: dict[int, str] = {}
        self._out_degrees: np.ndarray | None = None

    def machine_of(self, partition: int) -> int:
        return int(self.assignment[partition])

    def _memory_penalty(self, machine: int, working_set: float) -> float:
        """Random-I/O slowdown when the working set exceeds memory (P2)."""
        spec = self.cluster.machine(machine).spec
        if working_set > spec.memory_bytes:
            return spec.random_io_penalty
        return 1.0

    # ------------------------------------------------------------------
    def run_iteration(
        self,
        app: PropagationApp,
        state: Any,
        scheduler: StageScheduler,
    ) -> tuple[dict, IterationReport]:
        """Execute one iteration; returns (combined results, report)."""
        num_parts = self.pgraph.num_parts
        timer = wall_timer()
        finfos = self._plan_frontier(app, state) if self.frontier else None

        def finfo(p: int) -> _FrontierInfo | None:
            return finfos[p] if finfos is not None else None

        transfers = [
            self._run_transfer_udfs(app, state, p, finfo(p))
            for p in range(num_parts)
        ]
        transfer_tasks = [
            self._transfer_task(app, p, transfers[p], finfo(p))
            for p in range(num_parts)
        ]
        transfer_wall = timer.elapsed()
        transfer_result = scheduler.run_stage(transfer_tasks)

        timer = wall_timer()
        inboxes, inbox_sources = self._route(app, transfers)
        combined: dict = {}
        combine_tasks: list[Task] = []
        for p in range(num_parts):
            task, part_combined = self._run_combine(
                app, state, p, inboxes[p], inbox_sources[p], transfers[p]
            )
            combine_tasks.append(task)
            combined.update(part_combined)
        combine_wall = timer.elapsed()
        combine_result = scheduler.run_stage(combine_tasks)

        if self.local_opts:
            for t in transfers:
                combined.update(t.inner_combined)

        network_bytes = sum(
            box.payload_bytes(app)
            for t in transfers
            for q, box in t.cross_boxes.items()
        )
        # Cross boxes are merged only when local optimizations are on
        # (mirrors the MessageBox merge condition above): at O1/O2 an
        # associative app still ships every raw message.
        total_shipped = sum(
            len(box) if app.is_associative and self.local_opts
            else box.message_count()
            for t in transfers
            for box in t.cross_boxes.values()
        )
        report = IterationReport(
            transfer_stage=transfer_result,
            combine_stage=combine_result,
            messages_emitted=sum(t.messages for t in transfers),
            messages_shipped=total_shipped,
            network_bytes=network_bytes,
            spill_bytes=sum(t.spill_bytes for t in transfers),
            locally_propagated=sum(t.locally_propagated for t in transfers),
        )
        if finfos is not None:
            report.frontier_active = sum(
                int(i.active.size) for i in finfos)
            report.frontier_exchange_bytes = sum(
                nbytes for i in finfos for _, nbytes in i.exchange_sends)
            report.frontier_direction_switches = sum(
                1 for i in finfos if i.switched)
            report.frontier_bottom_up_scans = sum(
                1 for i in finfos if i.direction == "bottom-up")
        self._observe_iteration(scheduler, report,
                                transfer_wall + combine_wall)
        return combined, report

    def _observe_iteration(self, scheduler: StageScheduler,
                           report: IterationReport,
                           udf_wall_seconds: float) -> None:
        """Record the iteration's span and metrics on the job's stream.

        The UDF wall time (running transfer/combine in Python, outside
        the simulated cost model) lands on the iteration span and the
        ``wall.udf_seconds`` counter, keeping simulator overhead
        separable from simulated cost.
        """
        stream = scheduler.events
        iteration = int(stream.metrics.get("propagation.iterations"))
        stream.emit(
            name=f"iteration[{iteration}]",
            kind="iteration",
            start=report.transfer_stage.start_time,
            end=report.combine_stage.end_time,
            wall_self_seconds=udf_wall_seconds,
        )
        m = stream.metrics
        m.add("propagation.iterations")
        m.add("propagation.messages_emitted", report.messages_emitted)
        m.add("propagation.messages_shipped", report.messages_shipped)
        m.add("propagation.network_bytes", report.network_bytes)
        m.add("propagation.spill_bytes", report.spill_bytes)
        m.add("propagation.locally_propagated", report.locally_propagated)
        if self.frontier:
            m.add("frontier.active", report.frontier_active)
            m.add("frontier.exchange_bytes",
                  report.frontier_exchange_bytes)
            m.add("frontier.direction_switches",
                  report.frontier_direction_switches)
            m.add("frontier.bottom_up_scans",
                  report.frontier_bottom_up_scans)
        m.add("wall.udf_seconds", udf_wall_seconds)
        if scheduler.sanitizer is not None:
            scheduler.sanitizer.on_superstep(stream, scheduler.cluster)

    # ------------------------------------------------------------------
    # Frontier mode (sparse active sets)
    # ------------------------------------------------------------------
    def _plan_frontier(
        self, app: PropagationApp, state: Any
    ) -> list[_FrontierInfo]:
        """Per-partition frontier plan: active slice, direction, pricing.

        The scan direction is chosen by comparing priced reads: top-down
        gathers exactly the active vertices' adjacency rows and values
        at random-access cost (``RANDOM_GATHER_FACTOR``×), bottom-up
        scans the whole partition sequentially once.  Dense frontiers
        therefore flip to bottom-up and sparse ones stay top-down —
        frontier density keys the switch, in byte form.  The frontier
        summary each partition announces to remote machines is the
        smaller of a vertex bitmap and an index array of the active ids.
        """
        if not app.uses_frontier:
            raise JobError(
                f"{app.name}: frontier mode requires a frontier app "
                "(uses_frontier=True with a frontier() hook)"
            )
        if app.uses_virtual_vertices:
            raise JobError(
                f"{app.name}: frontier mode does not support "
                "virtual-vertex apps"
            )
        pg = self.pgraph
        mask = np.asarray(app.frontier(state))
        if mask.dtype != np.bool_ or mask.shape != (pg.num_vertices,):
            raise JobError(
                f"{app.name}: frontier() must return a boolean mask "
                "over all vertices"
            )
        if self._out_degrees is None:
            self._out_degrees = pg.graph.out_degrees()
        deg = self._out_degrees
        machines = sorted({self.machine_of(p)
                           for p in range(pg.num_parts)})
        infos: list[_FrontierInfo] = []
        for p in range(pg.num_parts):
            verts = pg.partition_vertices[p]
            active = verts[mask[verts]]
            n_p = int(verts.size)
            m_f = int(deg[active].sum()) if active.size else 0
            row_bytes = float(
                active.size * (VERTEX_ID_BYTES + DEGREE_BYTES)
                + m_f * VERTEX_ID_BYTES
                + active.size * VALUE_BYTES
            )
            top_down = self.RANDOM_GATHER_FACTOR * row_bytes
            bottom_up = float(pg.partition_bytes(p) + n_p * VALUE_BYTES)
            if active.size and top_down >= bottom_up:
                direction = "bottom-up"
                read_bytes = bottom_up
                resident = bottom_up
            else:
                direction = "top-down"
                read_bytes = top_down
                resident = row_bytes
            prev = self._directions.get(p)
            switched = prev is not None and prev != direction
            self._directions[p] = direction
            summary = float(min((n_p + 7) // 8,
                                active.size * VERTEX_ID_BYTES))
            mine = self.machine_of(p)
            exchange = ([(m, summary) for m in machines if m != mine]
                        if summary > 0 else [])
            infos.append(_FrontierInfo(
                active=active,
                direction=direction,
                read_bytes=read_bytes,
                resident_bytes=resident,
                summary_bytes=summary,
                exchange_sends=exchange,
                switched=switched,
            ))
        return infos

    # ------------------------------------------------------------------
    # Transfer stage
    # ------------------------------------------------------------------
    def _run_transfer_udfs(
        self, app: PropagationApp, state: Any, p: int,
        finfo: _FrontierInfo | None = None,
    ) -> _PartitionTransfer:
        """Run the transfer UDFs of partition ``p`` and route messages.

        Dispatches between the vectorized fast path (array-at-a-time CSR
        scan; bit-identical products) and the scalar per-edge loop.  In
        frontier mode (``finfo`` given) both paths scan exactly the
        planned active vertices — the mask is authoritative and must
        agree with ``select`` (the UDF002 frontier contract), which is
        what keeps frontier and dense runs message-for-message
        identical.
        """
        if self._fast_path_ok(app):
            result = self._run_transfer_vectorized(app, state, p, finfo)
            if result is not None:
                return result
            if self.vectorized:
                raise JobError(
                    f"{app.name}: vectorized Transfer requested but "
                    "transfer_array() declined"
                )
        elif self.vectorized:
            raise JobError(
                f"{app.name}: vectorized Transfer requested but the app "
                "does not support the fast path"
            )
        return self._run_transfer_scalar(app, state, p, finfo)

    def _fast_path_ok(self, app: PropagationApp) -> bool:
        """Whether the app qualifies for the array Transfer fast path."""
        if self.vectorized is False:
            return False
        cls = type(app)
        if cls.transfer_array is PropagationApp.transfer_array:
            return False  # hook not implemented
        if app.uses_virtual_vertices:
            return False
        if (cls.select is not PropagationApp.select
                and cls.select_array is PropagationApp.select_array):
            return False  # scalar select overridden without array twin
        if self.local_opts and app.is_associative and app.merge_ufunc is None:
            return False  # merged boxes need a NumPy-expressible merge
        return True

    def _run_transfer_vectorized(
        self, app: PropagationApp, state: Any, p: int,
        finfo: _FrontierInfo | None = None,
    ) -> _PartitionTransfer | None:
        """Array-at-a-time Transfer of partition ``p``.

        Replays the scalar path's routing, merging and cost accounting as
        CSR-slice operations: one ``transfer_array`` call over the
        partition's (selected) out-edges, destination-partition grouping
        via ``parts[dst]``, inner/boundary splitting via
        ``boundary_mask``, per-destination merging via input-order folds
        (:meth:`MessageBox.from_arrays`).  Products — messages, byte
        counts, cpu ops — are bit-identical to the scalar path.
        """
        pg = self.pgraph
        verts = pg.partition_vertices[p]
        if finfo is not None:
            # the frontier plan already filtered the partition's active
            # vertices (ascending — the dense scan's enumeration order)
            src, dst = pg.partition_out_edges(p, finfo.active)
        else:
            mask = app.select_array(verts, state)
            if mask is None:  # select-all hits the cached gather
                src, dst = pg.partition_out_edges(p)
            else:
                selected = verts[np.asarray(mask, dtype=bool)]
                src, dst = pg.partition_out_edges(p, selected)
        values = app.transfer_array(src, dst, state)
        if values is None:
            return None
        values = np.asarray(values)

        merge = app.merge if app.is_associative else None
        box_merge = merge if self.local_opts else None
        ufunc = app.merge_ufunc if box_merge is not None else None

        result = _PartitionTransfer()
        m = int(src.size)
        result.messages = m
        # scalar parity: +1 per scanned edge, +1 per routed message.
        # This collapses to 2m only because every scanned edge routes a
        # message: transfer_array cannot express per-edge None, so apps
        # whose scalar transfer() may return None must decline the fast
        # path (return None from transfer_array) or the scalar path's
        # edges_scanned + messages_routed charge would diverge from
        # this one (see tests/test_observability.py::TestNoneTransferContract).
        result.cpu_ops += 2.0 * m

        dest_parts = pg.parts[dst]
        local = dest_parts == p
        if self.local_opts:
            inner = local & ~pg.boundary_mask[dst]
            bnd = local & ~inner
        else:
            inner = np.zeros(m, dtype=bool)
            bnd = local

        result.boundary_box = MessageBox.from_arrays(
            dst[bnd], values[bnd], merge=box_merge, ufunc=ufunc
        )

        cross_idx = np.flatnonzero(~local)
        if cross_idx.size:
            self._build_cross_boxes(
                result, dst[cross_idx], values[cross_idx],
                box_merge, ufunc,
            )
            if self.local_opts and merge is not None:
                result.cpu_ops += float(cross_idx.size)  # the merge work

        # Local propagation: combine inner vertices now, in memory.
        if self.local_opts:
            inner_idx = np.flatnonzero(inner)
            if inner_idx.size:
                order = np.argsort(dst[inner_idx], kind="stable")
                ii = inner_idx[order]
                d = dst[ii]
                v = values[ii]
                cuts = np.flatnonzero(d[1:] != d[:-1]) + 1
                starts = np.concatenate(([0], cuts)).tolist()
                ends = np.concatenate((cuts, [d.size])).tolist()
                dlist = d.tolist()
                vlist = v.tolist()
                combine = app.combine
                result_nbytes = app.result_nbytes
                inner_combined = result.inner_combined
                cpu_ops = 0.0
                output_bytes = 0.0
                for s, e in zip(starts, ends):
                    dest = dlist[s]
                    bag = vlist[s:e]
                    out = combine(dest, bag, state)
                    cpu_ops += len(bag) + 1.0
                    if out is not None:
                        inner_combined[dest] = out
                        output_bytes += result_nbytes(dest, out)
                # the increments are integer-valued floats, so summing
                # them out of line is still exact
                result.cpu_ops += cpu_ops
                result.output_bytes += output_bytes
                result.locally_propagated = len(starts)

        result.spill_bytes = result.boundary_box.payload_bytes(app)
        return result

    def _build_cross_boxes(
        self,
        result: _PartitionTransfer,
        dests: np.ndarray,
        values: np.ndarray,
        box_merge: Any,
        ufunc: Any,
    ) -> None:
        """Group cross-partition messages into per-destination boxes.

        One pass over the whole cross set: a destination vertex
        determines its partition, so merging by destination globally and
        splitting the merged rows by ``parts[dest]`` afterwards yields
        exactly the per-partition boxes the scalar path builds — without
        one sort/unique per remote partition.
        """
        pg = self.pgraph
        if box_merge is not None:
            uniq, merged, counts = fold_by_dest(dests, values, ufunc)
            qs = pg.parts[uniq]
            order = np.argsort(qs, kind="stable")
            uniq, merged, counts, qs = (uniq[order], merged[order],
                                        counts[order], qs[order])
            cuts = np.flatnonzero(qs[1:] != qs[:-1]) + 1
            starts = np.concatenate(([0], cuts)).tolist()
            ends = np.concatenate((cuts, [qs.size])).tolist()
            keys = uniq.tolist()
            vals = merged.tolist()
            cnts = counts.tolist()
            qlist = qs.tolist()
            for s, e in zip(starts, ends):
                box = MessageBox(merge=box_merge)
                box.data = dict(zip(keys[s:e], vals[s:e]))
                box.counts = dict(zip(keys[s:e], cnts[s:e]))
                result.cross_boxes[qlist[s]] = box
            return
        order = np.argsort(dests, kind="stable")
        d = dests[order]
        v = values[order]
        cuts = np.flatnonzero(d[1:] != d[:-1]) + 1
        starts = np.concatenate(([0], cuts)).tolist()
        ends = np.concatenate((cuts, [d.size])).tolist()
        dlist = d.tolist()
        vlist = v.tolist()
        qlist = pg.parts[d[starts]].tolist()
        cross_boxes = result.cross_boxes
        for s, e, q in zip(starts, ends, qlist):
            dest = dlist[s]
            box = cross_boxes.get(q)
            if box is None:
                box = MessageBox(merge=None)
                cross_boxes[q] = box
            box.data[dest] = vlist[s:e]
            box.counts[dest] = e - s

    def _run_transfer_scalar(
        self, app: PropagationApp, state: Any, p: int,
        finfo: _FrontierInfo | None = None,
    ) -> _PartitionTransfer:
        """Per-edge Transfer of partition ``p`` (fallback and oracle).

        In frontier mode the loop walks the planned active vertices
        directly and skips the per-vertex ``select`` call — the dense
        path charges nothing for that call, so as long as ``select``
        agrees with the mask (the frontier contract) the two paths emit
        identical messages with identical cpu charges.
        """
        pg = self.pgraph
        result = _PartitionTransfer()
        merge = app.merge if app.is_associative else None
        # Local messages: merged eagerly for inner vertices under local
        # optimizations (local propagation needs no associativity — all of
        # an inner vertex's messages originate in this very task).
        inner_box = MessageBox(merge=None)
        # Messages to local boundary vertices must wait for remote
        # arrivals, but an associative combine lets them collapse to one
        # partial per destination before spilling (local combination,
        # destination side).
        boundary_box = MessageBox(
            merge=merge if self.local_opts else None
        )
        result.boundary_box = boundary_box

        def route(dest_partition: int, dest, value) -> None:
            result.messages += 1
            result.cpu_ops += 1.0
            if dest_partition == p and not app.uses_virtual_vertices:
                if self.local_opts and pg.is_inner(dest):
                    inner_box.add(dest, value)
                else:
                    boundary_box.add(dest, value)
                return
            if dest_partition == p:
                # virtual key hashed to the local partition: still local
                boundary_box.add(dest, value)
                return
            box = result.cross_boxes.get(dest_partition)
            if box is None:
                box = MessageBox(merge=merge if self.local_opts else None)
                result.cross_boxes[dest_partition] = box
            box.add(dest, value)
            if self.local_opts and merge is not None:
                result.cpu_ops += 1.0  # the merge work

        if app.uses_virtual_vertices:
            for u in pg.partition_vertices[p]:
                u = int(u)
                result.cpu_ops += 1.0
                if not app.select(u, state):
                    continue
                for key, value in app.virtual_transfer(u, state):
                    route(virtual_partition(key, pg.num_parts), key, value)
        else:
            graph = pg.graph
            parts = pg.parts
            vertex_iter = (finfo.active if finfo is not None
                           else pg.partition_vertices[p])
            for u in vertex_iter:
                u = int(u)
                if finfo is None and not app.select(u, state):
                    continue
                for v in graph.out_neighbors(u):
                    v = int(v)
                    result.cpu_ops += 1.0
                    value = app.transfer(u, v, state)
                    if value is not None:
                        route(int(parts[v]), v, value)

        # Local propagation: combine inner vertices now, in memory.
        if self.local_opts and not app.uses_virtual_vertices:
            for v, values in inner_box.data.items():
                out = app.combine(v, values, state)
                result.cpu_ops += len(values) + 1.0
                if out is not None:
                    result.inner_combined[v] = out
                    result.output_bytes += app.result_nbytes(v, out)
            result.locally_propagated = len(inner_box.data)
        elif not self.local_opts:
            # no local propagation: inner-destination messages spill too
            for v, values in inner_box.data.items():
                for value in values:
                    boundary_box.add(v, value)

        result.spill_bytes = boundary_box.payload_bytes(app)
        return result

    def _transfer_task(
        self, app: PropagationApp, p: int, t: _PartitionTransfer,
        finfo: _FrontierInfo | None = None,
    ) -> Task:
        pg = self.pgraph
        machine = self.machine_of(p)
        sends: list[tuple[int, float]] = []
        for q, box in sorted(t.cross_boxes.items()):
            nbytes = box.payload_bytes(app)
            if nbytes > 0:
                sends.append((self.machine_of(q), nbytes))
        if finfo is None:
            # Cascaded phases evaluate the cascadable vertices'
            # iterations in one scan of the partition: both the
            # adjacency and the value reads of iterations inside a
            # phase shrink by the fraction.
            io_fraction = float(self.values_io_fraction[p])
            values_bytes = pg.partition_size(p) * VALUE_BYTES * io_fraction
            disk_read = pg.partition_bytes(p) * io_fraction + values_bytes
            resident = pg.partition_bytes(p) + values_bytes
        else:
            # Frontier mode (cascading is disallowed): read what the
            # planned scan direction needs, and announce the frontier
            # summary to every other machine — both priced through the
            # regular task accounting so reconcile() stays exact.
            disk_read = finfo.read_bytes
            resident = finfo.resident_bytes
            sends.extend(finfo.exchange_sends)
        fetches: list[tuple[int, float]] = []
        if machine not in self.store.replicas(p):
            # non-local dispatch: pull the partition from its primary
            fetches.append((self.store.primary(p),
                            float(pg.partition_bytes(p))))
        working_set = resident + t.spill_bytes
        return Task(
            name=f"transfer[{p}]",
            machine=machine,
            kind="transfer",
            partition=p,
            disk_read_bytes=disk_read,
            cpu_ops=t.cpu_ops,
            disk_write_bytes=t.spill_bytes + t.output_bytes,
            sends=sends,
            fetches=fetches,
            disk_penalty=self._memory_penalty(machine, working_set),
        )

    # ------------------------------------------------------------------
    # Combine stage
    # ------------------------------------------------------------------
    def _route(
        self, app: PropagationApp, transfers: list[_PartitionTransfer]
    ) -> tuple[list[MessageBox], list[dict[int, float]]]:
        """Deliver cross boxes; returns per-partition inbox and the bytes
        received from each source partition (for failure re-fetch)."""
        num_parts = self.pgraph.num_parts
        inboxes = [MessageBox(merge=None) for _ in range(num_parts)]
        sources: list[dict[int, float]] = [{} for _ in range(num_parts)]
        for p, t in enumerate(transfers):
            # spilled local (boundary) messages
            assert t.boundary_box is not None
            for dest in t.boundary_box.data:
                for value in t.boundary_box.values_of(dest):
                    inboxes[p].add(dest, value)
            for q, box in t.cross_boxes.items():
                nbytes = box.payload_bytes(app)
                if nbytes > 0:
                    sources[q][p] = sources[q].get(p, 0.0) + nbytes
                for dest, stored in box.data.items():
                    for value in box.values_of(dest):
                        inboxes[q].add(dest, value)
        return inboxes, sources

    def _run_combine(
        self,
        app: PropagationApp,
        state: Any,
        p: int,
        inbox: MessageBox,
        sources: dict[int, float],
        transfer: _PartitionTransfer,
    ) -> tuple[Task, dict]:
        pg = self.pgraph
        combined: dict = {}
        cpu_ops = 0.0
        output_bytes = 0.0

        if app.uses_virtual_vertices:
            for key, values in inbox.data.items():
                out = app.virtual_combine(key, values, state)
                cpu_ops += len(values) + 1.0
                if out is not None:
                    combined[key] = out
                    output_bytes += app.result_nbytes(key, out)
        else:
            for v, values in inbox.data.items():
                out = app.combine(v, values, state)
                cpu_ops += len(values) + 1.0
                if out is not None:
                    combined[v] = out
                    output_bytes += app.result_nbytes(v, out)
            if app.combine_all_vertices:
                already = transfer.inner_combined if self.local_opts else {}
                for u in pg.partition_vertices[p]:
                    u = int(u)
                    if u in inbox.data or u in already:
                        continue
                    out = app.combine(u, [], state)
                    cpu_ops += 1.0
                    if out is not None:
                        combined[u] = out
                        output_bytes += app.result_nbytes(u, out)

        incoming = float(sum(sources.values()))
        staged = incoming + transfer.spill_bytes
        machine = self.machine_of(p)
        inbound = [
            (self.machine_of(src), nbytes)
            for src, nbytes in sorted(sources.items())
        ]
        working_set = pg.partition_bytes(p) + staged + output_bytes
        task = Task(
            name=f"combine[{p}]",
            machine=machine,
            kind="combine",
            partition=p,
            disk_read_bytes=staged,
            cpu_ops=cpu_ops,
            disk_write_bytes=incoming + output_bytes,
            sends=[],
            receives=inbound,
            input_transfers=inbound,
            disk_penalty=self._memory_penalty(machine, working_set),
        )
        return task, combined
