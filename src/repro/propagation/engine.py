"""Single-iteration propagation execution (Algorithm 5) with optimizations.

One iteration is two barrier stages per partition:

* **Transfer** — scan the partition's adjacency, call ``transfer`` on each
  out-edge of each selected vertex, route the messages:

  - destination in the same partition and *inner* vertex: with local
    optimizations the combine runs immediately in memory (*local
    propagation*) — no intermediate disk I/O;
  - destination in the same partition but *boundary* vertex: spilled to
    local disk to wait for remote arrivals;
  - destination in a remote partition: grouped per remote partition; with
    an associative combine the group is merged first (*local combination*)
    so one value per distinct destination crosses the network; sends to a
    partition co-located on the same machine are free.

* **Combine** — stage the arrivals to disk, fold them with ``combine``,
  write the outputs.

Without local optimizations (levels O1/O2) every message is materialized
to disk and every cross-partition message crosses the network unmerged —
which is exactly the traffic gap Tables 2 and 3 measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.storage import PartitionStore
from repro.graph.io import VALUE_BYTES
from repro.propagation.api import MessageBox, PropagationApp
from repro.runtime.scheduler import StageScheduler
from repro.runtime.tasks import StageResult, Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioned import PartitionedGraph

__all__ = ["IterationReport", "PropagationEngine", "virtual_partition"]


def virtual_partition(key, num_parts: int) -> int:
    """Deterministic partition of a virtual vertex key (hash routing)."""
    if isinstance(key, (int, np.integer)):
        hashed = (int(key) * 2654435761) & 0xFFFFFFFF
    else:
        hashed = hash(key) & 0xFFFFFFFF
    return hashed % num_parts


@dataclass
class IterationReport:
    """Cost breakdown of one propagation iteration."""

    transfer_stage: StageResult
    combine_stage: StageResult
    messages_emitted: int = 0
    messages_shipped: int = 0
    network_bytes: float = 0.0
    spill_bytes: float = 0.0
    locally_propagated: int = 0

    @property
    def elapsed(self) -> float:
        return self.combine_stage.end_time - self.transfer_stage.start_time


@dataclass
class _PartitionTransfer:
    """Intermediate products of one partition's Transfer stage."""

    inner_combined: dict = field(default_factory=dict)
    boundary_box: MessageBox | None = None
    cross_boxes: dict[int, MessageBox] = field(default_factory=dict)
    spill_bytes: float = 0.0
    cpu_ops: float = 0.0
    output_bytes: float = 0.0
    messages: int = 0
    locally_propagated: int = 0


class PropagationEngine:
    """Executes propagation iterations on a partitioned graph."""

    def __init__(
        self,
        pgraph: PartitionedGraph,
        store: PartitionStore,
        cluster: Cluster,
        local_opts: bool = True,
        values_io_fraction: np.ndarray | None = None,
        assignment: np.ndarray | None = None,
    ):
        """``values_io_fraction[p]`` scales the per-iteration value I/O of
        partition ``p`` (used by cascaded propagation to model skipped
        intermediate reads/writes).  ``assignment[p]`` is the machine the
        job manager dispatches partition ``p``'s tasks to (must hold a
        replica); defaults to the primaries."""
        self.pgraph = pgraph
        self.store = store
        self.cluster = cluster
        self.local_opts = local_opts
        if values_io_fraction is None:
            values_io_fraction = np.ones(pgraph.num_parts)
        self.values_io_fraction = values_io_fraction
        if assignment is None:
            assignment = store.placement_array()
        self.assignment = np.asarray(assignment, dtype=np.int64)

    def machine_of(self, partition: int) -> int:
        return int(self.assignment[partition])

    def _memory_penalty(self, machine: int, working_set: float) -> float:
        """Random-I/O slowdown when the working set exceeds memory (P2)."""
        spec = self.cluster.machine(machine).spec
        if working_set > spec.memory_bytes:
            return spec.random_io_penalty
        return 1.0

    # ------------------------------------------------------------------
    def run_iteration(
        self,
        app: PropagationApp,
        state: Any,
        scheduler: StageScheduler,
    ) -> tuple[dict, IterationReport]:
        """Execute one iteration; returns (combined results, report)."""
        num_parts = self.pgraph.num_parts
        transfers = [
            self._run_transfer_udfs(app, state, p) for p in range(num_parts)
        ]
        transfer_tasks = [
            self._transfer_task(app, p, transfers[p])
            for p in range(num_parts)
        ]
        transfer_result = scheduler.run_stage(transfer_tasks)

        inboxes, inbox_sources = self._route(app, transfers)
        combined: dict = {}
        combine_tasks: list[Task] = []
        for p in range(num_parts):
            task, part_combined = self._run_combine(
                app, state, p, inboxes[p], inbox_sources[p], transfers[p]
            )
            combine_tasks.append(task)
            combined.update(part_combined)
        combine_result = scheduler.run_stage(combine_tasks)

        if self.local_opts:
            for t in transfers:
                combined.update(t.inner_combined)

        network_bytes = sum(
            box.payload_bytes(app)
            for t in transfers
            for q, box in t.cross_boxes.items()
        )
        total_shipped = sum(
            len(box) if app.is_associative else box.message_count()
            for t in transfers
            for box in t.cross_boxes.values()
        )
        report = IterationReport(
            transfer_stage=transfer_result,
            combine_stage=combine_result,
            messages_emitted=sum(t.messages for t in transfers),
            messages_shipped=total_shipped,
            network_bytes=network_bytes,
            spill_bytes=sum(t.spill_bytes for t in transfers),
            locally_propagated=sum(t.locally_propagated for t in transfers),
        )
        return combined, report

    # ------------------------------------------------------------------
    # Transfer stage
    # ------------------------------------------------------------------
    def _run_transfer_udfs(
        self, app: PropagationApp, state: Any, p: int
    ) -> _PartitionTransfer:
        """Run the transfer UDFs of partition ``p`` and route messages."""
        pg = self.pgraph
        result = _PartitionTransfer()
        merge = app.merge if app.is_associative else None
        # Local messages: merged eagerly for inner vertices under local
        # optimizations (local propagation needs no associativity — all of
        # an inner vertex's messages originate in this very task).
        inner_box = MessageBox(merge=None)
        # Messages to local boundary vertices must wait for remote
        # arrivals, but an associative combine lets them collapse to one
        # partial per destination before spilling (local combination,
        # destination side).
        boundary_box = MessageBox(
            merge=merge if self.local_opts else None
        )
        result.boundary_box = boundary_box

        def route(dest_partition: int, dest, value) -> None:
            result.messages += 1
            result.cpu_ops += 1.0
            if dest_partition == p and not app.uses_virtual_vertices:
                if self.local_opts and pg.is_inner(dest):
                    inner_box.add(dest, value)
                else:
                    boundary_box.add(dest, value)
                return
            if dest_partition == p:
                # virtual key hashed to the local partition: still local
                boundary_box.add(dest, value)
                return
            box = result.cross_boxes.get(dest_partition)
            if box is None:
                box = MessageBox(merge=merge if self.local_opts else None)
                result.cross_boxes[dest_partition] = box
            box.add(dest, value)
            if self.local_opts and merge is not None:
                result.cpu_ops += 1.0  # the merge work

        if app.uses_virtual_vertices:
            for u in pg.partition_vertices[p]:
                u = int(u)
                result.cpu_ops += 1.0
                if not app.select(u, state):
                    continue
                for key, value in app.virtual_transfer(u, state):
                    route(virtual_partition(key, pg.num_parts), key, value)
        else:
            graph = pg.graph
            parts = pg.parts
            for u in pg.partition_vertices[p]:
                u = int(u)
                if not app.select(u, state):
                    continue
                for v in graph.out_neighbors(u):
                    v = int(v)
                    result.cpu_ops += 1.0
                    value = app.transfer(u, v, state)
                    if value is not None:
                        route(int(parts[v]), v, value)

        # Local propagation: combine inner vertices now, in memory.
        if self.local_opts and not app.uses_virtual_vertices:
            for v, values in inner_box.data.items():
                out = app.combine(v, values, state)
                result.cpu_ops += len(values) + 1.0
                if out is not None:
                    result.inner_combined[v] = out
                    result.output_bytes += app.result_nbytes(v, out)
            result.locally_propagated = len(inner_box.data)
        elif not self.local_opts:
            # no local propagation: inner-destination messages spill too
            for v, values in inner_box.data.items():
                for value in values:
                    boundary_box.add(v, value)

        result.spill_bytes = boundary_box.payload_bytes(app)
        return result

    def _transfer_task(
        self, app: PropagationApp, p: int, t: _PartitionTransfer
    ) -> Task:
        pg = self.pgraph
        machine = self.machine_of(p)
        sends: list[tuple[int, float]] = []
        for q, box in sorted(t.cross_boxes.items()):
            nbytes = box.payload_bytes(app)
            if nbytes > 0:
                sends.append((self.machine_of(q), nbytes))
        # Cascaded phases evaluate the cascadable vertices' iterations in
        # one scan of the partition: both the adjacency and the value
        # reads of iterations inside a phase shrink by the fraction.
        io_fraction = float(self.values_io_fraction[p])
        values_bytes = pg.partition_size(p) * VALUE_BYTES * io_fraction
        fetches: list[tuple[int, float]] = []
        if machine not in self.store.replicas(p):
            # non-local dispatch: pull the partition from its primary
            fetches.append((self.store.primary(p),
                            float(pg.partition_bytes(p))))
        working_set = (pg.partition_bytes(p) + values_bytes
                       + t.spill_bytes)
        return Task(
            name=f"transfer[{p}]",
            machine=machine,
            kind="transfer",
            partition=p,
            disk_read_bytes=pg.partition_bytes(p) * io_fraction
            + values_bytes,
            cpu_ops=t.cpu_ops,
            disk_write_bytes=t.spill_bytes + t.output_bytes,
            sends=sends,
            fetches=fetches,
            disk_penalty=self._memory_penalty(machine, working_set),
        )

    # ------------------------------------------------------------------
    # Combine stage
    # ------------------------------------------------------------------
    def _route(
        self, app: PropagationApp, transfers: list[_PartitionTransfer]
    ) -> tuple[list[MessageBox], list[dict[int, float]]]:
        """Deliver cross boxes; returns per-partition inbox and the bytes
        received from each source partition (for failure re-fetch)."""
        num_parts = self.pgraph.num_parts
        inboxes = [MessageBox(merge=None) for _ in range(num_parts)]
        sources: list[dict[int, float]] = [{} for _ in range(num_parts)]
        for p, t in enumerate(transfers):
            # spilled local (boundary) messages
            assert t.boundary_box is not None
            for dest in t.boundary_box.data:
                for value in t.boundary_box.values_of(dest):
                    inboxes[p].add(dest, value)
            for q, box in t.cross_boxes.items():
                nbytes = box.payload_bytes(app)
                if nbytes > 0:
                    sources[q][p] = sources[q].get(p, 0.0) + nbytes
                for dest, stored in box.data.items():
                    for value in box.values_of(dest):
                        inboxes[q].add(dest, value)
        return inboxes, sources

    def _run_combine(
        self,
        app: PropagationApp,
        state: Any,
        p: int,
        inbox: MessageBox,
        sources: dict[int, float],
        transfer: _PartitionTransfer,
    ) -> tuple[Task, dict]:
        pg = self.pgraph
        combined: dict = {}
        cpu_ops = 0.0
        output_bytes = 0.0

        if app.uses_virtual_vertices:
            for key, values in inbox.data.items():
                out = app.virtual_combine(key, values, state)
                cpu_ops += len(values) + 1.0
                if out is not None:
                    combined[key] = out
                    output_bytes += app.result_nbytes(key, out)
        else:
            for v, values in inbox.data.items():
                out = app.combine(v, values, state)
                cpu_ops += len(values) + 1.0
                if out is not None:
                    combined[v] = out
                    output_bytes += app.result_nbytes(v, out)
            if app.combine_all_vertices:
                already = transfer.inner_combined if self.local_opts else {}
                for u in pg.partition_vertices[p]:
                    u = int(u)
                    if u in inbox.data or u in already:
                        continue
                    out = app.combine(u, [], state)
                    cpu_ops += 1.0
                    if out is not None:
                        combined[u] = out
                        output_bytes += app.result_nbytes(u, out)

        incoming = float(sum(sources.values()))
        staged = incoming + transfer.spill_bytes
        machine = self.machine_of(p)
        inbound = [
            (self.machine_of(src), nbytes)
            for src, nbytes in sorted(sources.items())
        ]
        working_set = pg.partition_bytes(p) + staged + output_bytes
        task = Task(
            name=f"combine[{p}]",
            machine=machine,
            kind="combine",
            partition=p,
            disk_read_bytes=staged,
            cpu_ops=cpu_ops,
            disk_write_bytes=incoming + output_bytes,
            sends=[],
            receives=inbound,
            input_transfers=inbound,
            disk_penalty=self._memory_penalty(machine, working_set),
        )
        return task, combined
