"""Cascaded multi-iteration propagation (Section 5.2).

A naive multi-iteration run reads the previous iteration's values from disk
and writes the new ones back every iteration.  Cascading exploits vertices
whose ``k``-hop in-context lies entirely inside their partition: for a
vertex in ``V_k``, ``k`` iterations can be evaluated in one scan of the
partition, skipping the intermediate value round-trips.  ``V_inf`` are the
vertices never reached by external information; the phase length is bounded
by the smallest partition diameter ``d_min``.

We compute ``V_k`` exactly (distance from the *entry* vertices — those
with an incoming cross-partition edge — along forward in-partition edges),
run the iterations normally for bit-exact results, and scale each
partition's per-iteration value I/O by the fraction of vertices that still
needs intermediate state, which is precisely the disk-I/O saving the paper
measures (8 % time / 12 % disk at three iterations, for a 7 % ratio of
``V_k``, k >= 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field

import numpy as np

from repro.graph.algorithms import estimate_diameter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.partitioned import PartitionedGraph

__all__ = ["CascadeInfo", "compute_cascade_info", "cascade_io_fractions"]


@dataclass
class CascadeInfo:
    """Per-vertex cascade depths and per-partition diameters.

    ``depth[v]`` is the number of iterations vertex ``v`` can run locally
    before external information can reach it: 0 for entry-boundary
    vertices, ``k`` for members of ``V_k``, and ``-1`` (infinity) for
    ``V_inf``.

    ``partition_diameters[p]`` uses the same sentinel: ``-1`` marks a
    partition that no external information ever enters (no entry
    vertices — its vertices are all ``V_inf``) or that is empty.  Such a
    partition imposes no bound on the cascaded phase length, exactly as
    its vertices are unboundedly cascadable in the depth array.
    """

    depth: np.ndarray
    partition_diameters: list[int] = field(default_factory=list)

    def v_k_mask(self, k: int) -> np.ndarray:
        """Vertices in ``V_k`` (can batch ``k`` iterations locally)."""
        return (self.depth < 0) | (self.depth >= k)

    def v_inf_mask(self) -> np.ndarray:
        return self.depth < 0

    def ratio_v_k(self, k: int = 2) -> float:
        """Fraction of vertices in ``V_k`` — the paper reports 7 % at k=2."""
        if self.depth.size == 0:
            return 0.0
        return float(self.v_k_mask(k).sum()) / self.depth.size

    @property
    def d_min(self) -> int:
        """Smallest partition diameter: the cascaded phase length.

        Partitions that external information never enters carry the
        ``-1`` sentinel and are excluded — they cannot bound the phase
        (their vertices are ``V_inf``, mirroring ``depth < 0`` in
        :meth:`v_k_mask`).  Degenerate ``0`` estimates (single-vertex
        partitions) are excluded for the same reason: a phase length of
        zero is meaningless.
        """
        finite = [d for d in self.partition_diameters if d > 0]
        return min(finite) if finite else 1

    def phase_lengths(self, iterations: int) -> list[int]:
        """Split ``iterations`` into cascaded phases of length ``d_min``."""
        if iterations <= 0:
            return []
        span = max(1, self.d_min)
        lengths = [span] * (iterations // span)
        if iterations % span:
            lengths.append(iterations % span)
        return lengths


def compute_cascade_info(pgraph: PartitionedGraph) -> CascadeInfo:
    """Exact ``V_k`` depths by multi-source BFS from entry vertices.

    Entry vertices of a partition are destinations of incoming
    cross-partition edges; information from outside enters there and
    propagates along forward in-partition edges, reaching a vertex at
    distance ``d`` after ``d`` further iterations.  Unreached vertices form
    ``V_inf``.
    """
    graph = pgraph.graph
    n = graph.num_vertices
    depth = -np.ones(n, dtype=np.int64)
    src = graph.edge_sources()
    dst = graph.out_indices
    cross = pgraph.edge_src_part != pgraph.edge_dst_part
    entries = np.unique(dst[cross]) if dst.size else dst

    from collections import deque

    dist = -np.ones(n, dtype=np.int64)
    queue: deque[int] = deque()
    for v in entries:
        dist[v] = 0
        queue.append(int(v))
    parts = pgraph.parts
    while queue:
        v = queue.popleft()
        dv = dist[v]
        for u in graph.out_neighbors(v):
            u = int(u)
            if parts[u] == parts[v] and dist[u] < 0:
                dist[u] = dv + 1
                queue.append(u)
    # dist < 0: never reached -> V_inf (depth stays -1)
    reached = dist >= 0
    depth[reached] = dist[reached]

    # Partitions without entry vertices are all-V_inf: external
    # information never reaches them, so their internal diameter must
    # not cap d_min (a tiny isolated island would otherwise destroy
    # cascading for every other partition while its own vertices are
    # treated as infinitely cascadable — inconsistent semantics).
    has_entries = np.zeros(pgraph.num_parts, dtype=bool)
    if entries.size:
        has_entries[parts[entries]] = True
    diameters = []
    for p in range(pgraph.num_parts):
        verts = pgraph.partition_vertices[p]
        if verts.size == 0 or not has_entries[p]:
            diameters.append(-1)
            continue
        sub, _ = graph.subgraph(verts)
        diameters.append(estimate_diameter(sub, num_probes=2, seed=p))
    return CascadeInfo(depth=depth, partition_diameters=diameters)


def cascade_io_fractions(
    pgraph: PartitionedGraph, info: CascadeInfo, phase_length: int
) -> np.ndarray:
    """Per-partition fraction of value I/O still needed per iteration.

    Within a phase of ``c`` iterations, a vertex at depth ``>= c`` (or in
    ``V_inf``) needs no intermediate value round-trips: 2 of ``c + 1``
    value touches remain (initial read, final write).  Shallower vertices
    pay full freight.  The returned fraction scales the engine's
    per-iteration value I/O.  Empty partitions (possible after elastic
    resizes or chaos kills) have no values to read or write at all, so
    their fraction is 0.
    """
    c = max(1, phase_length)
    fractions = np.ones(pgraph.num_parts)
    for p in range(pgraph.num_parts):
        verts = pgraph.partition_vertices[p]
        if verts.size == 0:
            fractions[p] = 0.0
            continue
        depths = info.depth[verts]
        cascadable = (depths < 0) | (depths >= c)
        ratio = float(cascadable.sum()) / verts.size
        # cascadable vertices touch values 2/(c+1) as often
        fractions[p] = (1.0 - ratio) + ratio * 2.0 / (c + 1.0)
    return fractions
