"""The propagation programming interface (Section 3.2).

Developers subclass :class:`PropagationApp` and implement the paper's two
user-defined functions::

    transfer: (v, v') -> (v', value)    # export data along an edge
    combine:  (v, bag of values) -> (v, value')   # fold arrivals at v

plus optional hooks:

* ``merge(a, b)`` with ``is_associative = True`` annotates the combine as
  associative, enabling the *local combination* optimization (Section 5.1);
* ``select(u, state)`` restricts transfers to a vertex subset (TC and TFL
  run on 10 % samples in the paper);
* virtual vertices (Section 3.3): apps with ``uses_virtual_vertices = True``
  implement ``virtual_transfer`` / ``virtual_combine``, letting
  vertex-oriented tasks such as VDD emulate MapReduce on top of
  propagation.

The engine owns distribution, routing, locality optimizations and cost
accounting; the UDFs stay tiny — that asymmetry is the paper's
programmability claim (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import JobError
from repro.graph.io import VALUE_BYTES, VERTEX_ID_BYTES

__all__ = ["PropagationApp", "MessageBox", "message_nbytes"]


class PropagationApp:
    """Base class for propagation applications.

    Subclasses implement ``transfer`` and ``combine`` (or the virtual
    variants) and may override the annotations and sizing hooks below.
    """

    name = "app"
    #: ``combine`` is associative/commutative; enables local combination.
    is_associative = False
    #: call ``combine`` on vertices that received no messages too.
    combine_all_vertices = False
    #: app emits to virtual vertices instead of along edges.
    uses_virtual_vertices = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def setup(self, pgraph) -> Any:
        """Create the iteration state (ranks, flags, ...)."""
        return None

    def update(self, state: Any, combined: dict) -> None:
        """Fold one iteration's combine outputs into the state.

        ``combined`` maps vertex (or virtual key) to the combine result.
        The default stores them on ``state.values`` when present.
        """
        values = getattr(state, "values", None)
        if values is None:
            raise JobError(
                f"{self.name}: override update() or give state a .values"
            )
        for v, value in combined.items():
            values[v] = value

    def finalize(self, state: Any) -> Any:
        """Produce the application result after the last iteration."""
        return state

    # ------------------------------------------------------------------
    # User-defined functions
    # ------------------------------------------------------------------
    def select(self, u: int, state: Any) -> bool:
        """Whether vertex ``u`` participates in the Transfer stage."""
        return True

    def transfer(self, u: int, v: int, state: Any):
        """Value exported from ``u`` to its out-neighbor ``v`` (or None)."""
        raise JobError(f"{self.name}: transfer() not implemented")

    def combine(self, v: int, values: list, state: Any):
        """Fold the bag of ``values`` that arrived at ``v``."""
        raise JobError(f"{self.name}: combine() not implemented")

    def merge(self, a, b):
        """Associative pairwise merge (required if ``is_associative``)."""
        raise JobError(f"{self.name}: merge() not implemented")

    # -- virtual-vertex variants ----------------------------------------
    def virtual_transfer(self, u: int, state: Any) -> Iterable[tuple]:
        """Yield ``(virtual_key, value)`` pairs from vertex ``u``."""
        raise JobError(f"{self.name}: virtual_transfer() not implemented")

    def virtual_combine(self, key, values: list, state: Any):
        """Fold the values that arrived at virtual vertex ``key``."""
        raise JobError(f"{self.name}: virtual_combine() not implemented")

    # ------------------------------------------------------------------
    # Cost-model sizing hooks
    # ------------------------------------------------------------------
    def value_nbytes(self, value) -> float:
        """On-wire payload size of one transfer value."""
        return float(VALUE_BYTES)

    def result_nbytes(self, v, value) -> float:
        """On-disk size of one combine output record."""
        return float(VALUE_BYTES)


def message_nbytes(app: PropagationApp, value) -> float:
    """Full message size: destination id plus payload."""
    return VERTEX_ID_BYTES + app.value_nbytes(value)


@dataclass
class MessageBox:
    """Accumulates messages per destination, merging when allowed.

    With a ``merge`` function each destination holds one merged value
    (``counts`` remembers how many raw messages it stands for); without,
    destinations hold bags (lists) of values.
    """

    merge: Any = None
    data: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)

    def add(self, dest, value) -> None:
        if self.merge is None:
            self.data.setdefault(dest, []).append(value)
        elif dest in self.data:
            self.data[dest] = self.merge(self.data[dest], value)
        else:
            self.data[dest] = value
        self.counts[dest] = self.counts.get(dest, 0) + 1

    def values_of(self, dest) -> list:
        """The bag of values for ``dest`` (singleton when merged)."""
        if dest not in self.data:
            return []
        if self.merge is None:
            return self.data[dest]
        return [self.data[dest]]

    def payload_bytes(self, app: PropagationApp) -> float:
        """Total wire bytes of the box's current contents."""
        total = 0.0
        for dest, stored in self.data.items():
            if self.merge is None:
                total += sum(message_nbytes(app, v) for v in stored)
            else:
                total += message_nbytes(app, stored)
        return total

    def message_count(self) -> int:
        return sum(self.counts.values())

    def __len__(self) -> int:
        return len(self.data)
