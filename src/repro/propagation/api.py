"""The propagation programming interface (Section 3.2).

Developers subclass :class:`PropagationApp` and implement the paper's two
user-defined functions::

    transfer: (v, v') -> (v', value)    # export data along an edge
    combine:  (v, bag of values) -> (v, value')   # fold arrivals at v

plus optional hooks:

* ``merge(a, b)`` with ``is_associative = True`` annotates the combine as
  associative, enabling the *local combination* optimization (Section 5.1);
* ``select(u, state)`` restricts transfers to a vertex subset (TC and TFL
  run on 10 % samples in the paper);
* virtual vertices (Section 3.3): apps with ``uses_virtual_vertices = True``
  implement ``virtual_transfer`` / ``virtual_combine``, letting
  vertex-oriented tasks such as VDD emulate MapReduce on top of
  propagation.

The engine owns distribution, routing, locality optimizations and cost
accounting; the UDFs stay tiny — that asymmetry is the paper's
programmability claim (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.errors import JobError
from repro.graph.io import VALUE_BYTES, VERTEX_ID_BYTES

__all__ = ["PropagationApp", "MessageBox", "fold_by_dest",
           "message_nbytes"]


class PropagationApp:
    """Base class for propagation applications.

    Subclasses implement ``transfer`` and ``combine`` (or the virtual
    variants) and may override the annotations and sizing hooks below.
    """

    name = "app"
    #: ``combine`` is associative/commutative; enables local combination.
    is_associative = False
    #: call ``combine`` on vertices that received no messages too.
    combine_all_vertices = False
    #: app emits to virtual vertices instead of along edges.
    uses_virtual_vertices = False
    #: app maintains a sparse active set: ``frontier(state)`` returns the
    #: boolean active mask (``select`` must agree with it), enabling the
    #: engine's frontier mode — frontier-sliced Transfer reads, top-down/
    #: bottom-up direction switching, per-partition frontier exchange.
    uses_frontier = False
    #: NumPy ufunc equivalent of ``merge`` (e.g. ``np.add``) — required
    #: for the vectorized Transfer fast path of associative apps.
    merge_ufunc = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def setup(self, pgraph: Any) -> Any:
        """Create the iteration state (ranks, flags, ...)."""
        return None

    def update(self, state: Any, combined: dict) -> None:
        """Fold one iteration's combine outputs into the state.

        ``combined`` maps vertex (or virtual key) to the combine result.
        The default stores them on ``state.values`` when present.
        """
        values = getattr(state, "values", None)
        if values is None:
            raise JobError(
                f"{self.name}: override update() or give state a .values"
            )
        for v, value in combined.items():
            values[v] = value

    def finalize(self, state: Any) -> Any:
        """Produce the application result after the last iteration."""
        return state

    # ------------------------------------------------------------------
    # User-defined functions
    # ------------------------------------------------------------------
    def select(self, u: int, state: Any) -> bool:
        """Whether vertex ``u`` participates in the Transfer stage."""
        return True

    def frontier(self, state: Any) -> np.ndarray:
        """Boolean active mask over *all* vertices (frontier apps only).

        Apps with ``uses_frontier = True`` must implement this.  The
        engine's frontier mode scans exactly the masked vertices instead
        of calling ``select`` per vertex, so the mask must satisfy
        ``bool(mask[u]) == select(u, state)`` for every vertex — the
        UDF002 frontier contract checks the agreement.  The mask is read
        at the start of each iteration; ``update()`` computes the next
        one.
        """
        raise JobError(f"{self.name}: frontier() not implemented")

    def transfer(self, u: int, v: int, state: Any) -> Any:
        """Value exported from ``u`` to its out-neighbor ``v`` (or None)."""
        raise JobError(f"{self.name}: transfer() not implemented")

    def combine(self, v: int, values: list, state: Any) -> Any:
        """Fold the bag of ``values`` that arrived at ``v``."""
        raise JobError(f"{self.name}: combine() not implemented")

    def merge(self, a: Any, b: Any) -> Any:
        """Associative pairwise merge (required if ``is_associative``)."""
        raise JobError(f"{self.name}: merge() not implemented")

    # -- vectorized (array-at-a-time) variants --------------------------
    def select_array(self, vertices: np.ndarray,
                     state: Any) -> np.ndarray | None:
        """Vectorized ``select``: boolean mask over ``vertices``.

        ``None`` (the default) means *all selected*, matching the default
        scalar ``select``.  Apps that override ``select`` must also
        override this to be eligible for the fast path.
        """
        return None

    def transfer_array(self, src: np.ndarray, dst: np.ndarray,
                       state: Any) -> np.ndarray | None:
        """Vectorized ``transfer``: one value per edge ``(src[i], dst[i])``.

        Opt-in hook of the Transfer fast path.  Must return an array
        aligned with ``src``/``dst`` whose element ``i`` is bit-identical
        to ``transfer(src[i], dst[i], state)`` — or ``None`` to decline,
        in which case the engine falls back to the scalar path.  Edges
        whose scalar ``transfer`` would return ``None`` cannot be
        expressed here; such apps MUST stay on the scalar path (decline
        by returning ``None``).  Violating this diverges both the
        results and the cost accounting: the scalar path charges one cpu
        op per scanned edge plus one per *routed* message (a ``None``
        return routes nothing), while the fast path charges exactly two
        per edge — the "bit-identical" guarantee holds only when no edge
        returns ``None``.
        """
        return None

    # -- virtual-vertex variants ----------------------------------------
    def virtual_transfer(self, u: int, state: Any) -> Iterable[tuple]:
        """Yield ``(virtual_key, value)`` pairs from vertex ``u``."""
        raise JobError(f"{self.name}: virtual_transfer() not implemented")

    def virtual_combine(self, key: Any, values: list, state: Any) -> Any:
        """Fold the values that arrived at virtual vertex ``key``."""
        raise JobError(f"{self.name}: virtual_combine() not implemented")

    # ------------------------------------------------------------------
    # Cost-model sizing hooks
    # ------------------------------------------------------------------
    def value_nbytes(self, value: Any) -> float:
        """On-wire payload size of one transfer value."""
        return float(VALUE_BYTES)

    def result_nbytes(self, v: Any, value: Any) -> float:
        """On-disk size of one combine output record."""
        return float(VALUE_BYTES)


def message_nbytes(app: PropagationApp, value: Any) -> float:
    """Full message size: destination id plus payload."""
    return VERTEX_ID_BYTES + app.value_nbytes(value)


def fold_by_dest(
    dests: np.ndarray, values: np.ndarray, ufunc: Any
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Left-fold ``values`` per destination, in input (emission) order.

    Returns ``(uniq_dests, merged, counts)`` with ``uniq_dests`` sorted
    ascending.  The fold visits each destination's values in their input
    order — ``np.bincount`` and ``ufunc.at`` both accumulate
    sequentially — so even a non-exact merge such as float addition
    reproduces the scalar ``merge(merge(v1, v2), v3)`` chain bit for bit.
    ``dests`` must be non-empty.
    """
    m = int(dests.size)
    order = np.argsort(dests, kind="stable")
    d = dests[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    np.not_equal(d[1:], d[:-1], out=new_group[1:])
    uniq = d[new_group]
    gid = np.cumsum(new_group) - 1
    inv = np.empty(m, dtype=np.int64)
    inv[order] = gid
    counts = np.bincount(inv, minlength=uniq.size)
    if ufunc is np.add and values.dtype == np.float64:
        merged = np.bincount(inv, weights=values, minlength=uniq.size)
    else:
        # stable sort: the group head is the earliest original index
        first_idx = order[np.flatnonzero(new_group)]
        merged = values[first_idx].copy()
        rest = np.ones(m, dtype=bool)
        rest[first_idx] = False
        if rest.any():
            ufunc.at(merged, inv[rest], values[rest])
    return uniq, merged, counts


@dataclass
class MessageBox:
    """Accumulates messages per destination, merging when allowed.

    With a ``merge`` function each destination holds one merged value
    (``counts`` remembers how many raw messages it stands for); without,
    destinations hold bags (lists) of values.
    """

    merge: Any = None
    data: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)
    #: cached ``payload_bytes`` result; boxes live within one iteration
    #: and are always sized against that iteration's single app.
    _payload: float | None = field(default=None, repr=False, compare=False)

    def add(self, dest: Any, value: Any) -> None:
        if self.merge is None:
            self.data.setdefault(dest, []).append(value)
        elif dest in self.data:
            self.data[dest] = self.merge(self.data[dest], value)
        else:
            self.data[dest] = value
        self.counts[dest] = self.counts.get(dest, 0) + 1
        self._payload = None

    @classmethod
    def from_arrays(cls, dests: np.ndarray, values: np.ndarray,
                    merge: Any = None,
                    ufunc: Any = None) -> "MessageBox":
        """Build a box from aligned destination/value arrays.

        The arrays are taken in *emission order* (the order the scalar
        path would have called :meth:`add`), and the result is
        bit-identical to that sequence of ``add`` calls:

        * without ``merge``, bags keep emission order per destination
          (stable sort by destination);
        * with ``merge``, each destination's values are left-folded in
          emission order via ``ufunc`` — ``np.bincount`` for float
          ``np.add`` and ``ufunc.at`` otherwise both accumulate
          sequentially in input order, so even non-exact merges such as
          float addition reproduce the scalar fold bit for bit.
        """
        box = cls(merge=merge)
        dests = np.asarray(dests)
        values = np.asarray(values)
        m = int(dests.size)
        if m == 0:
            return box
        if merge is None:
            order = np.argsort(dests, kind="stable")
            d = dests[order]
            v = values[order]
            cuts = np.flatnonzero(d[1:] != d[:-1]) + 1
            starts = np.concatenate(([0], cuts)).tolist()
            ends = np.concatenate((cuts, [m])).tolist()
            dlist = d.tolist()
            vlist = v.tolist()
            for s, e in zip(starts, ends):
                box.data[dlist[s]] = vlist[s:e]
                box.counts[dlist[s]] = e - s
            return box
        if ufunc is None:
            raise JobError("MessageBox.from_arrays: merging needs a ufunc")
        uniq, merged, counts = fold_by_dest(dests, values, ufunc)
        keys = uniq.tolist()
        box.data = dict(zip(keys, merged.tolist()))
        box.counts = dict(zip(keys, counts.tolist()))
        return box

    def values_of(self, dest: Any) -> list:
        """The bag of values for ``dest`` (singleton when merged)."""
        if dest not in self.data:
            return []
        if self.merge is None:
            return self.data[dest]
        return [self.data[dest]]

    def payload_bytes(self, app: PropagationApp) -> float:
        """Total wire bytes of the box's current contents (cached).

        Apps that keep the default (constant) ``value_nbytes`` take a
        closed-form count; byte sizes are integer-valued floats, so the
        product equals the per-message summation bit for bit.
        """
        if self._payload is None:
            if type(app).value_nbytes is PropagationApp.value_nbytes:
                wire_messages = (len(self.data) if self.merge is not None
                                 else sum(len(bag)
                                          for bag in self.data.values()))
                self._payload = float(
                    wire_messages * (VERTEX_ID_BYTES + VALUE_BYTES)
                )
            else:
                total = 0.0
                for dest, stored in self.data.items():
                    if self.merge is None:
                        total += sum(message_nbytes(app, v) for v in stored)
                    else:
                        total += message_nbytes(app, stored)
                self._payload = total
        return self._payload

    def message_count(self) -> int:
        return sum(self.counts.values())

    def __len__(self) -> int:
        return len(self.data)
