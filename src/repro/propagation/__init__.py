"""The propagation primitive: API, engine, cascaded multi-iteration."""

from repro.propagation.api import MessageBox, PropagationApp, message_nbytes
from repro.propagation.engine import (
    IterationReport,
    PropagationEngine,
    virtual_partition,
)
from repro.propagation.cascade import (
    CascadeInfo,
    cascade_io_fractions,
    compute_cascade_info,
)

__all__ = [
    "MessageBox",
    "PropagationApp",
    "message_nbytes",
    "IterationReport",
    "PropagationEngine",
    "virtual_partition",
    "CascadeInfo",
    "cascade_io_fractions",
    "compute_cascade_info",
]
