"""Determinism lints DET001–DET004 (AST pass).

The rules encode invariants the runtime's correctness rests on and that
only ever broke *dynamically* before (PR 2's ``PYTHONHASHSEED`` routing
drift is the canonical example):

* **DET001** — ``hash()`` / ``id()`` as a routing or keying primitive.
  Python salts ``str`` hashes per process, so two workers disagree on
  where a key lives; ``id()`` is an address.  Routing must go through
  :func:`repro.hashing.stable_hash` / ``stable_hash_array``.  Exempt:
  ``__hash__`` implementations (in-process identity is their job).
* **DET002** — unseeded randomness: the stdlib ``random`` module
  (process-global, seed-racy) anywhere, the legacy ``numpy.random.*``
  global functions, and ``default_rng()`` called without a seed.
  Exempt paths: the bench harness (measures real machines) and the
  fault-plan seeding helpers.
* **DET003** — iterating a ``set``/``frozenset`` in the engine,
  partitioning, core or runtime trees without an explicit ``sorted()``:
  set order depends on the per-process hash salt, so anything it feeds
  (message routing, partition assignment, shuffle order, tie-breaks)
  diverges across processes.
* **DET004** — consulting the wall clock (``time.time``,
  ``perf_counter``, ``monotonic``, ``process_time``) inside the
  simulated-time regions (``runtime/``, the two engines, the CLI job
  paths).  Real time must flow through the one sanctioned API,
  :func:`repro.runtime.events.wall_timer`, so simulated cost and
  simulator overhead can never mix.

Each rule is scoped by repo path (see ``_module_path``); fixtures in
tests exercise the rules by passing engine-like virtual paths.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    collect_suppressions,
)

__all__ = ["lint_source", "DET003_SCOPE", "DET004_SCOPE"]

#: module-path prefixes (relative to the ``repro`` package) where DET003
#: applies: trees whose iteration order feeds routing, partition
#: assignment, shuffle order or scheduling tie-breaks.
DET003_SCOPE: tuple[str, ...] = (
    "propagation/", "mapreduce/", "partitioning/", "core/", "runtime/",
)

#: module-path prefixes where DET004 applies (simulated-time regions).
#: ``runtime/events.py`` is carved out: it *is* the sanctioned clock.
DET004_SCOPE: tuple[str, ...] = (
    "runtime/", "propagation/", "mapreduce/", "cli.py",
)
_DET004_EXEMPT: tuple[str, ...] = ("runtime/events.py",)

#: paths exempt from DET002: benchmarking measures the real machine, and
#: the fault plan derives per-scenario seeds by design.
_DET002_EXEMPT: tuple[str, ...] = ("bench/", "cluster/faults.py")

_NUMPY_SEEDED_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)
_WALL_CLOCK_ATTRS = frozenset(
    {"time", "perf_counter", "monotonic", "process_time", "clock",
     "perf_counter_ns", "time_ns", "monotonic_ns"}
)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _module_path(path: str) -> str | None:
    """Path relative to the ``repro`` package, or None if outside it."""
    norm = path.replace("\\", "/")
    marker = "repro/"
    idx = norm.rfind(marker)
    if idx < 0:
        return None
    return norm[idx + len(marker):]


def _in_scope(mod: str | None, prefixes: tuple[str, ...]) -> bool:
    return mod is not None and mod.startswith(prefixes)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, mod: str | None):
        self.path = path
        self.mod = mod
        self.findings: list[Finding] = []
        #: import aliases of the stdlib ``time`` module
        self.time_aliases: set[str] = set()
        #: names imported *from* ``time`` -> original attribute name
        self.time_names: dict[str, str] = {}
        #: aliases of numpy itself (``np``) and of ``numpy.random``
        self.numpy_aliases: set[str] = set()
        self.npr_aliases: set[str] = set()
        #: names imported from ``numpy.random`` -> original name
        self.npr_names: dict[str, str] = {}
        #: function-scope stack; each frame holds locally-inferred set
        #: variable names for DET003
        self._scopes: list[set[str]] = [set()]
        self._hash_exempt = 0

    # -- helpers -------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, getattr(node, "lineno", 1), message)
        )

    def _local_sets(self) -> set[str]:
        return self._scopes[-1]

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` syntactically produces an unordered set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set",
                                                          "frozenset"):
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_METHODS):
                return True
        if isinstance(node, ast.Name) and node.id in self._local_sets():
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)
        ):
            # ``a & b`` is only a set when an operand is one
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if not _in_scope(self.mod, DET003_SCOPE):
            return
        if self._is_set_expr(iter_node):
            self._report(
                "DET003", iter_node,
                "iteration over an unordered set: order depends on the "
                "per-process hash salt — wrap in sorted() (or restructure)"
                " before it can feed routing/partitioning/shuffle order",
            )

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self.time_aliases.add(name)
            elif alias.name in ("numpy", "numpy.random"):
                if alias.name == "numpy.random" and alias.asname:
                    self.npr_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add(name)
            elif alias.name == "random" and self.mod is not None:
                if not self.mod.startswith(_DET002_EXEMPT):
                    self._report(
                        "DET002", node,
                        "stdlib 'random' is a process-global, "
                        "implicitly-seeded source; use "
                        "numpy.random.default_rng(seed)",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                self.time_names[alias.asname or alias.name] = alias.name
        elif node.module == "numpy.random":
            for alias in node.names:
                self.npr_names[alias.asname or alias.name] = alias.name
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.npr_aliases.add(alias.asname or "random")
        elif node.module == "random" and self.mod is not None:
            if not self.mod.startswith(_DET002_EXEMPT):
                self._report(
                    "DET002", node,
                    "stdlib 'random' is a process-global, implicitly-"
                    "seeded source; use numpy.random.default_rng(seed)",
                )
        self.generic_visit(node)

    # -- scopes --------------------------------------------------------
    def _visit_function(self, node: ast.AST, is_hash: bool) -> None:
        self._scopes.append(set())
        if is_hash:
            self._hash_exempt += 1
        self.generic_visit(node)
        if is_hash:
            self._hash_exempt -= 1
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name == "__hash__")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name == "__hash__")

    def visit_Assign(self, node: ast.Assign) -> None:
        if (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._is_set_expr(node.value)):
            self._local_sets().add(node.targets[0].id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        ann = ast.unparse(node.annotation) if node.annotation else ""
        if isinstance(node.target, ast.Name) and (
            ann.startswith(("set[", "set ", "frozenset"))
            or ann in ("set", "Set")
            or (node.value is not None and self._is_set_expr(node.value))
        ):
            self._local_sets().add(node.target.id)
        self.generic_visit(node)

    # -- iteration sites ----------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def _numpy_random_attr(self, func: ast.expr) -> str | None:
        """The ``X`` of ``np.random.X`` / ``numpy.random.X`` calls."""
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if (isinstance(base, ast.Attribute) and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in self.numpy_aliases):
            return func.attr
        if isinstance(base, ast.Name) and base.id in self.npr_aliases:
            return func.attr
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        mod = self.mod

        # DET001 — hash()/id() on routing paths
        if (isinstance(func, ast.Name) and func.id in ("hash", "id")
                and mod is not None and not self._hash_exempt):
            self._report(
                "DET001", node,
                f"built-in {func.id}() is process-salted/address-based "
                "and must not key routing, partitioning or shuffle "
                "decisions; use repro.hashing.stable_hash*",
            )

        # DET002 — unseeded numpy randomness
        if mod is not None and not mod.startswith(_DET002_EXEMPT):
            attr = self._numpy_random_attr(func)
            if attr is None and isinstance(func, ast.Name):
                attr = self.npr_names.get(func.id)
            if attr is not None:
                if attr not in _NUMPY_SEEDED_OK:
                    self._report(
                        "DET002", node,
                        f"legacy numpy.random.{attr} uses the unseeded "
                        "process-global state; use "
                        "numpy.random.default_rng(seed)",
                    )
                elif attr == "default_rng" and (
                    not node.args
                    or (isinstance(node.args[0], ast.Constant)
                        and node.args[0].value is None)
                ):
                    self._report(
                        "DET002", node,
                        "default_rng() without a seed draws OS entropy; "
                        "thread an explicit seed or Generator through",
                    )

        # DET004 — wall clock inside simulated-time regions
        if (_in_scope(mod, DET004_SCOPE)
                and mod is not None
                and not mod.startswith(_DET004_EXEMPT)):
            is_wall = False
            if (isinstance(func, ast.Attribute)
                    and func.attr in _WALL_CLOCK_ATTRS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.time_aliases):
                is_wall = True
            elif (isinstance(func, ast.Name)
                    and self.time_names.get(func.id) in _WALL_CLOCK_ATTRS):
                is_wall = True
            if is_wall:
                self._report(
                    "DET004", node,
                    "wall clock read inside a simulated-time region; "
                    "route real-time measurement through "
                    "repro.runtime.events.wall_timer()",
                )

        self.generic_visit(node)


def lint_source(source: str, path: str) -> list[Finding]:
    """Run DET001–DET004 over ``source`` as if it lived at ``path``.

    ``path`` determines rule scoping (see the module docstring); inline
    ``# repro: ignore[...]`` markers are honoured.  A syntax error
    yields a single ``E999`` finding.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("E999", path, exc.lineno or 1,
                        f"source failed to parse: {exc.msg}")]
    visitor = _DeterminismVisitor(path, _module_path(path))
    visitor.visit(tree)
    return apply_suppressions(visitor.findings,
                              collect_suppressions(source))
