"""``repro check`` orchestration: discover files, run every pass.

One :func:`check_paths` call is the whole gate: determinism lints
(DET001–DET004), UDF purity (UDF001), annotation completeness
(TYP001) and counter-use collection run per file; the cross-file
passes (CNT001/CNT002 against ``CANONICAL_COUNTERS``, the dynamic
UDF002/PAR001 contract verification over the app registries) run once
over the accumulated state.  CNT002 ("registered but never touched")
only fires when the scan actually covered the runtime tree — a partial
path list cannot prove a counter is unused.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis import contracts, counters, determinism, typing_gate
from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    collect_suppressions,
    findings_to_json,
    render_findings,
)

__all__ = ["CheckReport", "iter_python_files", "check_paths"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules",
                        ".mypy_cache", ".ruff_cache", ".pytest_cache"})


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    contracts_ran: bool = False
    registry_audited: bool = False

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def render(self) -> str:
        lines = []
        body = render_findings(self.findings)
        if body:
            lines.append(body)
        suppressed = len(self.findings) - len(self.active)
        summary = (
            f"repro check: {self.files_scanned} files, "
            f"{len(self.active)} finding(s), {suppressed} suppressed"
        )
        if self.contracts_ran:
            summary += ", contracts verified"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self, paths: list[str]) -> str:
        return findings_to_json(self.findings, meta={
            "paths": list(paths),
            "files_scanned": self.files_scanned,
            "contracts_ran": self.contracts_ran,
            "registry_audited": self.registry_audited,
        })


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(set(out))


def check_paths(
    paths: list[str],
    *,
    contracts_pass: bool = True,
    counters_pass: bool = True,
    typing_pass: bool = True,
) -> CheckReport:
    """Run the full static-analysis gate over ``paths``."""
    report = CheckReport()
    uses: list[counters.CounterUse] = []
    suppressions: dict[str, dict[int, set[str]]] = {}
    saw_registry = False

    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(
                Finding("E999", path, 1, f"unreadable source ({exc})"))
            continue
        report.files_scanned += 1
        norm = path.replace("\\", "/")
        report.findings.extend(determinism.lint_source(source, path))
        report.findings.extend(contracts.check_udf_purity(source, path))
        if typing_pass:
            report.findings.extend(
                typing_gate.check_annotations(source, path))
        if counters_pass:
            file_uses = counters.collect_counter_uses(source, path)
            uses.extend(file_uses)
            if file_uses:
                suppressions[path] = collect_suppressions(source)
            if norm.endswith("repro/runtime/events.py"):
                saw_registry = True

    if counters_pass:
        for f in counters.check_counter_uses(uses):
            report.findings.extend(apply_suppressions(
                [f], suppressions.get(f.path, {})))
        if saw_registry:
            # the scan covered the runtime tree: absence is provable
            report.findings.extend(counters.check_registry_coverage(uses))
            report.registry_audited = True

    if contracts_pass:
        report.findings.extend(contracts.verify_registered_apps())
        report.contracts_ran = True

    return report
