"""``repro check`` orchestration: discover files, run every pass.

One :func:`check_paths` call is the whole gate: determinism lints
(DET001–DET004), out-of-core safety (OOC001–OOC003), UDF purity
(UDF001), annotation completeness (TYP001) and counter-use collection
run per file; the cross-file passes run once over the accumulated
state — interprocedural taint (DET005/DET006) over the project call
graph, CNT001/CNT002 against ``CANONICAL_COUNTERS``, the dynamic
UDF002/PAR001 contract verification over the app registries, and
finally SUP001, which re-audits every inline suppression marker
against everything the other passes produced (a marker that no longer
suppresses anything is itself a finding).  CNT002 ("registered but
never touched") only fires when the scan actually covered the runtime
tree — a partial path list cannot prove a counter is unused.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis import (
    contracts,
    counters,
    determinism,
    oocsafety,
    taint,
    typing_gate,
)
from repro.analysis.callgraph import build_project_index
from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    collect_suppressions,
    findings_to_json,
    render_findings,
)

__all__ = ["CheckReport", "iter_python_files", "check_paths",
           "check_stale_suppressions"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules",
                        ".mypy_cache", ".ruff_cache", ".pytest_cache"})


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    contracts_ran: bool = False
    registry_audited: bool = False

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0

    def render(self) -> str:
        lines = []
        body = render_findings(self.findings)
        if body:
            lines.append(body)
        suppressed = len(self.findings) - len(self.active)
        summary = (
            f"repro check: {self.files_scanned} files, "
            f"{len(self.active)} finding(s), {suppressed} suppressed"
        )
        if self.contracts_ran:
            summary += ", contracts verified"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self, paths: list[str]) -> str:
        return findings_to_json(self.findings, meta={
            "paths": list(paths),
            "files_scanned": self.files_scanned,
            "contracts_ran": self.contracts_ran,
            "registry_audited": self.registry_audited,
        })


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return sorted(set(out))


def check_stale_suppressions(
    findings: list[Finding],
    suppressions: dict[str, dict[int, set[str]]],
) -> list[Finding]:
    """SUP001: every inline marker must still suppress something.

    A marker rule is *stale* when no suppressed finding with that rule
    sits on its line after every other pass has run; a ``*`` marker is
    stale when nothing at all is suppressed on its line.  A stale
    marker is worse than dead weight — it silently waives whatever
    future finding lands on that line.  SUP001 findings can only be
    waived by an explicit ``SUP001`` marker (never by ``*``, which
    would let a stale ``*`` hide itself).
    """
    covered: dict[tuple[str, int], set[str]] = {}
    for f in findings:
        if f.suppressed:
            covered.setdefault((f.path, f.line), set()).add(f.rule)
    out: list[Finding] = []
    for path in sorted(suppressions):
        for line in sorted(suppressions[path]):
            rules = suppressions[path][line]
            hit = covered.get((path, line), set())
            stale = sorted(r for r in rules
                           if r not in ("*", "SUP001") and r not in hit)
            if "*" in rules and not hit:
                stale.append("*")
            if not stale:
                continue
            out.append(Finding(
                "SUP001", path, line,
                f"stale suppression marker [{', '.join(stale)}]: the "
                "rule no longer fires on this line — remove or update "
                "the marker before it silently waives a future finding",
                suppressed="SUP001" in rules,
            ))
    return out


def check_paths(
    paths: list[str],
    *,
    contracts_pass: bool = True,
    counters_pass: bool = True,
    typing_pass: bool = True,
) -> CheckReport:
    """Run the full static-analysis gate over ``paths``."""
    report = CheckReport()
    uses: list[counters.CounterUse] = []
    sources: dict[str, str] = {}
    suppressions: dict[str, dict[int, set[str]]] = {}
    saw_registry = False

    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(
                Finding("E999", path, 1, f"unreadable source ({exc})"))
            continue
        report.files_scanned += 1
        sources[path] = source
        suppressions[path] = collect_suppressions(source)
        norm = path.replace("\\", "/")
        report.findings.extend(determinism.lint_source(source, path))
        report.findings.extend(contracts.check_udf_purity(source, path))
        report.findings.extend(oocsafety.check_ooc_safety(source, path))
        if typing_pass:
            report.findings.extend(
                typing_gate.check_annotations(source, path))
        if counters_pass:
            uses.extend(counters.collect_counter_uses(source, path))
            if norm.endswith("repro/runtime/events.py"):
                saw_registry = True

    # interprocedural taint over the project call graph (only package
    # modules index; test files merely provide suppression context)
    index = build_project_index(sources)
    report.findings.extend(taint.check_taint(index, sources))

    if counters_pass:
        for f in counters.check_counter_uses(uses):
            report.findings.extend(apply_suppressions(
                [f], suppressions.get(f.path, {})))
        if saw_registry:
            # the scan covered the runtime tree: absence is provable
            report.findings.extend(counters.check_registry_coverage(uses))
            report.registry_audited = True

    if contracts_pass:
        report.findings.extend(contracts.verify_registered_apps())
        report.contracts_ran = True

    # SUP001 runs last: it audits the markers against every pass above
    report.findings.extend(
        check_stale_suppressions(report.findings, suppressions))

    return report
