"""Out-of-core safety lints OOC001–OOC003 (AST pass).

PR 9's sharded store keeps the graph on disk and serves bounded,
memmap-backed views; the whole design collapses if a caller silently
materializes O(graph) bytes or writes through a shared mapping.  Three
rules police the hazard class:

* **OOC001** — materializing a memmap/shard-served value with
  ``np.asarray``/``np.array``/``.tolist()``/``.copy()``.  On a memmap
  these either pin a full in-memory copy (``array``/``tolist``/
  ``copy``) or alias the mapping while *looking* like a plain array
  (``asarray``), so both failure modes hide behind one idiom.
* **OOC002** — in-place write into a subscript of a read-only-intent
  mapping (``mmap_mode="r"`` loads, ``mode="r"`` memmaps, shard
  accessor results).  The pages are shared: a write either faults at
  runtime or, worse, corrupts every other reader of the shard.
* **OOC003** — a ``Graph`` subclass that holds a shard ``store`` must
  guard the whole-graph accessor: its ``out_indices`` property must
  raise (``GraphError``) rather than serve O(m) edges.  Subclasses of
  ``ShardBackedGraph`` inherit the raising guard and are only flagged
  if they override it with a non-raising body.

Values are typed by *construction site* (``np.load(mmap_mode=...)``,
``np.memmap``, ``open_memmap``, and the shard accessor methods of
``graph/store.py``/``graph/stream.py``) and flow through names and
subscripts within a function.  Like every pass, findings honour inline
``# repro: ignore[OOC00x] -- reason`` waivers for the sites where the
materialization is the documented contract (e.g. ``to_graph()``).
"""

from __future__ import annotations

import ast

from repro.analysis.determinism import _module_path
from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    collect_suppressions,
)

__all__ = ["check_ooc_safety", "SHARD_ACCESSORS"]

#: methods of the shard store / stream layer that serve memmap-backed,
#: read-only views (the "constructors" of shard-served values)
SHARD_ACCESSORS = frozenset(
    {"shard_indices", "shard_indptr", "indices_range",
     "out_indices_range", "global_indptr"}
)

_MATERIALIZERS = frozenset({"asarray", "array", "ascontiguousarray"})


class _OocVisitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []
        self.numpy_aliases: set[str] = set()
        #: from-imported numpy materializers (``from numpy import asarray``)
        self.np_names: set[str] = set()
        #: from-imported names of ``numpy.lib.format.open_memmap``
        self.open_memmap_names: set[str] = set()
        #: scope stack: name -> "ro" | "rw"
        self._scopes: list[dict[str, str]] = [{}]

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("numpy", "numpy.random"):
                self.numpy_aliases.add(
                    alias.asname or alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name in _MATERIALIZERS:
                    self.np_names.add(alias.asname or alias.name)
        elif node.module == "numpy.lib.format":
            for alias in node.names:
                if alias.name == "open_memmap":
                    self.open_memmap_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- helpers -------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, self.path, getattr(node, "lineno", 1), message))

    def _np_attr(self, func: ast.expr) -> str | None:
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.numpy_aliases):
            return func.attr
        return None

    def _kw_mode(self, call: ast.Call, name: str) -> str | None:
        for kw in call.keywords:
            if kw.arg == name:
                if isinstance(kw.value, ast.Constant) and isinstance(
                        kw.value.value, str):
                    return kw.value.value
                return "?"
        return None

    def _ctor_intent(self, call: ast.Call) -> str | None:
        """Memmap intent when ``call`` constructs a mapped value."""
        func = call.func
        attr = self._np_attr(func)
        if attr == "load":
            mode = self._kw_mode(call, "mmap_mode")
            if mode is None:
                return None  # eager load: plain in-memory array
            return "ro" if mode in ("r", "?") else "rw"
        if attr == "memmap":
            mode = self._kw_mode(call, "mode") or "r+"
            return "ro" if mode == "r" else "rw"
        is_open_memmap = (
            (isinstance(func, ast.Name)
             and func.id in self.open_memmap_names)
            or (isinstance(func, ast.Attribute)
                and func.attr == "open_memmap"))
        if is_open_memmap:
            mode = self._kw_mode(call, "mode") or "r+"
            return "ro" if mode == "r" else "rw"
        if (isinstance(func, ast.Attribute)
                and func.attr in SHARD_ACCESSORS):
            return "ro"
        return None

    def _intent(self, node: ast.expr) -> str | None:
        """Memmap intent of an arbitrary expression, or None."""
        if isinstance(node, ast.Name):
            for frame in reversed(self._scopes):
                if node.id in frame:
                    return frame[node.id]
            return None
        if isinstance(node, ast.Call):
            return self._ctor_intent(node)
        if isinstance(node, ast.Subscript):
            return self._intent(node.value)
        return None

    # -- scopes and assignments ---------------------------------------
    def _visit_fn(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_fn(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_fn(node)

    def _check_write(self, target: ast.expr) -> None:
        if (isinstance(target, ast.Subscript)
                and self._intent(target.value) == "ro"):
            self._report(
                "OOC002", target,
                "in-place write into a read-only-intent memmap/shard "
                "view: the pages are shared with every other reader — "
                "gather into a fresh array instead",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write(target)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            intent = self._intent(node.value)
            if intent is not None:
                self._scopes[-1][node.targets[0].id] = intent
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write(node.target)
        if isinstance(node.target, ast.Name) and node.value is not None:
            intent = self._intent(node.value)
            if intent is not None:
                self._scopes[-1][node.target.id] = intent
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node.target)
        self.generic_visit(node)

    # -- materialization sites ----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        attr = self._np_attr(func)
        is_np_mat = (attr in _MATERIALIZERS
                     or (isinstance(func, ast.Name)
                         and func.id in self.np_names))
        if is_np_mat and node.args and self._intent(node.args[0]) is not None:
            name = attr if attr is not None else func.id  # type: ignore[union-attr]
            self._report(
                "OOC001", node,
                f"np.{name}() over a memmap/shard-served value "
                "materializes (or silently aliases) O(graph) bytes; "
                "stream per-shard slices instead",
            )
        if (isinstance(func, ast.Attribute)
                and func.attr in ("tolist", "copy")
                and not node.args
                and self._intent(func.value) is not None):
            self._report(
                "OOC001", node,
                f".{func.attr}() on a memmap/shard-served value pins a "
                "full in-memory copy; operate on bounded slices",
            )
        self.generic_visit(node)

    # -- OOC003: whole-graph accessor guard ---------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = {
            b.attr if isinstance(b, ast.Attribute) else getattr(b, "id", "")
            for b in node.bases
        }
        if base_names & {"Graph", "ShardBackedGraph"}:
            self._check_graph_subclass(node, base_names)
        self._visit_fn(node)

    def _holds_store(self, node: ast.ClassDef) -> bool:
        for item in ast.walk(node):
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == "__slots__"):
                        for elt in ast.walk(item.value):
                            if (isinstance(elt, ast.Constant)
                                    and elt.value in ("store", "_store")):
                                return True
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr in ("store", "_store")):
                        return True
        return False

    def _check_graph_subclass(
        self, node: ast.ClassDef, base_names: set[str]
    ) -> None:
        accessor: ast.FunctionDef | ast.AsyncFunctionDef | None = None
        for item in node.body:
            if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "out_indices"):
                accessor = item
        if accessor is not None:
            raises = any(isinstance(n, ast.Raise)
                         for n in ast.walk(accessor))
            if not raises:
                self._report(
                    "OOC003", accessor,
                    f"{node.name}.out_indices does not raise: a "
                    "shard-backed graph must guard the whole-graph "
                    "accessor with GraphError and serve bounded "
                    "ranges instead",
                )
            return
        if "ShardBackedGraph" in base_names:
            return  # inherits the raising guard
        if self._holds_store(node):
            self._report(
                "OOC003", node,
                f"{node.name} holds a shard store but defines no "
                "raising out_indices guard: the inherited accessor "
                "serves O(m) edges — add a GraphError-raising "
                "property",
            )


def check_ooc_safety(source: str, path: str) -> list[Finding]:
    """Run OOC001–OOC003 over ``source`` as if it lived at ``path``.

    Only package modules are scanned (``_module_path``); a syntax error
    is reported by the determinism pass, not duplicated here.
    """
    if _module_path(path) is None:
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    visitor = _OocVisitor(path)
    visitor.visit(tree)
    return apply_suppressions(visitor.findings,
                              collect_suppressions(source))
