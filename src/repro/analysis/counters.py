"""Counter-conservation pass (CNT001 / CNT002).

PR 3's ``reconcile()`` audits cost conservation *at runtime, per job*:
it can only cross-check the counters the executed codepath happened to
touch.  This pass closes the loop statically.  The declarative side is
:data:`repro.runtime.events.CANONICAL_COUNTERS` (plus
``DYNAMIC_COUNTER_PREFIXES`` for families minted with f-strings, e.g.
``recovery.<kind>``).  The scan side is every
``metrics.add("dotted.name", ...)`` / ``metrics.get("dotted.name")``
call in the engines, scheduler, network model and fault path.

* **CNT001** — a counter is incremented or read somewhere but not
  registered: ``reconcile()`` and the bench reports silently never see
  it.
* **CNT002** — a counter is registered but no scanned module ever
  touches it: the registry has drifted from the code (only reported on
  a full-tree run; a partial path list cannot prove absence).

A "counter call" is recognised conservatively so ``dict.get`` never
trips the pass: the receiver's terminal name must be ``m``,
``metrics`` or ``registry`` (covering ``m``, ``metrics``,
``stream.metrics``, ``self.events.metrics``, ``registry``), and the
first argument must be a string literal shaped like a dotted counter
name (``lowercase.words.with.dots``) or an f-string with such a dotted
literal prefix.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.findings import Finding

__all__ = ["CounterUse", "collect_counter_uses", "check_counter_uses",
           "check_registry_coverage"]

_COUNTER_NAME_RE = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")
_COUNTER_PREFIX_RE = re.compile(r"^[a-z_]+(\.[a-z_]+)*\.$")
_RECEIVER_NAMES = frozenset({"m", "metrics", "registry"})
_COUNTER_METHODS = frozenset({"add", "get"})

#: location of the registry, for CNT002 findings
_REGISTRY_PATH = "src/repro/runtime/events.py"


@dataclass(frozen=True)
class CounterUse:
    """One ``metrics.add/get`` site: a literal name or f-string prefix."""

    name: str
    is_prefix: bool
    path: str
    line: int


def _receiver_terminal(func: ast.Attribute) -> str | None:
    base = func.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _counter_arg(node: ast.Call) -> tuple[str, bool] | None:
    """(name, is_prefix) of the first argument, if counter-shaped."""
    if not node.args:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        if _COUNTER_NAME_RE.match(arg.value):
            return arg.value, False
        return None
    if isinstance(arg, ast.JoinedStr) and arg.values:
        head = arg.values[0]
        if (isinstance(head, ast.Constant) and isinstance(head.value, str)
                and _COUNTER_PREFIX_RE.match(head.value)):
            return head.value, True
    return None


def collect_counter_uses(source: str, path: str) -> list[CounterUse]:
    """Every counter-shaped ``.add()``/``.get()`` site in ``source``.

    Only files inside the ``repro`` package participate: the canonical
    registry governs the production counters; tests minting synthetic
    names to exercise registry mechanics are not conservation
    violations.
    """
    if "repro/" not in path.replace("\\", "/"):
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # E999 is reported by the determinism pass
    uses: list[CounterUse] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _COUNTER_METHODS):
            continue
        recv = _receiver_terminal(node.func)
        if recv not in _RECEIVER_NAMES:
            continue
        arg = _counter_arg(node)
        if arg is None:
            continue
        name, is_prefix = arg
        uses.append(CounterUse(name, is_prefix, path, node.lineno))
    return uses


def _registry() -> tuple[dict[str, str], tuple[str, ...]]:
    from repro.runtime.events import (
        CANONICAL_COUNTERS,
        DYNAMIC_COUNTER_PREFIXES,
    )
    return CANONICAL_COUNTERS, DYNAMIC_COUNTER_PREFIXES


def check_counter_uses(
    uses: list[CounterUse],
    registered: dict[str, str] | None = None,
    prefixes: tuple[str, ...] | None = None,
) -> list[Finding]:
    """CNT001 for every use site naming an unregistered counter."""
    if registered is None or prefixes is None:
        canon, dyn = _registry()
        registered = canon if registered is None else registered
        prefixes = dyn if prefixes is None else prefixes
    findings: list[Finding] = []
    for use in uses:
        if use.is_prefix:
            if use.name in prefixes:
                continue
            findings.append(Finding(
                "CNT001", use.path, use.line,
                f"dynamic counter family {use.name!r}* is not listed in "
                "runtime.events.DYNAMIC_COUNTER_PREFIXES; reconcile() "
                "will never audit it",
            ))
        elif use.name not in registered:
            findings.append(Finding(
                "CNT001", use.path, use.line,
                f"counter {use.name!r} is not registered in "
                "runtime.events.CANONICAL_COUNTERS; register it (with a "
                "one-line description) so reconcile() audits both sides",
            ))
    return findings


def check_registry_coverage(
    uses: list[CounterUse],
    registered: dict[str, str] | None = None,
    registry_path: str = _REGISTRY_PATH,
) -> list[Finding]:
    """CNT002: registered counters no scanned module ever touches.

    Only meaningful when ``uses`` came from a full-tree scan — the
    runner calls this exclusively in that case.
    """
    if registered is None:
        registered, _ = _registry()
    touched = {u.name for u in uses if not u.is_prefix}
    findings: list[Finding] = []
    for name in sorted(set(registered) - touched):
        findings.append(Finding(
            "CNT002", registry_path, 1,
            f"counter {name!r} is registered in CANONICAL_COUNTERS but "
            "no scanned module increments or reads it; remove it or "
            "wire the increment",
        ))
    return findings
