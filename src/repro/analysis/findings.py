"""Finding model, rule catalogue and suppression handling.

Every pass in :mod:`repro.analysis` reports :class:`Finding` objects —
one per violation, carrying the rule id, the file (as a repo-relative
path), the line and a human-readable message.  A finding can be
*suppressed* in source with an inline marker on the flagged line::

    key = hash(obj)  # repro: ignore[DET001] -- interned sentinel only

Suppressed findings are kept (and counted) so the report can show what
was waived, but they do not fail the gate.  The marker takes a
comma-separated rule list or ``*`` for all rules; everything after
``--`` is a free-form justification.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import asdict, dataclass

__all__ = [
    "Finding",
    "RULES",
    "collect_suppressions",
    "apply_suppressions",
    "render_findings",
    "findings_to_json",
]

#: rule id -> one-line summary (the full catalogue with rationale and
#: examples lives in docs/STATIC_ANALYSIS.md)
RULES: dict[str, str] = {
    "DET001": "salted hash()/id() used for routing or keying "
              "(use repro.hashing.stable_hash*)",
    "DET002": "unseeded random source outside the bench harness "
              "and fault-plan seeding",
    "DET003": "iteration over an unordered set feeding routing, "
              "partitioning or shuffle order without sorted()",
    "DET004": "wall clock (time.time/perf_counter) inside a "
              "simulated-time region (use runtime.events.wall_timer)",
    "DET005": "call into a helper whose return value carries "
              "nondeterminism (hash/id, unseeded RNG, wall clock, "
              "unordered set order) across a function boundary",
    "DET006": "function default argument evaluates a nondeterminism "
              "source at import time",
    "UDF001": "impure UDF body (I/O, global mutation, or a "
              "nondeterministic call in transfer/combine/map/reduce)",
    "UDF002": "combine/merge contract violation (not associative, not "
              "commutative, or ufunc/scalar disagreement)",
    "PAR001": "array fast-path hook without a scalar counterpart or a "
              "registered parity test",
    "CNT001": "counter incremented but not registered in "
              "runtime.events.CANONICAL_COUNTERS",
    "CNT002": "counter registered in CANONICAL_COUNTERS but never "
              "incremented by any scanned module",
    "TYP001": "missing parameter/return annotation in a strict-typed "
              "module",
    "OOC001": "O(graph) materialization of a memmap/shard-served value "
              "(np.asarray/np.array/.tolist/.copy on a whole-graph "
              "receiver)",
    "OOC002": "in-place write into a read-only-intent memmap slice "
              "(shared pages; mutation corrupts every reader)",
    "OOC003": "shard-backed Graph subclass without a raising "
              "GraphError guard on the whole-graph accessor",
    "SUP001": "stale '# repro: ignore[...]' marker: the suppressed "
              "rule no longer fires on that line",
    "E999": "source failed to parse (no other rule can run)",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}{mark} {self.message}"


_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Z0-9*,\s]+)\]"
)


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line.

    Parsed from the token stream so markers inside string literals do
    not count.  ``*`` suppresses every rule on the line.  Sources that
    fail to tokenize yield no suppressions (the parse error surfaces
    through the AST passes instead).
    """
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(1).split(",")}
            out.setdefault(tok.start[0], set()).update(r for r in rules if r)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return out


def apply_suppressions(
    findings: list[Finding], suppressions: dict[int, set[str]]
) -> list[Finding]:
    """Mark findings whose line carries a matching ignore marker."""
    out: list[Finding] = []
    for f in findings:
        rules = suppressions.get(f.line, set())
        if f.rule in rules or "*" in rules:
            out.append(Finding(f.rule, f.path, f.line, f.message, True))
        else:
            out.append(f)
    return out


def render_findings(findings: list[Finding]) -> str:
    """Human-readable report, sorted by path then line then rule."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    return "\n".join(f.render() for f in ordered)


def findings_to_json(
    findings: list[Finding], meta: dict[str, object] | None = None
) -> str:
    """Stable JSON document of a check run (the CI artifact format)."""
    active = [f for f in findings if not f.suppressed]
    doc: dict[str, object] = {
        "schema": "repro-check/v1",
        "rules": RULES,
        "counts": {
            "findings": len(active),
            "suppressed": len(findings) - len(active),
        },
        "findings": [
            asdict(f)
            for f in sorted(findings,
                            key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    if meta:
        doc["meta"] = meta
    return json.dumps(doc, indent=1, sort_keys=True)
