"""Strict typing gate (TYP001) plus an optional mypy bridge.

The container this repo develops in has no mypy, so the gate has two
layers:

* **TYP001** — a stdlib AST annotation-completeness lint over the
  strict modules (``hashing.py``, ``runtime/``, ``mapreduce/``,
  ``propagation/``): every top-level and method ``def`` must annotate
  every parameter (``self``/``cls`` excepted) and its return type.
  This is the subset of mypy-strict that is checkable without a type
  checker, and it is what keeps the strict surface honest locally.
* **mypy** — when installed (CI installs it; see the ``check`` job),
  :func:`run_mypy` shells out with the pyproject config, which turns
  on ``disallow_untyped_defs`` for the same strict modules.  When mypy
  is absent the bridge reports that it skipped rather than failing, so
  ``repro check`` degrades gracefully on dev boxes.

Nested functions (closures like an engine's ``emit``) are exempt from
TYP001: they are implementation detail of an annotated parent and mypy
infers them from context.
"""

from __future__ import annotations

import ast
import importlib.util
import subprocess
import sys

from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    collect_suppressions,
)

__all__ = ["STRICT_PREFIXES", "check_annotations", "mypy_available",
           "run_mypy"]

#: module paths (relative to the ``repro`` package) under strict typing
STRICT_PREFIXES: tuple[str, ...] = (
    "hashing.py", "runtime/", "mapreduce/", "propagation/",
)


def _module_path(path: str) -> str | None:
    norm = path.replace("\\", "/")
    idx = norm.rfind("repro/")
    if idx < 0:
        return None
    return norm[idx + len("repro/"):]


class _AnnotationVisitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []
        self._depth = 0

    def _check(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        missing: list[str] = []
        args = node.args
        positional = args.posonlyargs + args.args
        for i, arg in enumerate(positional):
            if i == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append("*" + star.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            self.findings.append(Finding(
                "TYP001", self.path, node.lineno,
                f"{node.name}() in a strict-typed module is missing "
                f"annotations for: {', '.join(missing)}",
            ))

    def _visit_def(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                   ) -> None:
        if self._depth == 0:
            self._check(node)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1


def check_annotations(source: str, path: str) -> list[Finding]:
    """TYP001 over ``source`` if ``path`` is inside the strict surface."""
    mod = _module_path(path)
    if mod is None or not mod.startswith(STRICT_PREFIXES):
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # E999 is reported by the determinism pass
    visitor = _AnnotationVisitor(path)
    visitor.visit(tree)
    return apply_suppressions(visitor.findings,
                              collect_suppressions(source))


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def run_mypy(paths: list[str]) -> tuple[bool, str]:
    """(ok, output) from mypy, or (True, skip-note) when not installed.

    CI installs mypy and runs this via ``repro check --mypy``; local
    dev boxes without mypy skip cleanly — TYP001 still gates.
    """
    if not mypy_available():
        return True, "mypy not installed; skipped (TYP001 still enforced)"
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *paths],
        capture_output=True, text=True, check=False,
    )
    return proc.returncode == 0, proc.stdout + proc.stderr
