"""Domain-aware static analysis for the Surfer reproduction.

The ``repro check`` gate: determinism lints (DET001–DET004), the UDF
contract verifier (UDF001/UDF002/PAR001), the counter-conservation
pass (CNT001/CNT002) and the strict typing gate (TYP001).  See
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and rationale.
"""

from repro.analysis.findings import (
    RULES,
    Finding,
    apply_suppressions,
    collect_suppressions,
    findings_to_json,
    render_findings,
)

__all__ = [
    "Finding",
    "RULES",
    "apply_suppressions",
    "collect_suppressions",
    "findings_to_json",
    "render_findings",
    "check_paths",
    "CheckReport",
]


def __getattr__(name: str) -> object:
    # runner pulls in numpy-backed contract machinery; keep the base
    # package import light for the findings-only consumers
    if name in ("check_paths", "CheckReport", "iter_python_files"):
        from repro.analysis import runner

        return getattr(runner, name)
    raise AttributeError(name)
