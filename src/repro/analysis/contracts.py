"""UDF contract verifier (UDF001 / UDF002 / PAR001).

Section 5's local combination is only sound when the app's
``combine``/``merge`` obey the contract the engine assumes: arrival
order must not matter (messages race across partitions), partial folds
shipped from remote partitions must equal the unfolded bag, and the
vectorized hooks must agree with their scalar counterparts.  The paper
*assumes* these properties of the UDFs; nothing enforced them.

Three checks, hybrid static + dynamic:

* **UDF001** (static) — purity scan over every ``PropagationApp`` /
  ``MapReduceApp`` subclass body found in a source file: UDFs
  (``transfer``/``combine``/``map``/``reduce``/``merge``/…) must not do
  I/O, touch process-global modules (``random``, ``os``, ``time``,
  ``subprocess``…), use ``global``/``nonlocal``, or mutate ``self`` —
  a re-executed task (fault tolerance, speculation) would observe the
  mutation from the first attempt.  Per-job scratch belongs in
  ``VertexState.extra``, which the engines re-create on re-execution.
* **UDF002** (dynamic) — property checks on *real* payloads: the app's
  own ``transfer``/``map`` runs on a tiny partitioned graph and the
  harvested bags feed associativity / commutativity / partial-fold /
  ufunc-parity checks of ``combine`` and ``merge``.  Virtual-vertex
  apps (VDD) are harvested through ``virtual_transfer`` /
  ``virtual_combine`` so the Section 3.3 path is exercised explicitly.
* **PAR001** (static) — any app overriding an array fast-path hook
  (``transfer_array``, ``map_array``, ``reduce_array``,
  ``select_array``, ``combine_ufunc``, ``merge_ufunc``) must override
  the scalar counterpart it claims to mirror *and* appear in a
  registered parity test (the fast-path suites), otherwise the
  bit-identical guarantee is unenforced.

Float comparisons use a tolerance: IEEE addition is not bitwise
associative, and the engine's guarantee is "same result up to float
re-association" for reordered partial folds.
"""

from __future__ import annotations

import ast
import inspect
from typing import Any, Callable

import numpy as np

from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    collect_suppressions,
)

__all__ = [
    "check_udf_purity",
    "check_array_parity",
    "verify_propagation_app",
    "verify_mapreduce_app",
    "verify_registered_apps",
    "make_contract_pgraph",
]

#: method names treated as UDF bodies for the purity scan
UDF_METHOD_NAMES = frozenset({
    "select", "select_array", "transfer", "transfer_array",
    "virtual_transfer", "virtual_combine", "combine", "merge",
    "frontier", "map", "map_array", "reduce", "reduce_array",
})
_APP_BASES = frozenset({"PropagationApp", "MapReduceApp"})
_IO_CALLS = frozenset({"open", "input", "print", "exec", "eval",
                       "breakpoint"})
_IMPURE_ROOTS = frozenset({"random", "os", "sys", "time", "socket",
                           "subprocess", "shutil", "pathlib"})

_REL_TOL = 1e-9
_ABS_TOL = 1e-12

#: constructor overrides (keyed by the app's paper short name) so every
#: app produces multi-value bags on the 24-vertex contract graph — RS
#: at its default 5% initial adoption seeds a single adopter there,
#: which yields no bag to fold
_CONTRACT_KWARGS: dict[str, dict[str, Any]] = {
    "RS": {"initial_ratio": 0.6},
}


def _instantiate(cls: type) -> Any:
    return cls(**_CONTRACT_KWARGS.get(getattr(cls, "name", ""), {}))


# ---------------------------------------------------------------------------
# UDF001 — static purity scan
# ---------------------------------------------------------------------------

def _base_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _purity_violations(method: ast.FunctionDef, path: str,
                       cls_name: str) -> list[Finding]:
    findings: list[Finding] = []

    def report(node: ast.AST, what: str) -> None:
        findings.append(Finding(
            "UDF001", path, getattr(node, "lineno", method.lineno),
            f"{cls_name}.{method.name}: {what} — UDFs re-execute under "
            "fault tolerance/speculation and must be pure (job scratch "
            "belongs in VertexState.extra)",
        ))

    for node in ast.walk(method):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            report(node, "global/nonlocal state access")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _IO_CALLS:
                report(node, f"I/O or dynamic-execution call {func.id}()")
            elif isinstance(func, ast.Attribute):
                root = func.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if (isinstance(root, ast.Name)
                        and root.id in _IMPURE_ROOTS):
                    report(node,
                           f"call into process-global module {root.id!r}")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    report(node, f"mutates self.{target.attr}")
    return findings


def check_udf_purity(source: str, path: str) -> list[Finding]:
    """UDF001 over every app subclass defined directly in ``source``."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # E999 is reported by the determinism pass
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef)
                and _base_names(node) & _APP_BASES):
            continue
        for item in node.body:
            if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name in UDF_METHOD_NAMES):
                findings.extend(_purity_violations(item, path, node.name))
    return apply_suppressions(findings, collect_suppressions(source))


# ---------------------------------------------------------------------------
# PAR001 — array hook / scalar counterpart / parity-test registration
# ---------------------------------------------------------------------------

def _overrides(cls: type, base: type, name: str) -> bool:
    return getattr(cls, name, None) is not getattr(base, name, None)


def _cls_location(cls: type) -> tuple[str, int]:
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return "<unknown>", 1
    norm = path.replace("\\", "/")
    idx = norm.rfind("/src/repro/")
    if idx >= 0:
        norm = norm[idx + 1:]
    return norm, line


def check_array_parity(classes: list[type],
                       parity_source: str) -> list[Finding]:
    """PAR001 for every app class overriding an array fast-path hook.

    ``parity_source`` is the concatenated text of the registered parity
    suites (the fast-path tests); an app whose class name never appears
    there has no bit-identical check backing its fast path.
    """
    from repro.mapreduce.api import MapReduceApp
    from repro.propagation.api import PropagationApp

    findings: list[Finding] = []
    for cls in classes:
        if issubclass(cls, PropagationApp):
            base: type = PropagationApp
            hook_pairs = [("transfer_array", "transfer"),
                          ("select_array", "select")]
            ufunc_pairs = [("merge_ufunc", "merge")]
        elif issubclass(cls, MapReduceApp):
            base = MapReduceApp
            hook_pairs = [("map_array", "map"), ("reduce_array", "reduce")]
            ufunc_pairs = [("combine_ufunc", "combine")]
        else:
            continue
        path, line = _cls_location(cls)
        overridden: list[tuple[str, str]] = []
        for hook, scalar in hook_pairs:
            if _overrides(cls, base, hook):
                overridden.append((hook, scalar))
        for attr, scalar in ufunc_pairs:
            if getattr(cls, attr, None) is not None:
                overridden.append((attr, scalar))
        if not overridden:
            continue
        for hook, scalar in overridden:
            if not _overrides(cls, base, scalar):
                findings.append(Finding(
                    "PAR001", path, line,
                    f"{cls.__name__} defines {hook} without overriding "
                    f"the scalar counterpart {scalar}(); the fast path "
                    "has no reference semantics to be bit-identical to",
                ))
        if cls.__name__ not in parity_source:
            hooks = ", ".join(h for h, _ in overridden)
            findings.append(Finding(
                "PAR001", path, line,
                f"{cls.__name__} defines array hook(s) {hooks} but is "
                "not exercised by a registered parity test (the "
                "fast-path suites); add it to the scalar-vs-array "
                "parity matrix",
            ))
    return findings


# ---------------------------------------------------------------------------
# UDF002 — dynamic property checks on harvested payloads
# ---------------------------------------------------------------------------

def _approx_eq(a: Any, b: Any) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        if a_arr.shape != b_arr.shape:
            return False
        if a_arr.dtype.kind in "fc" or b_arr.dtype.kind in "fc":
            return bool(np.allclose(a_arr, b_arr,
                                    rtol=_REL_TOL, atol=_ABS_TOL))
        return bool(np.array_equal(a_arr, b_arr))
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b)
    if isinstance(a, (int, float, np.integer, np.floating)) and isinstance(
            b, (int, float, np.integer, np.floating)):
        return bool(np.isclose(float(a), float(b),
                               rtol=_REL_TOL, atol=_ABS_TOL))
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        return a == b
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(_approx_eq(a[k], b[k]) for k in a))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return (len(a) == len(b)
                and all(_approx_eq(x, y) for x, y in zip(a, b)))
    return bool(a == b)


def make_contract_pgraph() -> Any:
    """The tiny graph every contract check harvests payloads from.

    Symmetrized Erdős–Rényi: every app (including the undirected ones —
    TC, TFL, CC) is well-defined on it, and mean in-degree ~10 gives
    every destination a real multi-value bag to fold.
    """
    from repro.core.partitioned import PartitionedGraph
    from repro.graph.generators import erdos_renyi

    graph = erdos_renyi(24, 120, seed=5).symmetrized()
    parts = np.arange(graph.num_vertices, dtype=np.int64) % 3
    return PartitionedGraph(graph, parts, 3)


def _rich_groups(groups: dict[Any, list[Any]],
                 limit: int = 4) -> list[tuple[Any, list[Any]]]:
    """Up to ``limit`` (key, bag) pairs with the largest bags first."""
    ordered = sorted(groups.items(),
                     key=lambda kv: (-len(kv[1]), str(kv[0])))
    return [(k, vals) for k, vals in ordered if len(vals) >= 2][:limit]


def _fold(merge: Callable[[Any, Any], Any], values: list[Any]) -> Any:
    acc = values[0]
    for v in values[1:]:
        acc = merge(acc, v)
    return acc


def _rotate(values: list[Any]) -> list[Any]:
    return values[1:] + values[:1]


def _check_frontier_contract(cls: type, app: Any, state: Any,
                             pgraph: Any, path: str,
                             line: int) -> list[Finding]:
    """The frontier API contract: ``frontier()`` is a bool mask over all
    vertices that agrees with per-vertex ``select`` (and ``select_array``
    where overridden) — the engine's sparse mode routes exactly the
    message set the dense mode would, so any disagreement silently
    changes results between modes."""
    from repro.propagation.api import PropagationApp

    findings: list[Finding] = []

    def fail(what: str) -> None:
        findings.append(Finding(
            "UDF002", path, line, f"{cls.__name__}: {what}"))

    try:
        mask = np.asarray(app.frontier(state))
        if mask.dtype != np.bool_ or mask.shape != (pgraph.num_vertices,):
            fail("frontier() must return a bool mask of shape "
                 f"(num_vertices,); got dtype {mask.dtype}, "
                 f"shape {mask.shape}")
            return findings
        for u in range(pgraph.num_vertices):
            if bool(app.select(int(u), state)) != bool(mask[u]):
                fail(f"frontier() disagrees with select() at vertex {u}; "
                     "frontier and dense mode would route different "
                     "message sets")
                break
        if cls.select_array is not PropagationApp.select_array:
            verts = np.arange(pgraph.num_vertices, dtype=np.int64)
            got = np.asarray(app.select_array(verts, state))
            if not np.array_equal(got.astype(bool), mask):
                fail("frontier() disagrees with select_array() over the "
                     "full vertex range")
    except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
        fail(f"frontier contract check raised ({exc!r})")
    return findings


def verify_propagation_app(cls: type, pgraph: Any = None) -> list[Finding]:
    """UDF002 checks for one ``PropagationApp`` subclass.

    Harvests real messages by running the app's own ``transfer`` (or
    ``virtual_transfer`` for virtual-vertex apps — VDD's Section 3.3
    path) over ``pgraph``, then property-checks the fold UDFs on the
    harvested bags.
    """
    from repro.propagation.api import PropagationApp

    if pgraph is None:
        pgraph = make_contract_pgraph()
    path, line = _cls_location(cls)
    findings: list[Finding] = []

    def fail(what: str) -> None:
        findings.append(Finding(
            "UDF002", path, line, f"{cls.__name__}: {what}"))

    try:
        app = _instantiate(cls)
        state = app.setup(pgraph)
        groups: dict[Any, list[Any]] = {}
        if getattr(cls, "uses_virtual_vertices", False):
            for u in range(pgraph.num_vertices):
                for key, val in app.virtual_transfer(int(u), state):
                    groups.setdefault(key, []).append(val)

            def combine(k: Any, vals: list[Any]) -> Any:
                return app.virtual_combine(k, vals, state)
        else:
            def harvest() -> dict[Any, list[Any]]:
                out: dict[Any, list[Any]] = {}
                for p in range(pgraph.num_parts):
                    src, dst = pgraph.partition_edges(p)
                    for u, v in zip(src.tolist(), dst.tolist()):
                        if not app.select(int(u), state):
                            continue
                        val = app.transfer(int(u), int(v), state)
                        if val is not None:
                            out.setdefault(int(v), []).append(val)
                return out

            groups = harvest()
            if getattr(cls, "uses_frontier", False):
                # frontier apps may start with a near-empty active set
                # (BFS: one source), so the first round rarely yields a
                # multi-value bag — advance real rounds through the
                # app's own combine/update until one appears
                for _ in range(6):
                    if _rich_groups(groups):
                        break
                    combined = {v: app.combine(int(v), list(bag), state)
                                for v, bag in sorted(groups.items())}
                    app.update(state, combined)
                    groups = harvest()

            def combine(k: Any, vals: list[Any]) -> Any:
                return app.combine(k, vals, state)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
        fail(f"contract harness failed to harvest payloads ({exc!r})")
        return findings

    if getattr(cls, "uses_frontier", False):
        findings.extend(_check_frontier_contract(cls, app, state, pgraph,
                                                 path, line))

    rich = _rich_groups(groups)
    if not rich:
        fail("no destination received 2+ messages on the contract "
             "graph; the fold contract cannot be checked")
        return findings

    has_merge = cls.merge is not PropagationApp.merge
    merge_ufunc = getattr(cls, "merge_ufunc", None)
    is_assoc = bool(getattr(cls, "is_associative", False))
    if is_assoc and not has_merge:
        fail("declares is_associative=True but does not override "
             "merge(); local combination would crash")

    for key, vals in rich:
        try:
            base = combine(key, list(vals))
            # arrival order must not matter: messages race across
            # partition boundaries
            for perm in (list(reversed(vals)), _rotate(vals)):
                got = combine(key, perm)
                if not _approx_eq(base, got):
                    fail(f"combine is order-sensitive at key {key!r}: "
                         f"{base!r} vs {got!r} under reordering")
                    break
            if has_merge and is_assoc:
                a, b, c = (vals + vals)[:3]
                left = app.merge(app.merge(a, b), c)
                right = app.merge(a, app.merge(b, c))
                if not _approx_eq(left, right):
                    fail(f"merge is not associative at key {key!r}: "
                         f"{left!r} vs {right!r}")
                # commutativity modulo combine: shipping partials in
                # either order must yield the same combined value
                fwd = combine(key, [app.merge(a, b)])
                rev = combine(key, [app.merge(b, a)])
                if not _approx_eq(fwd, rev):
                    fail(f"merge order leaks through combine at key "
                         f"{key!r}: {fwd!r} vs {rev!r}")
                # partial-fold soundness (Section 5 local combination):
                # folding any split locally then combining the partials
                # must equal combining the raw bag
                mid = max(1, len(vals) // 2)
                split = combine(key, [_fold(app.merge, vals[:mid]),
                                      _fold(app.merge, vals[mid:])])
                if not _approx_eq(base, split):
                    fail(f"local combination changes the result at key "
                         f"{key!r}: {base!r} vs {split!r}")
            if merge_ufunc is not None and has_merge:
                a, b = vals[0], vals[1]
                got = merge_ufunc(a, b)
                want = app.merge(a, b)
                if not _approx_eq(want, got):
                    fail(f"merge_ufunc disagrees with merge at key "
                         f"{key!r}: {want!r} vs {got!r}")
        except Exception as exc:  # noqa: BLE001
            fail(f"contract check raised at key {key!r} ({exc!r})")
    return findings


def verify_mapreduce_app(cls: type, pgraph: Any = None) -> list[Finding]:
    """UDF002 checks for one ``MapReduceApp`` subclass.

    Runs the app's own ``map`` over every partition, groups the emitted
    pairs by key, then property-checks ``combine`` (map-side combiner
    contract) and ``reduce`` (arrival-order insensitivity) on the
    harvested bags.
    """
    from repro.mapreduce.api import MapReduceApp

    if pgraph is None:
        pgraph = make_contract_pgraph()
    path, line = _cls_location(cls)
    findings: list[Finding] = []

    def fail(what: str) -> None:
        findings.append(Finding(
            "UDF002", path, line, f"{cls.__name__}: {what}"))

    try:
        app = _instantiate(cls)
        state = app.setup(pgraph)
        groups: dict[Any, list[Any]] = {}
        for p in range(pgraph.num_parts):
            app.map(p, pgraph, state,
                    lambda k, v: groups.setdefault(k, []).append(v))
    except Exception as exc:  # noqa: BLE001
        fail(f"contract harness failed to harvest payloads ({exc!r})")
        return findings

    rich = _rich_groups(groups)
    if not rich:
        fail("no key received 2+ mapped values on the contract graph; "
             "the combiner contract cannot be checked")
        return findings

    has_combine = cls.combine is not MapReduceApp.combine
    combine_ufunc = getattr(cls, "combine_ufunc", None)
    if combine_ufunc is not None and not has_combine:
        fail("sets combine_ufunc without overriding combine(); the "
             "scalar combiner path would crash")

    def run_reduce(key: Any, vals: list[Any]) -> list[tuple[Any, Any]]:
        out: list[tuple[Any, Any]] = []
        app.reduce(key, vals, state, lambda k, v: out.append((k, v)))
        return out

    for key, vals in rich:
        try:
            # reduce must not depend on shuffle arrival order
            base_out = run_reduce(key, list(vals))
            for perm in (list(reversed(vals)), _rotate(vals)):
                got_out = run_reduce(key, perm)
                if not _approx_eq(base_out, got_out):
                    fail(f"reduce is order-sensitive at key {key!r}: "
                         f"{base_out!r} vs {got_out!r} under reordering")
                    break
            if has_combine:
                base = app.combine(key, list(vals), state)
                for perm in (list(reversed(vals)), _rotate(vals)):
                    got = app.combine(key, perm, state)
                    if not _approx_eq(base, got):
                        fail(f"combine is order-sensitive at key {key!r}"
                             f": {base!r} vs {got!r} under reordering")
                        break
                mid = max(1, len(vals) // 2)
                split = app.combine(key, [
                    app.combine(key, vals[:mid], state),
                    app.combine(key, vals[mid:], state),
                ], state)
                if not _approx_eq(base, split):
                    fail(f"combining combined partials changes the "
                         f"result at key {key!r}: {base!r} vs {split!r}")
                if combine_ufunc is not None:
                    got = _fold(combine_ufunc, list(vals))
                    if not _approx_eq(base, got):
                        fail(f"combine_ufunc left-fold disagrees with "
                             f"combine at key {key!r}: {base!r} vs "
                             f"{got!r}")
        except Exception as exc:  # noqa: BLE001
            fail(f"contract check raised at key {key!r} ({exc!r})")
    return findings


def verify_registered_apps(
    parity_source: str | None = None,
) -> list[Finding]:
    """Run UDF002 + PAR001 over every registered app (both registries).

    ``parity_source`` defaults to the concatenated fast-path parity
    suites found next to the installed tree; tests inject fixture text.
    """
    from repro.apps import APP_REGISTRY, EXTENSION_APPS

    prop_classes: list[type] = []
    mr_classes: list[type] = []
    for prop_cls, mr_cls, _ in APP_REGISTRY.values():
        prop_classes.append(prop_cls)
        mr_classes.append(mr_cls)
    for prop_cls, mr_cls in EXTENSION_APPS.values():
        if prop_cls is not None:
            prop_classes.append(prop_cls)
        if mr_cls is not None:
            mr_classes.append(mr_cls)

    if parity_source is None:
        parity_source = _default_parity_source()

    pgraph = make_contract_pgraph()
    findings: list[Finding] = []
    for cls in prop_classes:
        findings.extend(verify_propagation_app(cls, pgraph))
    for cls in mr_classes:
        findings.extend(verify_mapreduce_app(cls, pgraph))
    findings.extend(
        check_array_parity(prop_classes + mr_classes, parity_source))
    return findings


#: test files that count as registered scalar-vs-array parity suites
PARITY_SUITES: tuple[str, ...] = (
    "tests/test_transfer_fastpath.py",
    "tests/test_mr_fastpath.py",
    "tests/test_frontier_traversal.py",
)


def _default_parity_source() -> str:
    import os

    import repro

    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))))
    chunks: list[str] = []
    for rel in PARITY_SUITES:
        candidate = os.path.join(repo_root, *rel.split("/"))
        try:
            with open(candidate, encoding="utf-8") as fh:
                chunks.append(fh.read())
        except OSError:
            continue
    return "\n".join(chunks)
