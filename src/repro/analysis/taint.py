"""Interprocedural nondeterminism taint analysis (DET005/DET006).

DET001–DET004 flag nondeterminism *sources* where they are written, but
a helper function launders them trivially::

    def fresh_key(obj):          # lives in an unscoped utility module
        return hash(obj)         # DET001 only fires in DET scopes

    route = fresh_key(msg) % n   # engine code: invisible to v1

This pass closes that hole.  Using the project call graph
(:mod:`repro.analysis.callgraph`) it computes, by fixpoint, the set of
functions whose **return value carries nondeterminism** — a direct
source (``hash()``/``id()``, wall clock, unseeded RNG, unordered set
order) flowing into a ``return``, or a call to an already-tainted
function doing so.  Then:

* **DET005** — a call site inside the determinism-critical scopes
  (:data:`repro.analysis.determinism.DET003_SCOPE`) that provably
  reaches a tainted function.
* **DET006** — a function default argument, anywhere in the package,
  that evaluates a source (or calls a tainted function) at import time:
  the value is frozen per-process, so two workers disagree forever.

Sources that carry an inline ``# repro: ignore[DET00x]`` waiver do not
taint — a reviewed, justified source is by definition not laundered.
Functions named ``__hash__`` are exempt end to end, mirroring DET001.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    FunctionInfo,
    ModuleIndex,
    ProjectIndex,
    module_path,
)
from repro.analysis.determinism import (
    DET003_SCOPE,
    _DET002_EXEMPT,
    _NUMPY_SEEDED_OK,
    _WALL_CLOCK_ATTRS,
)
from repro.analysis.findings import (
    Finding,
    apply_suppressions,
    collect_suppressions,
)

__all__ = ["check_taint", "compute_tainted"]

#: modules whose wall-clock reads are the sanctioned clock, not a source
_WALL_EXEMPT: tuple[str, ...] = ("runtime/events.py",)
#: builtins that freeze an unordered set's iteration order into a value
_SET_CONSUMERS = frozenset({"list", "tuple", "iter"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


class _Env:
    """Import-alias view of one module, derived from its index."""

    def __init__(self, mod: ModuleIndex):
        ia, fi = mod.import_aliases, mod.from_imports
        self.time_aliases = {n for n, m in ia.items() if m == "time"}
        self.time_names = {
            n: q.rsplit(".", 1)[1]
            for n, q in fi.items() if q.startswith("time.")
        }
        self.numpy_aliases = {
            n for n, m in ia.items() if m in ("numpy", "numpy.random")
        }
        self.npr_aliases = (
            {n for n, m in ia.items() if m == "numpy.random"}
            | {n for n, q in fi.items() if q == "numpy.random"}
        )
        self.npr_names = {
            n: q.split(".")[-1]
            for n, q in fi.items()
            if q.startswith("numpy.random.") and q != "numpy.random"
        }
        self.random_aliases = {n for n, m in ia.items() if m == "random"}
        self.random_names = {
            n: q.rsplit(".", 1)[1]
            for n, q in fi.items()
            if q.startswith("random.") and q.count(".") == 1
        }


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactic set producer (no local type tracking — conservative)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


def _npr_attr(func: ast.expr, env: _Env) -> str | None:
    """The ``X`` of ``np.random.X`` / ``npr.X`` attribute calls."""
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if (isinstance(base, ast.Attribute) and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in env.numpy_aliases):
        return func.attr
    if isinstance(base, ast.Name) and base.id in env.npr_aliases:
        return func.attr
    return None


def _direct_source(
    node: ast.Call, env: _Env, modpath: str
) -> tuple[str, str] | None:
    """(base rule, reason) when ``node`` is a nondeterminism source."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("hash", "id"):
        return "DET001", f"process-salted built-in {func.id}()"
    if not modpath.startswith(_WALL_EXEMPT):
        if (isinstance(func, ast.Attribute)
                and func.attr in _WALL_CLOCK_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id in env.time_aliases):
            return "DET004", f"wall clock time.{func.attr}()"
        if (isinstance(func, ast.Name)
                and env.time_names.get(func.id) in _WALL_CLOCK_ATTRS):
            return "DET004", f"wall clock time.{env.time_names[func.id]}()"
    if not modpath.startswith(_DET002_EXEMPT):
        attr = _npr_attr(func, env)
        if attr is None and isinstance(func, ast.Name):
            attr = env.npr_names.get(func.id)
        if attr is not None:
            if attr not in _NUMPY_SEEDED_OK:
                return "DET002", f"unseeded numpy.random.{attr}"
            if attr == "default_rng" and (
                not node.args
                or (isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None)
            ):
                return "DET002", "seedless default_rng()"
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in env.random_aliases):
            return "DET002", f"process-global stdlib random.{func.attr}"
        if isinstance(func, ast.Name) and func.id in env.random_names:
            return ("DET002",
                    f"process-global stdlib random.{env.random_names[func.id]}")
    if (isinstance(func, ast.Name) and func.id in _SET_CONSUMERS
            and node.args and _is_set_expr(node.args[0])):
        return "DET003", f"{func.id}() freezes an unordered set's order"
    return None


def _iter_body_nodes(fn_node: ast.AST):
    """Statements/expressions of a function, skipping nested defs."""
    stack = list(getattr(fn_node, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class _FnFacts:
    """Return-flow facts for one function."""

    sources: list[tuple[int, str]] = field(default_factory=list)
    #: resolved callee qname -> first call-site line, for calls whose
    #: result can flow into a return
    return_calls: dict[str, int] = field(default_factory=dict)


def _fn_facts(
    info: FunctionInfo,
    env: _Env,
    index: ProjectIndex,
    suppressed: dict[int, set[str]],
) -> _FnFacts:
    assigns: dict[str, list[ast.expr]] = {}
    returns: list[ast.expr] = []
    for node in _iter_body_nodes(info.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigns.setdefault(target.id, []).append(node.value)
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
                and isinstance(node.target, ast.Name)):
            assigns.setdefault(node.target.id, []).append(node.value)
        elif (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Name)):
            assigns.setdefault(node.target.id, []).append(node.value)
        elif isinstance(node, ast.Return) and node.value is not None:
            returns.append(node.value)

    # closure of return-feeding expressions: the returns themselves plus
    # everything assigned to any name mentioned in one
    exprs: list[ast.expr] = list(returns)
    seen_names: set[str] = set()
    i = 0
    while i < len(exprs):
        for sub in ast.walk(exprs[i]):
            if isinstance(sub, ast.Name) and sub.id not in seen_names:
                seen_names.add(sub.id)
                exprs.extend(assigns.get(sub.id, ()))
        i += 1

    facts = _FnFacts()
    modpath = module_path(info.path) or ""
    seen_calls: set[int] = set()
    for expr in exprs:
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call) or id(sub) in seen_calls:  # repro: ignore[DET001] -- AST node identity within one process
                continue
            seen_calls.add(id(sub))  # repro: ignore[DET001] -- AST node identity within one process
            hit = _direct_source(sub, env, modpath)
            if hit is not None:
                rule, reason = hit
                waived = suppressed.get(sub.lineno, set())
                if rule not in waived and "*" not in waived:
                    facts.sources.append((sub.lineno, reason))
            callee = index.resolve_call(sub, info.module, info.cls)
            if callee is not None:
                facts.return_calls.setdefault(callee.qname, sub.lineno)
    return facts


def compute_tainted(
    index: ProjectIndex,
    suppressions: dict[str, dict[int, set[str]]] | None = None,
) -> dict[str, str]:
    """qname -> reason for every function whose return is tainted."""
    suppressions = suppressions or {}
    facts: dict[str, _FnFacts] = {}
    for qname, info in index.functions.items():
        if info.name == "__hash__":
            continue
        mod = index.modules.get(info.module)
        if mod is None:
            continue
        facts[qname] = _fn_facts(
            info, _Env(mod), index, suppressions.get(info.path, {}))

    tainted: dict[str, str] = {}
    for qname, fn in sorted(facts.items()):
        if fn.sources:
            _, reason = min(fn.sources)
            tainted[qname] = reason
    changed = True
    while changed:
        changed = False
        for qname, fn in sorted(facts.items()):
            if qname in tainted:
                continue
            for callee in sorted(fn.return_calls):
                if callee in tainted:
                    base = tainted[callee]
                    root = (base.split(": ", 1)[1]
                            if base.startswith("via ") else base)
                    tainted[qname] = f"via {callee}: {root}"
                    changed = True
                    break
    return tainted


class _CallSiteVisitor(ast.NodeVisitor):
    """DET005: in-scope call sites reaching tainted functions."""

    def __init__(self, mod: ModuleIndex, index: ProjectIndex,
                 tainted: dict[str, str]):
        self.mod = mod
        self.index = index
        self.tainted = tainted
        self.findings: list[Finding] = []
        self._cls: list[str] = []
        self._hash_exempt = 0
        self._fn_qnames: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._cls.append(node.name)
        self.generic_visit(node)
        self._cls.pop()

    def _visit_fn(self, node: ast.AST, name: str) -> None:
        parts = [self.mod.module, *self._cls, name]
        self._fn_qnames.append(".".join(parts))
        if name == "__hash__":
            self._hash_exempt += 1
        self.generic_visit(node)
        if name == "__hash__":
            self._hash_exempt -= 1
        self._fn_qnames.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_fn(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_fn(node, node.name)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._hash_exempt:
            cls = self._cls[-1] if self._cls else None
            callee = self.index.resolve_call(node, self.mod.module, cls)
            if (callee is not None and callee.qname in self.tainted
                    and callee.qname not in self._fn_qnames):
                self.findings.append(Finding(
                    "DET005", self.mod.path, node.lineno,
                    f"call to {callee.qname}() whose return value "
                    "carries nondeterminism "
                    f"({self.tainted[callee.qname]}); route through a "
                    "seeded/stable API before it reaches routing, "
                    "payloads or counters",
                ))
        self.generic_visit(node)


def _check_defaults(
    info: FunctionInfo,
    env: _Env,
    index: ProjectIndex,
    tainted: dict[str, str],
) -> list[Finding]:
    args = info.node.args
    defaults = list(getattr(args, "defaults", []))
    defaults += [d for d in getattr(args, "kw_defaults", []) if d is not None]
    findings: list[Finding] = []
    modpath = module_path(info.path) or ""
    for default in defaults:
        for sub in ast.walk(default):
            if not isinstance(sub, ast.Call):
                continue
            hit = _direct_source(sub, env, modpath)
            reason = hit[1] if hit is not None else None
            if reason is None:
                callee = index.resolve_call(sub, info.module, info.cls)
                if callee is not None and callee.qname in tainted:
                    reason = (f"calls {callee.qname}(): "
                              f"{tainted[callee.qname]}")
            if reason is not None:
                findings.append(Finding(
                    "DET006", info.path, sub.lineno,
                    f"default argument of {info.name}() evaluates a "
                    f"nondeterminism source at import time ({reason}); "
                    "default to None and resolve per call instead",
                ))
    return findings


def check_taint(
    index: ProjectIndex, sources: dict[str, str]
) -> list[Finding]:
    """Run DET005/DET006 over an indexed project.

    ``sources`` maps each indexed path to its text, so inline
    suppression markers are honoured both as taint waivers (a waived
    source does not taint) and on the new findings themselves.
    """
    suppressions = {
        path: collect_suppressions(text) for path, text in sources.items()
    }
    tainted = compute_tainted(index, suppressions)

    by_path: dict[str, list[Finding]] = {}
    for mod in index.modules.values():
        modpath = module_path(mod.path)
        if modpath is not None and modpath.startswith(DET003_SCOPE):
            visitor = _CallSiteVisitor(mod, index, tainted)
            visitor.visit(mod.tree)
            if visitor.findings:
                by_path.setdefault(mod.path, []).extend(visitor.findings)
    for _, info in sorted(index.functions.items()):
        mod = index.modules.get(info.module)
        if mod is None:
            continue
        found = _check_defaults(info, _Env(mod), index, tainted)
        if found:
            by_path.setdefault(info.path, []).extend(found)

    out: list[Finding] = []
    for path in sorted(by_path):
        out.extend(apply_suppressions(
            by_path[path], suppressions.get(path, {})))
    return out
