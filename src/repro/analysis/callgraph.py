"""Project-wide symbol table and call graph (pure stdlib ``ast``).

The interprocedural passes (:mod:`repro.analysis.taint`) need to answer
one question the per-file lints cannot: *which function does this call
site reach?*  This module builds the index that answers it:

* a :class:`ModuleIndex` per scanned ``repro`` module — its top-level
  functions, classes (with methods and base names) and import aliases;
* a :class:`ProjectIndex` over all of them, keyed by dotted qualified
  name (``repro.graph.store.ShardStore.shard_indices``), with
  :meth:`ProjectIndex.resolve_call` mapping a call-site AST node to the
  :class:`FunctionInfo` it reaches.

Resolution is deliberately conservative: plain-name calls to same-module
or ``from``-imported functions, ``self.method`` within a class (walking
known base classes), and ``module_alias.func`` attribute calls.  A call
that cannot be proven to reach a known function resolves to ``None`` —
the taint pass never guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleIndex",
    "ProjectIndex",
    "module_path",
    "dotted_module",
    "build_project_index",
]


def module_path(path: str) -> str | None:
    """Path relative to the ``repro`` package, or None if outside it.

    Mirrors the determinism pass's scoping helper so every pass agrees
    on what is "inside the package".
    """
    norm = path.replace("\\", "/")
    marker = "repro/"
    idx = norm.rfind(marker)
    if idx < 0:
        return None
    return norm[idx + len(marker):]


def dotted_module(path: str) -> str | None:
    """Dotted module name (``repro.graph.store``) for a repo path."""
    mod = module_path(path)
    if mod is None or not mod.endswith(".py"):
        return None
    parts = mod[:-3].split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qname: str
    module: str
    path: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class ClassInfo:
    """One class definition: methods plus (unresolved) base names."""

    qname: str
    module: str
    name: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleIndex:
    """Symbols and import aliases of one scanned module."""

    module: str
    path: str
    tree: ast.Module
    #: local alias -> dotted module name (``import repro.hashing as h``)
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> dotted qname (``from repro.hashing import stable_hash``)
    from_imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _resolve_relative(module: str, node: ast.ImportFrom) -> str | None:
    """Absolute dotted module for a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    # level=1 strips the module's own name, each extra level one package
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def _index_module(path: str, tree: ast.Module, module: str) -> ModuleIndex:
    idx = ModuleIndex(module=module, path=path, tree=tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                idx.import_aliases[alias.asname
                                   or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module, node)
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                idx.from_imports[alias.asname or alias.name] = (
                    f"{target}.{alias.name}")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{module}.{node.name}"
            idx.functions[node.name] = FunctionInfo(
                qname, module, path, node.name, None, node)
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(f"{module}.{node.name}", module, node.name)
            for base in node.bases:
                if isinstance(base, ast.Name):
                    cls.bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    cls.bases.append(base.attr)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        f"{cls.qname}.{item.name}", module, path,
                        item.name, node.name, item)
            idx.classes[node.name] = cls
    return idx


@dataclass
class ProjectIndex:
    """The cross-module symbol table the interprocedural passes query."""

    modules: dict[str, ModuleIndex] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_source(self, path: str, source: str) -> None:
        """Index one file (ignored when outside the ``repro`` package
        or unparsable — parse errors surface as E999 elsewhere)."""
        module = dotted_module(path)
        if module is None:
            return
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return
        idx = _index_module(path, tree, module)
        self.modules[module] = idx
        for info in idx.functions.values():
            self.functions[info.qname] = info
        for cls in idx.classes.values():
            self.classes[cls.qname] = cls
            for info in cls.methods.values():
                self.functions[info.qname] = info

    # ------------------------------------------------------------------
    def _base_class(self, mod: ModuleIndex, name: str) -> ClassInfo | None:
        """Resolve a base-class *name* as written in ``mod``."""
        if name in mod.classes:
            return mod.classes[name]
        qname = mod.from_imports.get(name)
        if qname is not None:
            return self.classes.get(qname)
        return None

    def _method_on(self, mod: ModuleIndex, cls: ClassInfo,
                   method: str, depth: int = 0) -> FunctionInfo | None:
        """``cls.method`` walking known base classes (bounded depth)."""
        if method in cls.methods:
            return cls.methods[method]
        if depth >= 4:
            return None
        for base_name in cls.bases:
            base = self._base_class(mod, base_name)
            if base is None:
                continue
            base_mod = self.modules.get(base.module)
            if base_mod is None:
                continue
            found = self._method_on(base_mod, base, method, depth + 1)
            if found is not None:
                return found
        return None

    def resolve_call(self, call: ast.Call, module: str,
                     cls: str | None = None) -> FunctionInfo | None:
        """The function a call site provably reaches, or None."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in mod.functions:
                return mod.functions[func.id]
            qname = mod.from_imports.get(func.id)
            if qname is not None:
                return self.functions.get(qname)
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            recv = func.value.id
            if recv in ("self", "cls") and cls is not None:
                owner = mod.classes.get(cls)
                if owner is not None:
                    return self._method_on(mod, owner, func.attr)
                return None
            target_module = mod.import_aliases.get(recv)
            if target_module is None:
                # ``from repro.graph import store`` binds a module too
                maybe = mod.from_imports.get(recv)
                if maybe is not None and maybe in {
                    m for m in self.modules
                }:
                    target_module = maybe
            if target_module is not None:
                return self.functions.get(f"{target_module}.{func.attr}")
        return None


def build_project_index(sources: dict[str, str]) -> ProjectIndex:
    """Index ``{path: source}`` into one :class:`ProjectIndex`."""
    index = ProjectIndex()
    for path in sorted(sources):
        index.add_source(path, sources[path])
    return index
