"""Experiment-result containers and plain-text table/series rendering.

Every experiment function in :mod:`repro.bench.experiments` returns an
:class:`ExperimentTable` (for the paper's tables) or a dict of series (for
its figures); the benchmark scripts print them in the same row/column
arrangement the paper uses so shapes can be compared side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentTable", "format_value", "format_bytes",
           "format_seconds", "render_bars"]


def format_seconds(seconds: float) -> str:
    """Human-scaled time: s / min / h."""
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.2f}h"


def format_bytes(nbytes: float) -> str:
    """Human-scaled bytes: B / KB / MB / GB."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(nbytes) < 1024:
            return (f"{nbytes:.0f}{unit}" if unit == "B"
                    else f"{nbytes:.2f}{unit}")
        nbytes /= 1024
    return f"{nbytes:.2f}TB"


def format_value(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class ExperimentTable:
    """A labelled table of experiment results."""

    title: str
    columns: list[str]
    rows: list[tuple[str, list]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, label: str, values: list) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row '{label}' has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append((label, list(values)))

    def cell(self, row_label: str, column: str):
        """Fetch one cell by labels (used by assertions in benches)."""
        col = self.columns.index(column)
        for label, values in self.rows:
            if label == row_label:
                return values[col]
        raise KeyError(row_label)

    def render(self) -> str:
        """Plain-text rendering with aligned columns."""
        header = [""] + self.columns
        body = [[label] + [format_value(v) for v in values]
                for label, values in self.rows]
        widths = [
            max(len(str(row[i])) for row in [header] + body)
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(
            str(cell).ljust(widths[i]) for i, cell in enumerate(header)
        ).rstrip())
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(
                str(cell).ljust(widths[i]) for i, cell in enumerate(row)
            ).rstrip())
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_bars(
    series: dict,
    width: int = 46,
    unit: str = "",
    title: str = "",
) -> str:
    """Render ``{label: value}`` as an ASCII horizontal bar chart.

    Used by the CLI and benches to show the paper's figures as text.
    """
    if not series:
        return title
    peak = max(float(v) for v in series.values()) or 1.0
    label_width = max(len(str(k)) for k in series)
    lines = [title] if title else []
    for label, value in series.items():
        value = float(value)
        bar = "#" * max(1 if value > 0 else 0,
                        int(round(value / peak * width)))
        lines.append(
            f"{str(label).ljust(label_width)} |{bar.ljust(width)}| "
            f"{format_value(value)}{unit}"
        )
    return "\n".join(lines)
