"""Stable-schema bench JSON: the repo's persisted performance trajectory.

Every PR appends one ``BENCH_<PR>.json`` at the repo root so regressions
show up as a diff between consecutive files rather than as folklore.
The schema is deliberately small and frozen (``SCHEMA``):

.. code-block:: json

    {
      "schema": "repro-bench/v1",
      "pr": "PR3",
      "workloads": {
        "fig7_nr_propagation": {
          "makespan_s": 123.4,
          "machine_time_s": 456.7,
          "network_bytes": 890,
          "disk_bytes": 123,
          "messages_shipped": 456,
          "tasks": 128,
          "wall_clock_s": 1.2
        }
      }
    }

``makespan_s``/``machine_time_s``/``network_bytes``/``disk_bytes`` come
from :class:`~repro.cluster.cluster.ClusterMetrics`; ``messages_shipped``
and ``tasks`` from the job's metrics registry (0 when the engine does
not populate them); ``wall_clock_s`` is real Python time for the run, so
simulator-speed regressions are visible alongside simulated-cost ones.
"""

from __future__ import annotations

import json

SCHEMA = "repro-bench/v1"

#: every workload record carries exactly these keys
RECORD_FIELDS = (
    "makespan_s",
    "machine_time_s",
    "network_bytes",
    "disk_bytes",
    "messages_shipped",
    "tasks",
    "wall_clock_s",
)

#: optional per-record keys — present only where the runner measured
#: them (``peak_rss_bytes``: real process peak RSS around the run, the
#: out-of-core benchmarks' bounded-memory claim; ``rss_degraded``:
#: boolean flag set when the RSS sampling thread failed to shut down
#: cleanly, so the measurement is a coarser lower bound than usual)
OPTIONAL_RECORD_FIELDS = ("peak_rss_bytes", "rss_degraded")

__all__ = ["SCHEMA", "RECORD_FIELDS", "OPTIONAL_RECORD_FIELDS",
           "job_record", "write_bench_json", "validate_bench_json",
           "load_bench_json"]


def _messages_shipped(registry) -> float:
    """The message counter of the engine that actually ran the job.

    A registry may carry *both* counter families — e.g. the propagation
    counter canonically registered at 0 on a MapReduce job — so a plain
    ``get(propagation..., default=get(mapreduce...))`` masks the
    fallback behind the zero and records 0 for MR workloads.  Key on
    the engines' round/iteration counters instead: whichever engine
    drove the job is the one whose message counter we report.
    """
    if registry.get("propagation.iterations") > 0:
        return registry.get("propagation.messages_shipped")
    if registry.get("mapreduce.rounds") > 0:
        return registry.get("mapreduce.map_records")
    # neither engine marker present (synthetic registries): old behaviour
    return registry.get("propagation.messages_shipped",
                        registry.get("mapreduce.map_records"))


def job_record(job, wall_clock_s: float,
               peak_rss_bytes: int | None = None,
               rss_degraded: bool = False) -> dict:
    """One workload record from a finished :class:`JobResult`.

    ``peak_rss_bytes``, when the runner measured it, is recorded as an
    optional field (see :data:`OPTIONAL_RECORD_FIELDS`);
    ``rss_degraded`` is only recorded when True, and marks an RSS
    number measured under a misbehaving sampler.
    """
    metrics = job.metrics
    registry = job.events.metrics if job.events is not None else None
    shipped = tasks = 0.0
    if registry is not None:
        shipped = _messages_shipped(registry)
        tasks = registry.get("scheduler.tasks_executed")
    record = {
        "makespan_s": round(float(metrics.response_time), 6),
        "machine_time_s": round(float(metrics.total_machine_time), 6),
        "network_bytes": int(metrics.network_bytes),
        "disk_bytes": int(metrics.disk_bytes),
        "messages_shipped": int(shipped),
        "tasks": int(tasks),
        "wall_clock_s": round(float(wall_clock_s), 6),
    }
    if peak_rss_bytes is not None:
        record["peak_rss_bytes"] = int(peak_rss_bytes)
    if rss_degraded:
        record["rss_degraded"] = True
    return record


def write_bench_json(path, workloads: dict[str, dict],
                     pr: str = "PR3") -> dict:
    """Validate and write a bench document; returns the document."""
    doc = {"schema": SCHEMA, "pr": pr, "workloads": workloads}
    errors = validate_bench_json(doc)
    if errors:
        raise ValueError("invalid bench document: " + "; ".join(errors))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def load_bench_json(path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def validate_bench_json(doc) -> list[str]:
    """All schema violations in ``doc`` (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("pr"), str) or not doc.get("pr"):
        errors.append("pr must be a non-empty string")
    workloads = doc.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        errors.append("workloads must be a non-empty object")
        return errors
    for name, record in workloads.items():
        if not isinstance(record, dict):
            errors.append(f"workload {name!r} is not an object")
            continue
        missing = [f for f in RECORD_FIELDS if f not in record]
        extra = [f for f in record
                 if f not in RECORD_FIELDS and f not in OPTIONAL_RECORD_FIELDS]
        if missing:
            errors.append(f"workload {name!r} missing {missing}")
        if extra:
            errors.append(f"workload {name!r} has unknown fields {extra}")
        for f in RECORD_FIELDS + OPTIONAL_RECORD_FIELDS:
            value = record.get(f)
            if f == "rss_degraded":
                # the one non-numeric field: a marker, not a measurement
                if f in record and not isinstance(value, bool):
                    errors.append(f"workload {name!r}.{f} is not a boolean")
                continue
            # bool is an int subclass; True/False are not measurements
            if f in record and (isinstance(value, bool)
                                or not isinstance(value, (int, float))):
                errors.append(f"workload {name!r}.{f} is not a number")
            elif f in record and value < 0:
                errors.append(f"workload {name!r}.{f} is negative")
    return errors
