"""Perf-trajectory regression gate over the ``BENCH_PR*.json`` history.

The repo's quantitative claims (PR 2's ~6-7x Transfer fast path, PR 4's
~4.4x MapReduce round, PR 6's recovery overhead) only stay claims while
someone re-measures them.  This gate does that mechanically: every
``repro bench --gate`` run compares the freshly measured records against
the *latest committed baseline* for each workload (the highest-numbered
``BENCH_PR*.json`` that contains it) and fails when a metric regressed
beyond its tolerance.

Tolerances are **relative** and per-metric: simulated cost counters are
deterministic, so they get tight bounds (any drift is a real cost-model
change someone must bless), while ``wall_clock_s`` — real Python time,
min-of-N sampled but still hardware-dependent — gets a wide one.
Improvements never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.benchjson import OPTIONAL_RECORD_FIELDS, RECORD_FIELDS

__all__ = [
    "DEFAULT_TOLERANCES",
    "GateFinding",
    "GateResult",
    "latest_baselines",
    "compare_records",
    "gate",
]

#: relative tolerance per metric (0.05 = current may exceed baseline by
#: 5%).  Simulated metrics are deterministic: identical inputs must
#: reproduce identical counters, so the slack only covers blessed noise
#: like float rounding; ``wall_clock_s`` crosses machines and gets 3x.
DEFAULT_TOLERANCES: dict[str, float] = {
    "makespan_s": 0.05,
    "machine_time_s": 0.05,
    "network_bytes": 0.02,
    "disk_bytes": 0.02,
    "messages_shipped": 0.0,
    "tasks": 0.0,
    "wall_clock_s": 3.0,
    # real process memory: allocator/OS-dependent, but a 50% jump means
    # an O(shard) bound quietly became O(graph)
    "peak_rss_bytes": 0.5,
}

#: guard for integer-zero baselines: a regression needs to clear this
#: absolute floor too, so 0 -> 1e-12 style noise cannot trip the gate
_ABS_FLOOR = 1e-9


@dataclass(frozen=True)
class GateFinding:
    """One (workload, metric) comparison against its baseline."""

    workload: str
    metric: str
    baseline: float
    current: float
    baseline_pr: str
    tolerance: float
    regression: bool

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return 100.0 * (self.current / self.baseline - 1.0)

    def describe(self) -> str:
        delta = self.delta_pct
        delta_s = ("+inf%" if delta == float("inf")
                   else f"{delta:+.1f}%")
        return (f"{self.workload}.{self.metric}: {self.current:,.6g} vs "
                f"{self.baseline:,.6g} ({self.baseline_pr}) = {delta_s} "
                f"(tolerance {self.tolerance:.0%})")


@dataclass
class GateResult:
    """The gate's verdict: regressions, near-misses, unbaselined work."""

    findings: list[GateFinding] = field(default_factory=list)
    #: workloads measured now but absent from every committed baseline
    missing: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[GateFinding]:
        return [f for f in self.findings if f.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = []
        if self.ok:
            lines.append("gate: PASS — no metric regressed beyond "
                         "tolerance")
        else:
            lines.append(f"gate: FAIL — {len(self.regressions)} "
                         "regression(s) beyond tolerance")
            for f in self.regressions:
                lines.append(f"  REGRESSION {f.describe()}")
        for name in self.missing:
            lines.append(f"  note: {name} has no committed baseline "
                         "(new workload — bless it with --bless)")
        return "\n".join(lines)


def latest_baselines(
    history: list[dict],
) -> dict[str, tuple[str, dict]]:
    """``{workload: (pr, record)}`` from the newest doc that has it.

    ``history`` must be ordered oldest → newest (the order
    :func:`repro.bench.trajectory.load_history` returns).
    """
    latest: dict[str, tuple[str, dict]] = {}
    for doc in history:
        pr = str(doc.get("pr", "?"))
        for name, record in doc.get("workloads", {}).items():
            latest[name] = (pr, record)
    return latest


def compare_records(
    current: dict[str, dict],
    history: list[dict],
    tolerances: dict[str, float] | None = None,
    per_workload: dict[str, dict[str, float]] | None = None,
) -> GateResult:
    """Gate ``current`` records against the committed history.

    ``tolerances`` overrides :data:`DEFAULT_TOLERANCES` globally;
    ``per_workload`` maps workload names to per-metric overrides (the
    experiment configs' ``[tolerances]`` tables) that win over both.
    """
    base_tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        base_tol.update(tolerances)
    baselines = latest_baselines(history)
    result = GateResult()
    for name in sorted(current):
        if name not in baselines:
            result.missing.append(name)
            continue
        pr, baseline = baselines[name]
        overrides = (per_workload or {}).get(name, {})
        for metric in RECORD_FIELDS + OPTIONAL_RECORD_FIELDS:
            if metric not in DEFAULT_TOLERANCES:
                # non-numeric markers (rss_degraded) carry no tolerance
                # and cannot regress
                continue
            if metric in OPTIONAL_RECORD_FIELDS and (
                    metric not in baseline or metric not in current[name]):
                # optional metrics gate only when measured on both sides:
                # a missing baseline value is not a zero to regress from
                continue
            tol = overrides.get(metric, base_tol[metric])
            base_v = float(baseline.get(metric, 0.0))
            cur_v = float(current[name].get(metric, 0.0))
            regressed = cur_v > base_v * (1.0 + tol) + _ABS_FLOOR
            result.findings.append(GateFinding(
                workload=name,
                metric=metric,
                baseline=base_v,
                current=cur_v,
                baseline_pr=pr,
                tolerance=tol,
                regression=regressed,
            ))
    return result


def gate(
    current: dict[str, dict],
    history: list[dict],
    tolerances: dict[str, float] | None = None,
    per_workload: dict[str, dict[str, float]] | None = None,
) -> GateResult:
    """Alias for :func:`compare_records` (the CLI entry point)."""
    return compare_records(current, history, tolerances=tolerances,
                           per_workload=per_workload)
