"""Peak-RSS measurement for the out-of-core benchmarks.

The XL benchmarks' whole point is a *bounded-memory* claim: a 10M+-edge
run through the shard store must finish with peak RSS O(largest shard +
engine state), not O(graph).  That claim is only worth anything as a
measured, regression-gated number, so this module turns "peak resident
set during this call" into a metric.

On Linux the kernel maintains ``VmHWM`` (high-water-mark RSS) per
process and lets us *reset* it by writing ``5`` to
``/proc/self/clear_refs``; reset-then-read brackets exactly the measured
call, with no sampling blind spots.  Where that interface is missing
(non-Linux, restricted /proc) we fall back to a sampling thread, whose
resolution is good enough for the multi-hundred-MB scales the gate
asserts on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["RssMeasurement", "measure_peak_rss", "current_rss_bytes",
           "peak_rss_supported"]

_STATUS = "/proc/self/status"
_CLEAR_REFS = "/proc/self/clear_refs"
_SAMPLE_INTERVAL_S = 0.05
#: how long to wait for the sampling thread to wind down before giving
#: up and marking the measurement degraded (it is a daemon thread, so a
#: stuck /proc read can't hang the benchmark run itself)
_JOIN_TIMEOUT_S = 2.0


@dataclass(frozen=True)
class RssMeasurement:
    """Outcome of one peak-RSS measurement.

    ``bytes`` is ``None`` when no mechanism worked.  ``degraded`` marks
    a sampled measurement whose sampler did not shut down cleanly — the
    number is still a valid lower bound, but late samples from the
    runaway thread were discarded, so it is flagged in the bench record
    rather than silently reported as exact.
    """

    bytes: int | None
    degraded: bool = False


def _read_status_kib(field: str) -> int | None:
    try:
        with open(_STATUS, "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def current_rss_bytes() -> int | None:
    """Resident set size right now, or ``None`` if unreadable."""
    kib = _read_status_kib("VmRSS")
    return None if kib is None else kib * 1024


def _peak_rss_bytes() -> int | None:
    kib = _read_status_kib("VmHWM")
    return None if kib is None else kib * 1024


def _reset_peak() -> bool:
    """Reset the kernel's RSS high-water mark; True when it worked."""
    try:
        with open(_CLEAR_REFS, "w") as handle:
            handle.write("5")
        return True
    except OSError:
        return False


def peak_rss_supported() -> bool:
    """Whether any peak-RSS mechanism is available on this host."""
    return current_rss_bytes() is not None


def measure_peak_rss(fn: Callable[[], Any]) -> tuple[Any, RssMeasurement]:
    """Run ``fn()`` and return ``(result, RssMeasurement)``.

    Peak is ``None`` when no mechanism worked.  Preference order:
    kernel high-water mark (reset via ``clear_refs``, exact), then a
    50 ms sampling thread (lower bound; short spikes can slip between
    samples).  The sampling thread is joined with a bounded timeout: a
    sampler wedged on a /proc read marks the measurement ``degraded``
    instead of hanging the benchmark.
    """
    if _reset_peak() and _peak_rss_bytes() is not None:
        result = fn()
        return result, RssMeasurement(bytes=_peak_rss_bytes())

    baseline = current_rss_bytes()
    if baseline is None:
        return fn(), RssMeasurement(bytes=None)
    peak = baseline
    stop = threading.Event()

    def sample() -> None:
        nonlocal peak
        while not stop.is_set():
            now = current_rss_bytes()
            if now is not None and now > peak:
                peak = now
            time.sleep(_SAMPLE_INTERVAL_S)

    thread = threading.Thread(target=sample, daemon=True)
    thread.start()
    try:
        result = fn()
    finally:
        stop.set()
        thread.join(timeout=_JOIN_TIMEOUT_S)
    degraded = thread.is_alive()
    final = current_rss_bytes()
    if final is not None and final > peak:
        peak = final
    return result, RssMeasurement(bytes=peak, degraded=degraded)
