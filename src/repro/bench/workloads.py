"""Canonical workloads for the reproduction experiments.

The paper's evaluation runs on a 32-machine cluster, 64 partitions, and a
>100 GB MSN snapshot (29.6 B edges) plus 100 GB synthetic composites.  The
simulator's byte accounting is scale-free, so we use the paper's own
synthetic recipe (Appendix F) at a tractable size and keep the paper's
*ratios*: 2 partitions per machine, 5 % inter-community rewiring, 10 %
vertex samples for TC/TFL.

``standard_workload()`` is the shared configuration every table/figure
bench uses unless it sweeps the relevant parameter itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.spec import GIGABIT_BPS, MachineSpec
from repro.cluster.topology import Topology, t1, t2, t3
from repro.core.surfer import Surfer
from repro.graph.digraph import Graph
from repro.graph.generators import composite_social_graph

__all__ = [
    "Workload",
    "standard_graph",
    "standard_workload",
    "scaled_graph",
    "topology_suite",
    "topology_by_name",
    "make_cluster",
    "PAPER_GRAPH_BYTES",
    "HARDWARE_SCALE",
    "SCALED_LINK_BPS",
    "TOPOLOGY_NAMES",
]

# ||G|| for the Table 1 elapsed-time model: the paper's >100 GB graph.
PAPER_GRAPH_BYTES = 128 * 1024**3

# One simulated byte stands for this many real bytes: the standard graph
# (~131 k edges, ~1.5 MB of adjacency) then occupies the same fraction of
# the hardware as the paper's 29.6 B-edge, >100 GB MSN snapshot did, so
# the network/disk/CPU balance — and hence every relative result — lands
# in the paper's regime.  All rates are divided by the same factor, so no
# ratio changes.
HARDWARE_SCALE = 200_000.0

# Per-pair network goodput during many-to-many exchange.  The testbed NIC
# is 1 GbE, but shuffle-style traffic on a shared switch achieves a
# fraction of line rate (incast and contention); ~40 MB/s effective pair
# goodput is the conventional planning figure and is what makes network
# I/O the dominant cost at the paper's scale.
EFFECTIVE_PAIR_BPS = 40_000_000.0
SCALED_LINK_BPS = EFFECTIVE_PAIR_BPS / HARDWARE_SCALE

# The testbed machines carry two 1 TB SATA disks (Appendix F): aggregate
# sequential rates around 180/150 MB/s.
TESTBED_MACHINE = MachineSpec(
    memory_bytes=8 * 1024**3,
    disk_read_bps=180_000_000.0,
    disk_write_bps=150_000_000.0,
    cpu_ops_per_sec=50_000_000.0,
    nic_bps=GIGABIT_BPS,
)


def make_cluster(topology: Topology) -> Cluster:
    """A cluster with the regime-scaled machine spec."""
    return Cluster(topology,
                   machine_spec=TESTBED_MACHINE.scaled(HARDWARE_SCALE))

#: defaults: 32 communities of 512 vertices, ~100k edges
STANDARD_COMMUNITIES = 32
STANDARD_COMMUNITY_SIZE = 512
STANDARD_K = 8
STANDARD_SEED = 2010


# The recursive data bisection depends only on (graph, num_parts, seed) —
# not on the topology or placement — so experiments sweeping topologies
# reuse it.  Values pin their graph so ``id`` keys cannot be recycled.
_BISECTION_CACHE: dict = {}


def cached_bisection(graph: Graph, num_parts: int, seed: int):
    """Memoized recursive bisection of a graph (identity-keyed)."""
    from repro.partitioning.recursive import recursive_bisection
    from repro.partitioning.wgraph import WGraph

    # never routed; the cached value pins the graph so a recycled id
    # can only miss, not alias
    key = (id(graph), num_parts, seed)  # repro: ignore[DET001] -- memo key
    hit = _BISECTION_CACHE.get(key)
    if hit is None or hit[0] is not graph:
        data = recursive_bisection(
            WGraph.from_digraph(graph), num_parts, seed=seed
        )
        _BISECTION_CACHE[key] = (graph, data)
        return data
    return hit[1]


@dataclass
class Workload:
    """A graph deployed on a cluster under both layouts."""

    graph: Graph
    cluster: Cluster
    num_parts: int
    seed: int
    _surfers: dict | None = None

    def surfer(self, layout: str) -> Surfer:
        """A (cached) Surfer instance for the given layout."""
        if self._surfers is None:
            self._surfers = {}
        if layout not in self._surfers:
            self._surfers[layout] = Surfer(
                self.graph, self.cluster, num_parts=self.num_parts,
                layout=layout, seed=self.seed,
                data=cached_bisection(self.graph, self.num_parts,
                                      self.seed),
            )
        return self._surfers[layout]


_STANDARD_GRAPHS: dict[tuple[int, float], Graph] = {}


def standard_graph(seed: int = STANDARD_SEED,
                   scale: float = 1.0) -> Graph:
    """The evaluation graph: the paper's composite social recipe.

    Memoized per ``(seed, scale)`` so experiments sharing the default
    graph also share its cached bisections.
    """
    key = (seed, scale)
    if key not in _STANDARD_GRAPHS:
        communities = max(2, int(STANDARD_COMMUNITIES * scale))
        _STANDARD_GRAPHS[key] = composite_social_graph(
            num_communities=communities,
            community_size=STANDARD_COMMUNITY_SIZE,
            k=STANDARD_K,
            p_r=0.05,
            seed=seed,
        )
    return _STANDARD_GRAPHS[key]


def scaled_graph(num_machines: int, seed: int = STANDARD_SEED) -> Graph:
    """Graph scaled proportionally to the machine count (Figure 11)."""
    return standard_graph(seed=seed, scale=num_machines / 32.0)


def standard_workload(
    topology: Topology | None = None,
    num_machines: int = 32,
    num_parts: int = 64,
    seed: int = STANDARD_SEED,
    graph: Graph | None = None,
) -> Workload:
    """The default experiment setup: 32 machines, 64 partitions."""
    if topology is None:
        topology = t1(num_machines, link_bps=SCALED_LINK_BPS)
    if graph is None:
        graph = standard_graph(seed=seed)
    return Workload(
        graph=graph,
        cluster=make_cluster(topology),
        num_parts=num_parts,
        seed=seed,
    )


def topology_suite(num_machines: int = 32,
                   link_bps: float = SCALED_LINK_BPS) -> dict[str, Topology]:
    """The five topologies of Table 1 / Figure 6 (regime-scaled links)."""
    return {
        "T1": t1(num_machines, link_bps),
        "T2(2,1)": t2(2, 1, num_machines, link_bps),
        "T2(4,1)": t2(4, 1, num_machines, link_bps),
        "T2(4,2)": t2(4, 2, num_machines, link_bps),
        "T3": t3(num_machines, link_bps),
    }


#: paper topology names accepted by :func:`topology_by_name` (and the
#: CLI / bench-config surfaces built on it)
TOPOLOGY_NAMES = ("T1", "T2(2,1)", "T2(4,1)", "T2(4,2)", "T3")


def topology_by_name(name: str, num_machines: int,
                     link_bps: float = SCALED_LINK_BPS) -> Topology:
    """One paper topology by name (``T1``/``T2(p,l)``/``T3``)."""
    if name == "T1":
        return t1(num_machines, link_bps)
    if name == "T3":
        return t3(num_machines, link_bps)
    try:
        pods, levels = {
            "T2(2,1)": (2, 1), "T2(4,1)": (4, 1), "T2(4,2)": (4, 2),
        }[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; expected one of {TOPOLOGY_NAMES}"
        ) from None
    return t2(pods, levels, num_machines, link_bps)
