"""Cross-PR performance trajectory: join + render ``BENCH_PR*.json``.

Each PR commits one ``BENCH_<PR>.json`` at the repo root.  Individually
they are snapshots; joined per workload they are the repo's performance
history — this module loads that history, appends the current run, and
renders it as a markdown (or self-contained HTML) report with per-PR
deltas, so "PR 4 made NR 4.4x faster" stays a number anyone can re-read
instead of folklore in a commit message.
"""

from __future__ import annotations

import html as _html
import pathlib
import re

from repro.bench.benchjson import (
    RECORD_FIELDS,
    load_bench_json,
    validate_bench_json,
)
from repro.errors import BenchRunError

__all__ = [
    "load_history",
    "workload_series",
    "render_markdown",
    "render_html",
]

_BENCH_RE = re.compile(r"^BENCH_PR(\d+)\.json$")

#: short column headers for the report tables, in RECORD_FIELDS order
_HEADERS = {
    "makespan_s": "makespan (s)",
    "machine_time_s": "machine time (s)",
    "network_bytes": "net (B)",
    "disk_bytes": "disk (B)",
    "messages_shipped": "messages",
    "tasks": "tasks",
    "wall_clock_s": "wall (s)",
}


def load_history(root: str | pathlib.Path = ".") -> list[dict]:
    """All ``BENCH_PR<n>.json`` docs under ``root``, oldest first.

    Every document must be schema-valid; a malformed baseline would
    silently corrupt the gate, so it is an error, not a skip.
    """
    root = pathlib.Path(root)
    docs: list[tuple[int, dict]] = []
    for path in root.glob("BENCH_PR*.json"):
        match = _BENCH_RE.match(path.name)
        if match is None:
            continue
        doc = load_bench_json(path)
        errors = validate_bench_json(doc)
        if errors:
            raise BenchRunError(
                f"committed baseline {path} is invalid: "
                + "; ".join(errors)
            )
        docs.append((int(match.group(1)), doc))
    return [doc for _, doc in sorted(docs, key=lambda item: item[0])]


def workload_series(
    history: list[dict],
    current: dict[str, dict] | None = None,
    current_label: str = "current",
) -> dict[str, list[tuple[str, dict]]]:
    """``{workload: [(pr_label, record), ...]}`` oldest → newest."""
    series: dict[str, list[tuple[str, dict]]] = {}
    for doc in history:
        pr = str(doc.get("pr", "?"))
        for name, record in doc.get("workloads", {}).items():
            series.setdefault(name, []).append((pr, record))
    if current:
        for name, record in current.items():
            series.setdefault(name, []).append((current_label, record))
    return dict(sorted(series.items()))


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value):,d}"
    return f"{value:,.3f}"


def _cell(value: float, prev: float | None) -> str:
    """A value plus its delta vs. the previous row's value."""
    text = _fmt(value)
    if prev is None:
        return text
    if prev == 0:
        return text if value == 0 else f"{text} (new)"
    delta = 100.0 * (value / prev - 1.0)
    if abs(delta) < 0.05:
        return f"{text} (=)"
    return f"{text} ({delta:+.1f}%)"


def _workload_rows(
    entries: list[tuple[str, dict]],
) -> list[list[str]]:
    rows = []
    prev: dict | None = None
    for pr, record in entries:
        cells = [pr]
        for metric in RECORD_FIELDS:
            value = float(record.get(metric, 0.0))
            prev_v = float(prev.get(metric, 0.0)) if prev else None
            cells.append(_cell(value, prev_v))
        rows.append(cells)
        prev = record
    return rows


def render_markdown(
    history: list[dict],
    current: dict[str, dict] | None = None,
    current_label: str = "current",
    gate_result=None,
    title: str = "repro bench — performance trajectory",
) -> str:
    """The full trajectory as GitHub-flavoured markdown."""
    series = workload_series(history, current, current_label)
    lines = [f"# {title}", ""]
    prs = [str(d.get("pr", "?")) for d in history]
    lines.append(
        f"History: {', '.join(prs) if prs else '(no committed baselines)'}"
        + (f" + {current_label} run" if current else "")
    )
    lines.append("")
    if gate_result is not None:
        lines.append("```")
        lines.append(gate_result.render())
        lines.append("```")
        lines.append("")
    header = ["PR"] + [_HEADERS[m] for m in RECORD_FIELDS]
    for name, entries in series.items():
        lines.append(f"## {name}")
        lines.append("")
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for row in _workload_rows(entries):
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    lines.append(
        "Deltas are relative to the previous row (the last PR that "
        "measured the workload); `(=)` means within 0.05%. "
        "`wall_clock_s` is real Python time (min-of-N sampled) — "
        "compare it across PRs measured on the same machine only."
    )
    return "\n".join(lines) + "\n"


def render_html(
    history: list[dict],
    current: dict[str, dict] | None = None,
    current_label: str = "current",
    gate_result=None,
    title: str = "repro bench — performance trajectory",
) -> str:
    """The same report as one self-contained HTML page."""
    series = workload_series(history, current, current_label)
    esc = _html.escape
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{esc(title)}</title>",
        "<style>",
        "body{font-family:system-ui,sans-serif;margin:2rem;"
        "max-width:72rem}",
        "table{border-collapse:collapse;margin:0.5rem 0 1.5rem}",
        "th,td{border:1px solid #ccc;padding:0.25rem 0.6rem;"
        "text-align:right;font-variant-numeric:tabular-nums}",
        "th:first-child,td:first-child{text-align:left}",
        "tr:last-child td{font-weight:600}",
        "pre{background:#f6f6f6;padding:0.75rem;border-radius:4px}",
        ".fail{color:#b00020}.pass{color:#0a7d33}",
        "</style></head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    prs = [str(d.get("pr", "?")) for d in history]
    parts.append(
        "<p>History: " + esc(", ".join(prs) or "(none)")
        + (f" + {esc(current_label)} run" if current else "") + "</p>"
    )
    if gate_result is not None:
        css = "pass" if gate_result.ok else "fail"
        parts.append(f"<pre class=\"{css}\">"
                     f"{esc(gate_result.render())}</pre>")
    header = ["PR"] + [_HEADERS[m] for m in RECORD_FIELDS]
    for name, entries in series.items():
        parts.append(f"<h2>{esc(name)}</h2>")
        parts.append("<table><thead><tr>"
                     + "".join(f"<th>{esc(h)}</th>" for h in header)
                     + "</tr></thead><tbody>")
        for row in _workload_rows(entries):
            parts.append("<tr>" + "".join(
                f"<td>{esc(cell)}</td>" for cell in row) + "</tr>")
        parts.append("</tbody></table>")
    parts.append(
        "<p>Deltas are relative to the previous row; (=) means within "
        "0.05%. wall_clock_s is real Python time — cross-machine "
        "comparisons are indicative only.</p>"
    )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
