"""Config-driven experiment orchestration: the ``repro bench`` engine.

Every experiment the repo benches is described by one TOML file under
``src/repro/bench/configs/`` — workload, graph-generator parameters,
cluster shape, engine flags, repetitions and gate tolerances — instead
of an ad-hoc script.  The runner loads those configs, selects a *suite*
(``smoke`` / ``paper`` / ``full``), executes each workload with
noise-aware min-of-N wall-clock sampling, verifies the event stream
reconciles with the cluster cost counters, and returns ``repro-bench/v1``
records that :mod:`repro.bench.regress` gates against the committed
``BENCH_PR*.json`` history and :mod:`repro.bench.trajectory` renders as
the cross-PR report.

Config schema (see ``docs/BENCHMARKS.md`` for the full reference):

.. code-block:: toml

    [experiment]
    name = "fig7_nr"
    description = "NR: propagation vs MapReduce (Figure 7)"
    suites = ["smoke", "paper", "full"]

    [graph]                     # composite_social_graph parameters
    communities = 32
    community_size = 512
    k = 8
    p_r = 0.05
    seed = 2010

    [cluster]
    topology = "T1"
    machines = 32
    parts = 64
    layout = "bandwidth-aware"
    seed = 2010

    [sampling]
    repetitions = 3             # wall_clock_s = min over N runs

    [tolerances]                # per-metric gate overrides (optional)
    wall_clock_s = 4.0

    [[workload]]
    name = "fig7_nr_propagation"
    app = "NR"
    engine = "propagation"
    iterations = 2
    vectorized = true

Chaos experiments (``kind = "chaos"``) run a seeded
:func:`~repro.runtime.chaos.run_chaos_sweep` instead of plain jobs and
record the fault-free baseline next to the most-restarted schedule,
each with its *own* wall clock.
"""

from __future__ import annotations

import contextlib
import pathlib
import tempfile
import tomllib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import BenchConfigError, BenchRunError
from repro.bench.benchjson import (
    OPTIONAL_RECORD_FIELDS,
    RECORD_FIELDS,
    job_record,
)
from repro.bench.memory import measure_peak_rss
from repro.bench.workloads import (
    STANDARD_COMMUNITIES,
    STANDARD_COMMUNITY_SIZE,
    STANDARD_K,
    TOPOLOGY_NAMES,
    Workload,
    make_cluster,
    standard_graph,
    topology_by_name,
)
from repro.runtime.events import reconcile, wall_timer

__all__ = [
    "SUITES",
    "DEFAULT_CONFIG_DIR",
    "GraphSpec",
    "ClusterSpec",
    "WorkloadSpec",
    "ChaosSpec",
    "ExperimentConfig",
    "SuiteResult",
    "load_config",
    "discover_configs",
    "select_suite",
    "run_experiment",
    "run_suite",
    "timed_job",
    "timed_min_of_n",
]

#: the three execution tiers, cheapest first
SUITES = ("smoke", "paper", "full")

#: the committed experiment configs shipped with the package
DEFAULT_CONFIG_DIR = pathlib.Path(__file__).resolve().parent / "configs"

#: the standard composite-social recipe (p_r matches standard_graph)
_STANDARD_RECIPE = (STANDARD_COMMUNITIES, STANDARD_COMMUNITY_SIZE,
                    STANDARD_K, 0.05)

ENGINES = ("propagation", "mapreduce")


# ----------------------------------------------------------------------
# Shared timing plumbing (also used by benchmarks/bench_*.py scripts)
# ----------------------------------------------------------------------
def timed_job(run: Callable[[], Any]) -> tuple[Any, float]:
    """Run one job closure; returns ``(job, wall_seconds)``.

    Build the Surfer *outside* the closure: deployment setup
    (partitioning above all) must never land in the timed region.
    """
    timer = wall_timer()
    job = run()
    return job, timer.elapsed()


def _simulated_signature(job: Any) -> tuple:
    m = job.metrics
    return (m.response_time, m.total_machine_time,
            int(m.network_bytes), int(m.disk_bytes))


def timed_min_of_n(run: Callable[[], Any], n: int = 1) -> tuple[Any, float]:
    """Noise-aware sampling: run ``n`` times, keep the min wall clock.

    Simulated metrics are deterministic, so repetitions only de-noise
    the *real* wall clock; the sampler asserts that determinism and
    raises :class:`BenchRunError` if two repetitions disagree on the
    simulated numbers (that is a correctness bug, not noise).
    """
    if n < 1:
        raise BenchRunError(f"repetitions must be >= 1, got {n}")
    best_job: Any = None
    best_wall = float("inf")
    signature: tuple | None = None
    for _ in range(n):
        job, wall = timed_job(run)
        sig = _simulated_signature(job)
        if signature is None:
            signature = sig
        elif sig != signature:
            raise BenchRunError(
                "nondeterministic simulated metrics across repetitions: "
                f"{signature} vs {sig}"
            )
        if wall < best_wall:
            best_job, best_wall = job, wall
    return best_job, best_wall


# ----------------------------------------------------------------------
# Config model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphSpec:
    """``[graph]``: graph generator parameters.

    ``kind = "social"`` (default) is the paper's composite social graph
    (``communities``/``community_size``/``k``/``p_r``); ``kind = "web"``
    is :func:`~repro.graph.generators.web_feeder_graph` (``core``/
    ``feeders``), the no-inlink-feeder shape the sparse-frontier
    benchmarks use; ``kind = "rmat_shard"`` streams an R-MAT graph
    (``rmat_scale``/``edge_factor``) into an on-disk shard store and
    runs the workloads out-of-core through
    :class:`~repro.graph.store.ShardBackedGraph` with a
    contiguous-range plan whose partitions alias the shards.
    """

    communities: int = STANDARD_COMMUNITIES
    community_size: int = STANDARD_COMMUNITY_SIZE
    k: int = STANDARD_K
    p_r: float = 0.05
    seed: int = 2010
    kind: str = "social"
    core: int = 32
    feeders: int = 480
    rmat_scale: int = 16
    edge_factor: int = 8


@dataclass(frozen=True)
class ClusterSpec:
    """``[cluster]``: simulated cluster shape and deployment knobs."""

    topology: str = "T1"
    machines: int = 32
    parts: int = 64
    layout: str = "bandwidth-aware"
    replication: int = 3
    seed: int = 2010


@dataclass(frozen=True)
class WorkloadSpec:
    """One ``[[workload]]``: a named job on the experiment's deployment."""

    name: str
    app: str
    engine: str
    iterations: int | None = None
    vectorized: bool | None = None
    local_opts: bool = True
    combiner: bool = False
    #: sparse active-set Transfer (propagation engine, frontier apps)
    frontier: bool = False
    #: stop at the app's convergence test instead of the full budget
    until_convergence: bool = False
    app_args: dict[str, Any] = field(default_factory=dict)
    #: per-workload cluster-size override (fig11-style sweeps)
    machines: int | None = None
    #: per-workload partition override; ``"auto"`` = the paper's
    #: memory/machine rule (experiments.parts_for)
    parts: int | str | None = None
    #: scale the graph with the machine count (weak scaling)
    scale_graph_by_machines: bool = False
    #: suite override; defaults to the experiment's suites
    suites: tuple[str, ...] | None = None
    #: record real peak RSS around the run (optional bench metric)
    measure_rss: bool = False
    #: hard ceiling on the measured peak (bytes); breach = BenchRunError
    max_peak_rss_bytes: float | None = None


@dataclass(frozen=True)
class ChaosSpec:
    """``[chaos]``: a seeded fault-schedule sweep (kind = "chaos")."""

    app: str
    engine: str = "propagation"
    iterations: int = 4
    schedules: int = 12
    seed: int = 2010
    checkpoint_interval: int = 1
    max_restarts: int = 3
    prefix: str = "chaos"


@dataclass(frozen=True)
class ExperimentConfig:
    """One parsed + validated experiment TOML."""

    name: str
    description: str
    suites: tuple[str, ...]
    kind: str  # "jobs" | "chaos"
    graph: GraphSpec
    cluster: ClusterSpec
    repetitions: int
    tolerances: dict[str, float]
    workloads: tuple[WorkloadSpec, ...] = ()
    chaos: ChaosSpec | None = None
    source: str = "<memory>"

    def workloads_for(self, suite: str) -> tuple[WorkloadSpec, ...]:
        """The workloads this suite selects (chaos: all-or-nothing)."""
        if suite not in self.suites and not any(
            suite in (w.suites or ()) for w in self.workloads
        ):
            return ()
        if self.kind == "chaos":
            return ()
        return tuple(w for w in self.workloads
                     if suite in (w.suites or self.suites))


# ----------------------------------------------------------------------
# Parsing + validation
# ----------------------------------------------------------------------
_EXPERIMENT_KEYS = {"name", "description", "suites", "kind"}
_GRAPH_KEYS = {"communities", "community_size", "k", "p_r", "seed",
               "kind", "core", "feeders", "rmat_scale", "edge_factor"}
_CLUSTER_KEYS = {"topology", "machines", "parts", "layout",
                 "replication", "seed"}
_SAMPLING_KEYS = {"repetitions"}
_WORKLOAD_KEYS = {"name", "app", "engine", "iterations", "vectorized",
                  "local_opts", "combiner", "app_args", "machines",
                  "parts", "scale_graph_by_machines", "suites",
                  "frontier", "until_convergence", "measure_rss",
                  "max_peak_rss_bytes"}
_CHAOS_KEYS = {"app", "engine", "iterations", "schedules", "seed",
               "checkpoint_interval", "max_restarts", "prefix"}
_TOP_KEYS = {"experiment", "graph", "cluster", "sampling", "tolerances",
             "workload", "chaos"}


def _is_int(v: Any) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _known_apps() -> set[str]:
    from repro.apps import APP_REGISTRY, EXTENSION_APPS

    return set(APP_REGISTRY) | set(EXTENSION_APPS)


def _check_keys(table: dict, allowed: set[str], where: str,
                errors: list[str]) -> None:
    for key in table:
        if key not in allowed:
            errors.append(f"{where}: unknown key {key!r} "
                          f"(allowed: {sorted(allowed)})")


def _suites_field(value: Any, where: str,
                  errors: list[str]) -> tuple[str, ...]:
    if (not isinstance(value, list) or not value
            or not all(isinstance(s, str) for s in value)):
        errors.append(f"{where}: suites must be a non-empty string list")
        return ()
    bad = [s for s in value if s not in SUITES]
    if bad:
        errors.append(f"{where}: unknown suites {bad} "
                      f"(known: {list(SUITES)})")
    return tuple(value)


def _pos_int(table: dict, key: str, default: int, where: str,
             errors: list[str]) -> int:
    value = table.get(key, default)
    if not _is_int(value) or value < 1:
        errors.append(f"{where}: {key} must be a positive integer, "
                      f"got {value!r}")
        return default
    return value


def _parse_workload(table: Any, index: int, suites: tuple[str, ...],
                    errors: list[str]) -> WorkloadSpec | None:
    where = f"[[workload]] #{index + 1}"
    if not isinstance(table, dict):
        errors.append(f"{where}: not a table")
        return None
    _check_keys(table, _WORKLOAD_KEYS, where, errors)
    name = table.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: name must be a non-empty string")
        name = f"<workload-{index}>"
    app = table.get("app")
    if not isinstance(app, str) or app not in _known_apps():
        errors.append(f"{where} ({name}): unknown app {app!r} "
                      f"(known: {sorted(_known_apps())})")
        app = "NR"
    engine = table.get("engine")
    if engine not in ENGINES:
        errors.append(f"{where} ({name}): engine must be one of "
                      f"{ENGINES}, got {engine!r}")
        engine = "propagation"
    iterations = table.get("iterations")
    if iterations is not None and (not _is_int(iterations)
                                   or iterations < 1):
        errors.append(f"{where} ({name}): iterations must be a positive "
                      f"integer, got {iterations!r}")
        iterations = None
    vectorized = table.get("vectorized")
    if vectorized is not None and not isinstance(vectorized, bool):
        errors.append(f"{where} ({name}): vectorized must be a bool")
        vectorized = None
    for flag in ("local_opts", "combiner", "scale_graph_by_machines",
                 "frontier", "until_convergence", "measure_rss"):
        if flag in table and not isinstance(table[flag], bool):
            errors.append(f"{where} ({name}): {flag} must be a bool")
    max_rss = table.get("max_peak_rss_bytes")
    if max_rss is not None and (not _is_num(max_rss) or max_rss <= 0):
        errors.append(f"{where} ({name}): max_peak_rss_bytes must be a "
                      f"positive number, got {max_rss!r}")
        max_rss = None
    if table.get("frontier") is True and engine != "propagation":
        errors.append(f"{where} ({name}): frontier = true requires "
                      f"the propagation engine")
    app_args = table.get("app_args", {})
    if not isinstance(app_args, dict):
        errors.append(f"{where} ({name}): app_args must be a table")
        app_args = {}
    machines = table.get("machines")
    if machines is not None and (not _is_int(machines) or machines < 1):
        errors.append(f"{where} ({name}): machines must be a positive "
                      f"integer, got {machines!r}")
        machines = None
    parts = table.get("parts")
    if parts is not None and parts != "auto" and (
            not _is_int(parts) or parts < 1):
        errors.append(f"{where} ({name}): parts must be a positive "
                      f"integer or \"auto\", got {parts!r}")
        parts = None
    wl_suites: tuple[str, ...] | None = None
    if "suites" in table:
        wl_suites = _suites_field(table["suites"], f"{where} ({name})",
                                  errors) or None
    return WorkloadSpec(
        name=name,
        app=app,
        engine=str(engine),
        iterations=iterations,
        vectorized=vectorized,
        local_opts=bool(table.get("local_opts", True)),
        combiner=bool(table.get("combiner", False)),
        frontier=bool(table.get("frontier", False)),
        until_convergence=bool(table.get("until_convergence", False)),
        app_args=dict(app_args),
        machines=machines,
        parts=parts,
        scale_graph_by_machines=bool(
            table.get("scale_graph_by_machines", False)),
        suites=wl_suites,
        measure_rss=bool(table.get("measure_rss", False)),
        max_peak_rss_bytes=(float(max_rss) if max_rss is not None
                            else None),
    )


def _parse_tolerances(table: Any, errors: list[str]) -> dict[str, float]:
    if table is None:
        return {}
    if not isinstance(table, dict):
        errors.append("[tolerances]: not a table")
        return {}
    out: dict[str, float] = {}
    known = RECORD_FIELDS + OPTIONAL_RECORD_FIELDS
    for key, value in table.items():
        if key not in known:
            errors.append(f"[tolerances]: unknown metric {key!r} "
                          f"(known: {list(known)})")
            continue
        if not _is_num(value) or value < 0:
            errors.append(f"[tolerances]: {key} must be a non-negative "
                          f"number, got {value!r}")
            continue
        out[key] = float(value)
    return out


def parse_config(doc: dict, source: str = "<memory>") -> ExperimentConfig:
    """Validate a decoded TOML document into an :class:`ExperimentConfig`.

    Collects *every* violation and raises one :class:`BenchConfigError`
    naming them all.
    """
    errors: list[str] = []
    _check_keys(doc, _TOP_KEYS, "top level", errors)

    exp = doc.get("experiment")
    if not isinstance(exp, dict):
        raise BenchConfigError(source, ["missing [experiment] table"])
    _check_keys(exp, _EXPERIMENT_KEYS, "[experiment]", errors)
    name = exp.get("name")
    if not isinstance(name, str) or not name:
        errors.append("[experiment]: name must be a non-empty string")
        name = "<unnamed>"
    suites = _suites_field(exp.get("suites"), "[experiment]", errors)
    kind = exp.get("kind", "jobs")
    if kind not in ("jobs", "chaos"):
        errors.append(f"[experiment]: kind must be \"jobs\" or "
                      f"\"chaos\", got {kind!r}")
        kind = "jobs"

    graph_tbl = doc.get("graph", {})
    if not isinstance(graph_tbl, dict):
        errors.append("[graph]: not a table")
        graph_tbl = {}
    _check_keys(graph_tbl, _GRAPH_KEYS, "[graph]", errors)
    p_r = graph_tbl.get("p_r", 0.05)
    if not _is_num(p_r) or not 0 <= p_r <= 1:
        errors.append(f"[graph]: p_r must be a number in [0, 1], "
                      f"got {p_r!r}")
        p_r = 0.05
    graph_kind = graph_tbl.get("kind", "social")
    if graph_kind not in ("social", "web", "rmat_shard"):
        errors.append(f"[graph]: kind must be \"social\", \"web\" or "
                      f"\"rmat_shard\", got {graph_kind!r}")
        graph_kind = "social"
    graph = GraphSpec(
        kind=str(graph_kind),
        core=_pos_int(graph_tbl, "core", 32, "[graph]", errors),
        feeders=_pos_int(graph_tbl, "feeders", 480, "[graph]", errors),
        rmat_scale=_pos_int(graph_tbl, "rmat_scale", 16, "[graph]",
                            errors),
        edge_factor=_pos_int(graph_tbl, "edge_factor", 8, "[graph]",
                             errors),
        communities=_pos_int(graph_tbl, "communities",
                             STANDARD_COMMUNITIES, "[graph]", errors),
        community_size=_pos_int(graph_tbl, "community_size",
                                STANDARD_COMMUNITY_SIZE, "[graph]",
                                errors),
        k=_pos_int(graph_tbl, "k", STANDARD_K, "[graph]", errors),
        p_r=float(p_r),
        seed=graph_tbl.get("seed", 2010)
        if _is_int(graph_tbl.get("seed", 2010))
        else _append_and_default(errors, "[graph]: seed must be an "
                                 "integer", 2010),
    )

    cluster_tbl = doc.get("cluster", {})
    if not isinstance(cluster_tbl, dict):
        errors.append("[cluster]: not a table")
        cluster_tbl = {}
    _check_keys(cluster_tbl, _CLUSTER_KEYS, "[cluster]", errors)
    topology = cluster_tbl.get("topology", "T1")
    if topology not in TOPOLOGY_NAMES:
        errors.append(f"[cluster]: unknown topology {topology!r} "
                      f"(known: {list(TOPOLOGY_NAMES)})")
        topology = "T1"
    layout = cluster_tbl.get("layout", "bandwidth-aware")
    if layout not in ("bandwidth-aware", "oblivious"):
        errors.append(f"[cluster]: layout must be \"bandwidth-aware\" "
                      f"or \"oblivious\", got {layout!r}")
        layout = "bandwidth-aware"
    cluster = ClusterSpec(
        topology=str(topology),
        machines=_pos_int(cluster_tbl, "machines", 32, "[cluster]",
                          errors),
        parts=_pos_int(cluster_tbl, "parts", 64, "[cluster]", errors),
        layout=str(layout),
        replication=_pos_int(cluster_tbl, "replication", 3, "[cluster]",
                             errors),
        seed=cluster_tbl.get("seed", 2010)
        if _is_int(cluster_tbl.get("seed", 2010))
        else _append_and_default(errors, "[cluster]: seed must be an "
                                 "integer", 2010),
    )

    sampling = doc.get("sampling", {})
    if not isinstance(sampling, dict):
        errors.append("[sampling]: not a table")
        sampling = {}
    _check_keys(sampling, _SAMPLING_KEYS, "[sampling]", errors)
    repetitions = _pos_int(sampling, "repetitions", 1, "[sampling]",
                           errors)

    tolerances = _parse_tolerances(doc.get("tolerances"), errors)

    workloads: list[WorkloadSpec] = []
    chaos: ChaosSpec | None = None
    if kind == "chaos":
        if "workload" in doc:
            errors.append("chaos experiments take a [chaos] table, "
                          "not [[workload]] entries")
        chaos_tbl = doc.get("chaos")
        if not isinstance(chaos_tbl, dict):
            errors.append("kind = \"chaos\" requires a [chaos] table")
        else:
            _check_keys(chaos_tbl, _CHAOS_KEYS, "[chaos]", errors)
            app = chaos_tbl.get("app")
            if not isinstance(app, str) or app not in _known_apps():
                errors.append(f"[chaos]: unknown app {app!r}")
                app = "NR"
            engine = chaos_tbl.get("engine", "propagation")
            if engine not in ENGINES:
                errors.append(f"[chaos]: engine must be one of "
                              f"{ENGINES}, got {engine!r}")
                engine = "propagation"
            prefix = chaos_tbl.get("prefix", name)
            if not isinstance(prefix, str) or not prefix:
                errors.append("[chaos]: prefix must be a non-empty "
                              "string")
                prefix = name
            chaos = ChaosSpec(
                app=str(app),
                engine=str(engine),
                iterations=_pos_int(chaos_tbl, "iterations", 4,
                                    "[chaos]", errors),
                schedules=_pos_int(chaos_tbl, "schedules", 12,
                                   "[chaos]", errors),
                seed=chaos_tbl.get("seed", 2010)
                if _is_int(chaos_tbl.get("seed", 2010))
                else _append_and_default(errors, "[chaos]: seed must "
                                         "be an integer", 2010),
                checkpoint_interval=_pos_int(chaos_tbl,
                                             "checkpoint_interval", 1,
                                             "[chaos]", errors),
                max_restarts=_pos_int(chaos_tbl, "max_restarts", 3,
                                      "[chaos]", errors),
                prefix=str(prefix),
            )
    else:
        raw = doc.get("workload", [])
        if not isinstance(raw, list) or not raw:
            errors.append("jobs experiments need at least one "
                          "[[workload]] entry")
            raw = []
        for i, tbl in enumerate(raw):
            spec = _parse_workload(tbl, i, suites, errors)
            if spec is not None:
                workloads.append(spec)
        names = [w.name for w in workloads]
        for dup in sorted({n for n in names if names.count(n) > 1}):
            errors.append(f"duplicate workload name {dup!r}")
        if graph.kind == "rmat_shard":
            # the shard count must equal the explicit partition count
            # before the graph exists, so the auto rule and weak
            # scaling have nothing to size against
            for w in workloads:
                if w.parts == "auto":
                    errors.append(f"workload {w.name!r}: parts = "
                                  f"\"auto\" is not supported with "
                                  f"kind = \"rmat_shard\"")
                if w.scale_graph_by_machines:
                    errors.append(f"workload {w.name!r}: "
                                  f"scale_graph_by_machines is not "
                                  f"supported with kind = "
                                  f"\"rmat_shard\"")

    if errors:
        raise BenchConfigError(source, errors)
    return ExperimentConfig(
        name=name,
        description=str(exp.get("description", "")),
        suites=suites,
        kind=kind,
        graph=graph,
        cluster=cluster,
        repetitions=repetitions,
        tolerances=tolerances,
        workloads=tuple(workloads),
        chaos=chaos,
        source=source,
    )


def _append_and_default(errors: list[str], message: str, default: int) -> int:
    errors.append(message)
    return default


def load_config(path: str | pathlib.Path) -> ExperimentConfig:
    """Parse one TOML config file (raises :class:`BenchConfigError`)."""
    path = pathlib.Path(path)
    try:
        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
    except tomllib.TOMLDecodeError as exc:
        raise BenchConfigError(str(path), [f"TOML parse error: {exc}"])
    return parse_config(doc, source=str(path))


def discover_configs(
    config_dir: str | pathlib.Path | None = None,
) -> list[ExperimentConfig]:
    """All ``*.toml`` configs in a directory, sorted by experiment name."""
    directory = pathlib.Path(config_dir) if config_dir else DEFAULT_CONFIG_DIR
    if not directory.is_dir():
        raise BenchConfigError(str(directory), ["not a directory"])
    configs = [load_config(p) for p in sorted(directory.glob("*.toml"))]
    names = [c.name for c in configs]
    for dup in sorted({n for n in names if names.count(n) > 1}):
        raise BenchConfigError(
            str(directory), [f"duplicate experiment name {dup!r}"]
        )
    return sorted(configs, key=lambda c: c.name)


def select_suite(
    configs: list[ExperimentConfig], suite: str,
) -> list[ExperimentConfig]:
    """The configs a suite runs (chaos: experiment-level membership)."""
    if suite not in SUITES:
        raise BenchConfigError(
            "<suite>", [f"unknown suite {suite!r} (known: {list(SUITES)})"]
        )
    selected = []
    for cfg in configs:
        if cfg.kind == "chaos":
            if suite in cfg.suites:
                selected.append(cfg)
        elif cfg.workloads_for(suite):
            selected.append(cfg)
    return selected


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _build_graph(spec: GraphSpec, scale: float = 1.0):
    """The experiment graph; the standard recipe goes through the
    memoized :func:`standard_graph` so bisection caches are shared."""
    from repro.graph.generators import (
        composite_social_graph,
        web_feeder_graph,
    )

    if spec.kind == "web":
        return web_feeder_graph(
            core=spec.core,
            feeders=max(0, int(spec.feeders * scale)),
            seed=spec.seed,
        )
    recipe = (spec.communities, spec.community_size, spec.k, spec.p_r)
    if recipe == _STANDARD_RECIPE:
        return standard_graph(seed=spec.seed, scale=scale)
    return composite_social_graph(
        num_communities=max(2, int(spec.communities * scale)),
        community_size=spec.community_size,
        k=spec.k,
        p_r=spec.p_r,
        seed=spec.seed,
    )


def _shard_surfer(cfg: ExperimentConfig, machines: int, parts: int,
                  store_root: pathlib.Path):
    """An out-of-core Surfer: streamed R-MAT -> shard store -> range plan.

    The store is built (or reused) under ``store_root`` with one shard
    per partition, so the contiguous-range plan's partitions alias the
    shards and every partition load is a zero-copy memmap view.  All of
    this is deployment setup and stays outside the timed region.
    """
    from repro.core.range_plan import contiguous_range_plan
    from repro.core.surfer import Surfer
    from repro.graph.store import build_shard_store, open_shard_graph
    from repro.graph.stream import stream_rmat

    spec = cfg.graph
    path = store_root / (f"rmat{spec.rmat_scale}x{spec.edge_factor}"
                         f"_seed{spec.seed}_p{parts}")
    if not path.exists():
        build_shard_store(
            stream_rmat(spec.rmat_scale, edge_factor=spec.edge_factor,
                        seed=spec.seed),
            path,
            num_shards=parts,
        )
    graph = open_shard_graph(path)
    cluster = make_cluster(topology_by_name(cfg.cluster.topology,
                                            machines))
    plan = contiguous_range_plan(
        graph, cluster.topology, parts, seed=cfg.cluster.seed,
        offsets=graph.store.vertex_starts,
    )
    return Surfer(graph, cluster, seed=cfg.cluster.seed,
                  replication=cfg.cluster.replication, plan=plan)


def _make_app(name: str, engine: str, app_args: dict[str, Any]):
    from repro.apps import APP_REGISTRY, EXTENSION_APPS
    from repro.bench.experiments import make_app

    if not app_args:
        if name in APP_REGISTRY:
            return make_app(name, engine)
        prop_cls, mr_cls = EXTENSION_APPS[name]
        cls = prop_cls if engine == "propagation" else mr_cls
        if cls is None:
            raise BenchRunError(f"{name} has no {engine} implementation")
        return cls()
    if name in APP_REGISTRY:
        prop_cls, mr_cls, _ = APP_REGISTRY[name]
    else:
        prop_cls, mr_cls = EXTENSION_APPS[name]
    cls = prop_cls if engine == "propagation" else mr_cls
    if cls is None:
        raise BenchRunError(f"{name} has no {engine} implementation")
    return cls(**app_args)


def _default_iterations(app: str) -> int:
    from repro.apps import APP_REGISTRY

    if app in APP_REGISTRY:
        return APP_REGISTRY[app][2]
    return 50  # extension apps run until convergence


def _run_jobs_experiment(
    cfg: ExperimentConfig,
    workloads: tuple[WorkloadSpec, ...],
    repetitions: int,
    progress: Callable[[str], None] | None,
) -> dict[str, dict]:
    from repro.bench.experiments import parts_for

    records: dict[str, dict] = {}
    surfers: dict[tuple, Any] = {}
    with contextlib.ExitStack() as stack:
        store_root: pathlib.Path | None = None
        for wl in workloads:
            machines = wl.machines or cfg.cluster.machines
            if cfg.graph.kind == "rmat_shard":
                parts = int(wl.parts) if wl.parts is not None \
                    else cfg.cluster.parts
                key = (machines, parts, 1.0)
                if key not in surfers:
                    if store_root is None:
                        store_root = pathlib.Path(stack.enter_context(
                            tempfile.TemporaryDirectory(
                                prefix="repro-shard-bench-")))
                    surfers[key] = _shard_surfer(cfg, machines, parts,
                                                 store_root)
            else:
                scale = (machines / float(cfg.cluster.machines)
                         if wl.scale_graph_by_machines else 1.0)
                graph = _build_graph(cfg.graph, scale)
                if wl.parts == "auto":
                    parts = parts_for(graph, machines)
                else:
                    parts = int(wl.parts) if wl.parts is not None \
                        else cfg.cluster.parts
                key = (machines, parts, scale)
                if key not in surfers:
                    workload = Workload(
                        graph=graph,
                        cluster=make_cluster(
                            topology_by_name(cfg.cluster.topology,
                                             machines)),
                        num_parts=parts,
                        seed=cfg.cluster.seed,
                    )
                    surfers[key] = workload.surfer(cfg.cluster.layout)
            surfer = surfers[key]
            iterations = wl.iterations or _default_iterations(wl.app)

            def run(wl: WorkloadSpec = wl, surfer: Any = surfer,
                    iterations: int = iterations) -> Any:
                app = _make_app(wl.app, wl.engine, wl.app_args)
                if wl.engine == "mapreduce":
                    return surfer.run_mapreduce(
                        app, rounds=iterations, vectorized=wl.vectorized,
                        combiner=wl.combiner,
                        until_convergence=wl.until_convergence,
                    )
                return surfer.run_propagation(
                    app, iterations=iterations, local_opts=wl.local_opts,
                    vectorized=wl.vectorized, frontier=wl.frontier,
                    until_convergence=wl.until_convergence,
                )

            peak: int | None = None
            rss_degraded = False
            if wl.measure_rss:
                (job, wall), rss = measure_peak_rss(
                    lambda run=run: timed_min_of_n(run, repetitions))
                peak, rss_degraded = rss.bytes, rss.degraded
                if (wl.max_peak_rss_bytes is not None and peak is not None
                        and peak > wl.max_peak_rss_bytes):
                    raise BenchRunError(
                        f"workload {wl.name!r} peak RSS {peak:,} bytes "
                        f"exceeds the configured ceiling "
                        f"{int(wl.max_peak_rss_bytes):,} bytes"
                    )
            else:
                job, wall = timed_min_of_n(run, repetitions)
            if job.failed:
                raise BenchRunError(
                    f"workload {wl.name!r} failed: {job.error}"
                )
            issues = reconcile(job)
            if issues:
                raise BenchRunError(
                    f"workload {wl.name!r} does not reconcile: "
                    + "; ".join(issues)
                )
            records[wl.name] = job_record(job, wall,
                                          peak_rss_bytes=peak,
                                          rss_degraded=rss_degraded)
            if progress is not None:
                rss = ("" if peak is None
                       else f", peak RSS {peak / 2**20:,.0f} MiB"
                       + (" (degraded)" if rss_degraded else ""))
                progress(f"  {wl.name}: makespan "
                         f"{records[wl.name]['makespan_s']:,.1f}s sim, "
                         f"wall {wall:.3f}s (min of {repetitions})"
                         f"{rss}")
    return records


def _run_chaos_experiment(
    cfg: ExperimentConfig,
    progress: Callable[[str], None] | None,
) -> dict[str, dict]:
    from repro.runtime.chaos import run_chaos_sweep, surfer_factory
    from repro.runtime.checkpoint import CheckpointPolicy

    spec = cfg.chaos
    assert spec is not None  # validated at parse time
    graph = _build_graph(cfg.graph)
    make_surfer = surfer_factory(
        graph,
        lambda: make_cluster(
            topology_by_name(cfg.cluster.topology, cfg.cluster.machines)),
        num_parts=cfg.cluster.parts,
        replication=cfg.cluster.replication,
        seed=cfg.cluster.seed,
        layout=cfg.cluster.layout,
    )
    policy = CheckpointPolicy(interval=spec.checkpoint_interval,
                              max_restarts=spec.max_restarts)

    def run_job(surfer: Any, plan: Any) -> Any:
        app = _make_app(spec.app, spec.engine, {})
        ckpt = policy if plan is not None else None
        if spec.engine == "mapreduce":
            return surfer.run_mapreduce(
                app, rounds=spec.iterations, fault_plan=plan,
                checkpoint=ckpt,
            )
        return surfer.run_propagation(
            app, iterations=spec.iterations, fault_plan=plan,
            checkpoint=ckpt,
        )

    report = run_chaos_sweep(make_surfer, run_job, spec.schedules,
                             spec.seed)
    if not report.ok:
        raise BenchRunError(
            "chaos sweep violated the recovery invariant:\n"
            + report.summary()
        )
    records = {
        f"{spec.prefix}_baseline":
            job_record(report.baseline, report.baseline_wall_s),
    }
    if report.restarted_job is not None:
        records[f"{spec.prefix}_restarted"] = job_record(
            report.restarted_job, report.restarted_wall_s
        )
    if progress is not None:
        progress(f"  {spec.prefix}: {len(report.outcomes)} schedules, "
                 f"{report.total_restarts} restarts, "
                 f"{report.clean_failures} clean failures")
    return records


def run_experiment(
    cfg: ExperimentConfig,
    suite: str | None = None,
    repetitions: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, dict]:
    """Execute one experiment; returns ``{workload_name: record}``.

    ``suite=None`` runs every workload; otherwise only those the suite
    selects.  ``repetitions`` overrides the config's min-of-N count.
    """
    reps = repetitions if repetitions is not None else cfg.repetitions
    if cfg.kind == "chaos":
        return _run_chaos_experiment(cfg, progress)
    workloads = (cfg.workloads if suite is None
                 else cfg.workloads_for(suite))
    return _run_jobs_experiment(cfg, workloads, reps, progress)


@dataclass
class SuiteResult:
    """Everything one ``repro bench`` invocation produced."""

    suite: str
    records: dict[str, dict]
    experiments: list[str]
    #: per-workload gate-tolerance overrides from the experiment configs
    tolerances: dict[str, dict[str, float]]


def run_suite(
    suite: str,
    config_dir: str | pathlib.Path | None = None,
    repetitions: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> SuiteResult:
    """Run every experiment a suite selects, in name order."""
    configs = select_suite(discover_configs(config_dir), suite)
    records: dict[str, dict] = {}
    tolerances: dict[str, dict[str, float]] = {}
    for cfg in configs:
        if progress is not None:
            progress(f"experiment {cfg.name} ({cfg.source})")
        result = run_experiment(cfg, suite=suite,
                                repetitions=repetitions,
                                progress=progress)
        overlap = set(result) & set(records)
        if overlap:
            raise BenchRunError(
                f"experiment {cfg.name!r} re-defines workload(s) "
                f"{sorted(overlap)} already produced by another config"
            )
        records.update(result)
        for name in result:
            if cfg.tolerances:
                tolerances[name] = dict(cfg.tolerances)
    return SuiteResult(
        suite=suite,
        records=records,
        experiments=[c.name for c in configs],
        tolerances=tolerances,
    )
