"""UDF source-line counting for Table 4.

The paper compares the number of source lines a developer writes in the
user-defined functions of each application under Hadoop, the home-grown
MapReduce and propagation.  We count our own UDFs the same way — method
bodies only, excluding signatures, docstrings, comments and blank lines —
and report the paper's published Hadoop/C++ numbers alongside for
reference (we cannot rerun their codebases).
"""

from __future__ import annotations

import ast
import inspect
import textwrap

__all__ = ["count_udf_lines", "method_body_lines", "PAPER_TABLE4"]

#: the UDF methods that constitute the developer-facing code
PROPAGATION_UDFS = ("transfer", "combine", "merge", "select",
                    "virtual_transfer", "virtual_combine")
MAPREDUCE_UDFS = ("map", "reduce")

#: the paper's published Table 4 rows (for side-by-side reporting)
PAPER_TABLE4 = {
    "Hadoop": {"VDD": 24, "NR": 147, "RS": 152, "RLG": 131, "TC": 157,
               "TFL": 171},
    "Home-grown MapReduce": {"VDD": 33, "NR": 163, "RS": 168, "RLG": 144,
                             "TC": 171, "TFL": 194},
    "Propagation": {"VDD": 18, "NR": 21, "RS": 22, "RLG": 23, "TC": 27,
                    "TFL": 25},
}


def method_body_lines(cls: type, method_name: str) -> int:
    """Source lines of one method body.

    Excludes the ``def`` line(s), decorators, the docstring, comments and
    blanks (counted via the AST, so only lines carrying code count).
    Returns 0 when the class does not define the method itself —
    inherited defaults are engine code, not developer code.
    """
    if method_name not in cls.__dict__:
        return 0
    source = textwrap.dedent(inspect.getsource(cls.__dict__[method_name]))
    func = ast.parse(source).body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    body = func.body
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        body = body[1:]  # drop the docstring
    lines: set[int] = set()
    for statement in body:
        for node in ast.walk(statement):
            lineno = getattr(node, "lineno", None)
            if lineno is not None:
                lines.add(lineno)
    return len(lines)


def count_udf_lines(cls: type, kind: str) -> int:
    """Total developer-written UDF lines of an app class.

    ``kind`` is ``"propagation"`` or ``"mapreduce"``.
    """
    methods = (PROPAGATION_UDFS if kind == "propagation"
               else MAPREDUCE_UDFS)
    return sum(method_body_lines(cls, m) for m in methods)
