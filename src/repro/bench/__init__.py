"""Benchmark workloads, harness and per-table/figure experiments."""

from repro.bench.harness import (
    ExperimentTable,
    format_bytes,
    format_seconds,
    format_value,
    render_bars,
)
from repro.bench.loc import PAPER_TABLE4, count_udf_lines, method_body_lines
from repro.bench.workloads import (
    PAPER_GRAPH_BYTES,
    Workload,
    scaled_graph,
    standard_graph,
    standard_workload,
    topology_suite,
)
from repro.bench.experiments import (
    app_matrix,
    cascaded_propagation_experiment,
    fig6_topologies,
    fig7_mr_vs_prop,
    fig9_delay_sweep,
    fig10_fault_tolerance,
    fig11_scalability,
    fig12_nr_scaling,
    make_app,
    table1_partitioning,
    table4_loc,
    table5_ier,
)

__all__ = [
    "ExperimentTable",
    "format_bytes",
    "format_seconds",
    "format_value",
    "render_bars",
    "PAPER_TABLE4",
    "count_udf_lines",
    "method_body_lines",
    "PAPER_GRAPH_BYTES",
    "Workload",
    "scaled_graph",
    "standard_graph",
    "standard_workload",
    "topology_suite",
    "app_matrix",
    "cascaded_propagation_experiment",
    "fig6_topologies",
    "fig7_mr_vs_prop",
    "fig9_delay_sweep",
    "fig10_fault_tolerance",
    "fig11_scalability",
    "fig12_nr_scaling",
    "make_app",
    "table1_partitioning",
    "table4_loc",
    "table5_ier",
]
