"""One experiment function per table and figure of the paper.

Each function runs the full pipeline on the simulator and returns either an
:class:`~repro.bench.harness.ExperimentTable` shaped like the paper's table
or a dict of named series shaped like the paper's figure.  Absolute numbers
differ from the paper (our substrate is a simulator at reduced scale); the
*shapes* — who wins, by what factor, where the gaps widen — are the
reproduction targets and are asserted by ``tests/test_experiments.py``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.apps import APP_ORDER, APP_REGISTRY
from repro.bench.harness import ExperimentTable
from repro.bench.loc import (
    MAPREDUCE_UDFS,
    PAPER_TABLE4,
    PROPAGATION_UDFS,
    count_udf_lines,
)
from repro.bench.workloads import (
    PAPER_GRAPH_BYTES,
    SCALED_LINK_BPS,
    Workload,
    make_cluster,
    scaled_graph,
    standard_graph,
    standard_workload,
    topology_suite,
)
from repro.cluster.cluster import partitions_for_memory
from repro.cluster.faults import FaultPlan
from repro.cluster.spec import GIGABIT_BPS
from repro.cluster.topology import t1, t2
from repro.core.bandwidth_aware import build_machine_tree, random_machine_tree
from repro.core.partition_cost import simulate_partitioning_time
from repro.core.surfer import ALL_LEVELS, Surfer
from repro.graph.digraph import Graph
from repro.graph.io import graph_storage_bytes
from repro.partitioning.baselines import random_partition
from repro.partitioning.metrics import inner_edge_ratio
from repro.partitioning.recursive import recursive_bisection
from repro.partitioning.wgraph import WGraph
from repro.propagation.cascade import compute_cascade_info
from repro.runtime.trace import io_rate_timeline

__all__ = [
    "table1_partitioning",
    "app_matrix",
    "table4_loc",
    "table5_ier",
    "fig6_topologies",
    "fig7_mr_vs_prop",
    "cascaded_propagation_experiment",
    "fig9_delay_sweep",
    "fig10_fault_tolerance",
    "fault_scenario_sweep",
    "fig11_scalability",
    "fig12_nr_scaling",
    "make_app",
]

#: the paper samples 10 % of vertices for TC and TFL
SAMPLED_APPS = {"TC": 0.1, "TFL": 0.1}


def make_app(name: str, kind: str, select_ratio: float | None = None):
    """Instantiate an application by paper name.

    ``kind`` is ``"propagation"`` or ``"mapreduce"``; sampled apps (TC,
    TFL) get the paper's 10 % ratio unless overridden.
    """
    prop_cls, mr_cls, _ = APP_REGISTRY[name]
    cls = prop_cls if kind == "propagation" else mr_cls
    if name in SAMPLED_APPS:
        ratio = SAMPLED_APPS[name] if select_ratio is None else select_ratio
        return cls(select_ratio=ratio)
    return cls()


def default_iterations(name: str) -> int:
    return APP_REGISTRY[name][2]


def parts_for(graph: Graph, num_machines: int) -> int:
    """Partition count: two per machine, and at least the paper's
    memory rule ``P = 2**ceil(log2(||G|| / r))`` so partitions fit RAM."""
    from repro.bench.workloads import HARDWARE_SCALE, TESTBED_MACHINE

    memory = TESTBED_MACHINE.scaled(HARDWARE_SCALE).memory_bytes
    by_machines = 1 << (max(2, 2 * num_machines) - 1).bit_length()
    by_memory = partitions_for_memory(graph_storage_bytes(graph), memory)
    return max(by_machines, by_memory)


# ----------------------------------------------------------------------
# Table 1 — elapsed time of partitioning on different topologies
# ----------------------------------------------------------------------
def table1_partitioning(
    graph_bytes: float = PAPER_GRAPH_BYTES,
    num_machines: int = 32,
    num_levels: int = 6,
    seed: int = 0,
) -> ExperimentTable:
    """Partitioning elapsed time, ParMetis-like vs. bandwidth-aware."""
    topologies = topology_suite(num_machines, link_bps=GIGABIT_BPS)
    table = ExperimentTable(
        title="Table 1: elapsed time of partitioning (hours)",
        columns=list(topologies),
    )
    rows = {
        "ParMetis-like": lambda topo: random_machine_tree(
            topo, num_levels, seed=seed),
        "Bandwidth aware": lambda topo: build_machine_tree(
            topo, num_levels, seed=seed),
    }
    for label, tree_fn in rows.items():
        values = []
        for topo in topologies.values():
            report = simulate_partitioning_time(
                graph_bytes, tree_fn(topo), topo
            )
            values.append(round(report.total_seconds / 3600.0, 2))
        table.add_row(label, values)
    table.notes.append(
        "paper: ParMetis 27.1/67.6/87.6/131.0/108.0, "
        "bandwidth-aware 27.1/33.8/43.9/58.3/64.9"
    )
    return table


# ----------------------------------------------------------------------
# Tables 2 & 3 — six applications under O1..O4 on T1
# ----------------------------------------------------------------------
def app_matrix(
    workload: Workload | None = None,
    apps=APP_ORDER,
) -> tuple[ExperimentTable, ExperimentTable]:
    """Response/total time and network/disk I/O of every app × O-level."""
    workload = workload or standard_workload()
    time_cols = [f"{a}.{m}" for a in apps for m in ("Res", "Total")]
    io_cols = [f"{a}.{m}" for a in apps for m in ("Net", "Disk")]
    times = ExperimentTable(
        title="Table 2: response / total machine time on T1 (seconds)",
        columns=time_cols,
    )
    io = ExperimentTable(
        title="Table 3: network / disk I/O on T1 (bytes)",
        columns=io_cols,
    )
    for level in ALL_LEVELS:
        layout = ("bandwidth-aware" if level.bandwidth_aware_layout
                  else "oblivious")
        surfer = workload.surfer(layout)
        t_vals, io_vals = [], []
        for name in apps:
            app = make_app(name, "propagation")
            result = surfer.run_propagation(
                app,
                iterations=default_iterations(name),
                local_opts=level.local_optimizations,
            )
            t_vals += [round(result.metrics.response_time, 3),
                       round(result.metrics.total_machine_time, 3)]
            io_vals += [result.metrics.network_bytes,
                        result.metrics.disk_bytes]
        times.add_row(level.name, t_vals)
        io.add_row(level.name, io_vals)
    return times, io


# ----------------------------------------------------------------------
# Table 4 — UDF source lines
# ----------------------------------------------------------------------
def table4_loc(apps=APP_ORDER) -> ExperimentTable:
    """Developer-written UDF lines: our engines plus the paper's numbers."""
    table = ExperimentTable(
        title="Table 4: source lines in user-defined functions",
        columns=list(apps),
    )
    table.add_row("Propagation (ours)", [
        count_udf_lines(APP_REGISTRY[a][0], "propagation") for a in apps
    ])
    table.add_row("MapReduce (ours)", [
        count_udf_lines(APP_REGISTRY[a][1], "mapreduce") for a in apps
    ])
    for engine, counts in PAPER_TABLE4.items():
        table.add_row(f"{engine} (paper)", [counts[a] for a in apps])
    table.notes.append(
        f"propagation UDFs counted: {', '.join(PROPAGATION_UDFS)}; "
        f"mapreduce UDFs counted: {', '.join(MAPREDUCE_UDFS)}"
    )
    return table


# ----------------------------------------------------------------------
# Table 5 — inner edge ratio vs. number of partitions
# ----------------------------------------------------------------------
def table5_ier(
    graph: Graph | None = None,
    num_parts_list=(128, 64, 32, 16),
    seed: int = 0,
) -> ExperimentTable:
    """Inner-edge ratio of our partitioner vs. random partitioning."""
    graph = graph if graph is not None else standard_graph()
    wgraph = WGraph.from_digraph(graph)
    table = ExperimentTable(
        title="Table 5: inner edge ratio (%) vs number of partitions",
        columns=[str(p) for p in num_parts_list],
    )
    ours, rand = [], []
    for p in num_parts_list:
        rp = recursive_bisection(wgraph, p, seed=seed)
        ours.append(round(100 * inner_edge_ratio(graph, rp.parts), 1))
        rand.append(round(
            100 * inner_edge_ratio(graph, random_partition(graph, p, seed)),
            1,
        ))
    table.add_row("ier of our partitioning (%)", ours)
    table.add_row("ier of random partitioning (%)", rand)
    table.notes.append(
        "paper (MSN): ours 50.3/57.7/65.5/72.7, random 1.4/2.2/4.1/6.8"
    )
    return table


# ----------------------------------------------------------------------
# Figure 6 — bandwidth-aware placement across topologies
# ----------------------------------------------------------------------
def fig6_topologies(
    app_name: str = "NR",
    num_machines: int = 32,
    num_parts: int = 64,
    graph: Graph | None = None,
    seed: int = 2010,
) -> dict[str, dict[str, float]]:
    """Optimized propagation with vs. without bandwidth-aware placement.

    Returns ``{topology: {"oblivious": t, "bandwidth-aware": t,
    "improvement_pct": x}}``.
    """
    graph = graph if graph is not None else standard_graph()
    series: dict[str, dict[str, float]] = {}
    for label, topo in topology_suite(num_machines).items():
        result: dict[str, float] = {}
        for layout in ("oblivious", "bandwidth-aware"):
            wl = Workload(graph=graph, cluster=make_cluster(topo),
                          num_parts=num_parts, seed=seed)
            surfer = wl.surfer(layout)
            app = make_app(app_name, "propagation")
            job = surfer.run_propagation(
                app, iterations=default_iterations(app_name),
                local_opts=True,
            )
            result[layout] = job.metrics.response_time
        base = result["oblivious"]
        result["improvement_pct"] = (
            100.0 * (1 - result["bandwidth-aware"] / base) if base else 0.0
        )
        series[label] = result
    return series


# ----------------------------------------------------------------------
# Figure 7 — MapReduce vs propagation per application
# ----------------------------------------------------------------------
def fig7_mr_vs_prop(
    workload: Workload | None = None,
    apps=APP_ORDER,
) -> dict[str, dict[str, float]]:
    """Response time and network traffic: MapReduce vs. P-Surfer (O4).

    Returns ``{app: {prop_time, mr_time, speedup, prop_net, mr_net,
    net_reduction_pct}}``.
    """
    workload = workload or standard_workload()
    surfer = workload.surfer("bandwidth-aware")
    series: dict[str, dict[str, float]] = {}
    for name in apps:
        iters = default_iterations(name)
        prop = surfer.run_propagation(
            make_app(name, "propagation"), iterations=iters, local_opts=True
        )
        mr = surfer.run_mapreduce(make_app(name, "mapreduce"), rounds=iters)
        prop_net = prop.metrics.network_bytes
        mr_net = mr.metrics.network_bytes
        series[name] = {
            "prop_time": prop.metrics.response_time,
            "mr_time": mr.metrics.response_time,
            "speedup": (mr.metrics.response_time
                        / max(prop.metrics.response_time, 1e-12)),
            "prop_net": float(prop_net),
            "mr_net": float(mr_net),
            "net_reduction_pct": (
                100.0 * (1 - prop_net / mr_net) if mr_net else 0.0
            ),
        }
    return series


# ----------------------------------------------------------------------
# Section 6.3 — cascaded multi-iteration propagation
# ----------------------------------------------------------------------
def cascaded_propagation_experiment(
    workload: Workload | None = None,
    iterations=(2, 3, 4, 6),
) -> dict[str, object]:
    """NR with and without cascading; V_k ratio and per-count savings."""
    workload = workload or standard_workload()
    surfer = workload.surfer("bandwidth-aware")
    info = compute_cascade_info(surfer.pgraph)
    rows: dict[int, dict[str, float]] = {}
    for iters in iterations:
        plain = surfer.run_propagation(
            make_app("NR", "propagation"), iterations=iters,
            local_opts=True, cascaded=False,
        )
        cascaded = surfer.run_propagation(
            make_app("NR", "propagation"), iterations=iters,
            local_opts=True, cascaded=True,
        )
        assert np.allclose(plain.result, cascaded.result)
        rows[iters] = {
            "plain_time": plain.metrics.response_time,
            "cascaded_time": cascaded.metrics.response_time,
            "time_saving_pct": 100.0 * (
                1 - cascaded.metrics.response_time
                / max(plain.metrics.response_time, 1e-12)),
            "plain_disk": float(plain.metrics.disk_bytes),
            "cascaded_disk": float(cascaded.metrics.disk_bytes),
            "disk_saving_pct": 100.0 * (
                1 - cascaded.metrics.disk_bytes
                / max(plain.metrics.disk_bytes, 1)),
        }
    return {
        "v_k_ratio": info.ratio_v_k(2),
        "d_min": info.d_min,
        "iterations": rows,
    }


# ----------------------------------------------------------------------
# Figure 9 — cross-pod delay sweep
# ----------------------------------------------------------------------
def fig9_delay_sweep(
    delays=(2, 4, 8, 16, 32, 64, 128),
    num_machines: int = 32,
    num_parts: int = 64,
    graph: Graph | None = None,
    seed: int = 2010,
) -> dict[int, dict[str, float]]:
    """NR on T2(2,1) with the cross-pod delay factor varied."""
    graph = graph if graph is not None else standard_graph()
    series: dict[int, dict[str, float]] = {}
    for delay in delays:
        topo = t2(2, 1, num_machines, SCALED_LINK_BPS,
                  top_factor=float(delay),
                  mid_factor=max(1.0, delay / 2.0))
        result: dict[str, float] = {}
        for layout in ("oblivious", "bandwidth-aware"):
            wl = Workload(graph=graph, cluster=make_cluster(topo),
                          num_parts=num_parts, seed=seed)
            job = wl.surfer(layout).run_propagation(
                make_app("NR", "propagation"), iterations=1, local_opts=True
            )
            result[layout] = job.metrics.response_time
        result["improvement_pct"] = 100.0 * (
            1 - result["bandwidth-aware"] / max(result["oblivious"], 1e-12)
        )
        series[delay] = result
    return series


# ----------------------------------------------------------------------
# Figure 10 — fault tolerance
# ----------------------------------------------------------------------
def fig10_fault_tolerance(
    workload: Workload | None = None,
    kill_fraction: float = 0.33,
    iterations: int = 3,
) -> dict[str, object]:
    """NR with a machine killed mid-run vs. the normal execution.

    The kill fires at ``kill_fraction`` of the normal run's response time
    (the paper kills at 235 s of a ~660 s run).  Returns both runs'
    metrics, the recovery overhead, and disk-I/O-rate timelines.
    """
    workload = workload or standard_workload()
    surfer = workload.surfer("bandwidth-aware")
    normal = surfer.run_propagation(
        make_app("NR", "propagation"), iterations=iterations,
        local_opts=True,
    )
    kill_time = kill_fraction * normal.metrics.response_time
    victim = int(surfer.store.primary(0))
    plan = FaultPlan().add_kill(victim, kill_time)
    # fresh store: the failure mutates replica metadata
    faulty_surfer = Surfer(
        workload.graph, workload.cluster, num_parts=workload.num_parts,
        layout="bandwidth-aware", seed=workload.seed,
    )
    faulty = faulty_surfer.run_propagation(
        make_app("NR", "propagation"), iterations=iterations,
        local_opts=True, fault_plan=plan,
    )
    assert np.allclose(normal.result, faulty.result)
    bucket = max(normal.metrics.response_time / 40.0, 1e-6)
    overhead = (faulty.metrics.response_time
                / max(normal.metrics.response_time, 1e-12) - 1.0)
    return {
        "victim": victim,
        "kill_time": kill_time,
        "normal_response": normal.metrics.response_time,
        "faulty_response": faulty.metrics.response_time,
        "overhead_pct": 100.0 * overhead,
        "normal_timeline": io_rate_timeline(normal.executions, bucket),
        "faulty_timeline": io_rate_timeline(faulty.executions, bucket),
        # lost mid-flight executions plus tasks re-dispatched after the
        # machine was declared dead between tasks
        "failures": sum(1 for e in faulty.executions if not e.succeeded),
        "retries": sum(
            1 for e in faulty.executions
            if e.task.name.endswith("#retry")
        ),
    }


def fault_scenario_sweep(
    workload: Workload | None = None,
    iterations: int = 3,
) -> dict[str, object]:
    """Fault-tolerance v2 sweep: kill / transient / straggler / double kill.

    Extends the Figure 10 experiment across the whole fault model: a
    permanent kill (serial and pipelined drain), a transient outage the
    machine recovers from, a straggling machine with speculation off and
    on, and a double failure that only survives because lost replicas are
    re-created in the background.  Every scenario must reproduce the
    fault-free result exactly; the sweep reports per-scenario makespan and
    structured recovery-event counts.
    """
    workload = workload or standard_workload()
    base = workload.surfer("bandwidth-aware")

    def run(plan=None, pipelined=False, speculation=False):
        # fresh Surfer per scenario: failures mutate replica metadata —
        # but reuse the partition plan (copied, since Surfer refines the
        # placement in place), which faults never touch
        plan_copy = dataclasses.replace(
            base.plan, placement=base.plan.placement.copy()
        )
        surfer = Surfer(
            workload.graph, workload.cluster,
            num_parts=workload.num_parts, layout="bandwidth-aware",
            seed=workload.seed, plan=plan_copy,
        )
        return surfer.run_propagation(
            make_app("NR", "propagation"), iterations=iterations,
            local_opts=True, fault_plan=plan, pipelined=pipelined,
            speculation=speculation,
        )

    baseline = run()
    base_resp = baseline.metrics.response_time
    victim = int(base.store.primary(0))
    second = next(
        int(base.store.primary(p))
        for p in range(1, base.store.num_partitions)
        if int(base.store.primary(p)) != victim
    )
    t_first = 0.33 * base_resp
    t_second = 0.66 * base_resp

    scenarios: dict[str, dict[str, object]] = {}

    def record(name: str, plan=None, **kwargs):
        job = run(plan=plan, **kwargs)
        completed = (not job.failed) and np.allclose(
            baseline.result, job.result
        )
        events: dict[str, int] = {}
        for ev in job.recovery_events:
            events[ev.kind] = events.get(ev.kind, 0) + 1
        scenarios[name] = {
            "response": job.metrics.response_time,
            "events": events,
            "completed": completed,
            "re_replication_bytes": job.metrics.re_replication_bytes,
        }
        return job

    record("kill", FaultPlan().add_kill(victim, t_first))
    record("kill-pipelined", FaultPlan().add_kill(victim, t_first),
           pipelined=True)
    record("transient",
           FaultPlan().add_transient(victim, t_first,
                                     downtime=0.15 * base_resp))
    straggle = dict(machine=victim, time=0.0,
                    duration=100.0 * base_resp, factor=4.0)
    record("straggler", FaultPlan().add_slowdown(**straggle))
    record("straggler-spec", FaultPlan().add_slowdown(**straggle),
           speculation=True)
    record("double-kill",
           FaultPlan().add_kill(victim, t_first)
                      .add_kill(second, t_second))

    return {
        "victim": victim,
        "second_victim": second,
        "baseline_response": base_resp,
        "scenarios": scenarios,
    }


# ----------------------------------------------------------------------
# Figure 11 — scalability
# ----------------------------------------------------------------------
def fig11_scalability(
    machine_counts=(8, 16, 24, 32),
    seed: int = 2010,
) -> dict[int, float]:
    """P-Surfer NR response time with machines and graph scaled together."""
    series: dict[int, float] = {}
    for m in machine_counts:
        graph = scaled_graph(m, seed=seed)
        num_parts = parts_for(graph, m)
        wl = Workload(graph=graph,
                      cluster=make_cluster(t1(m, SCALED_LINK_BPS)),
                      num_parts=num_parts, seed=seed)
        job = wl.surfer("bandwidth-aware").run_propagation(
            make_app("NR", "propagation"), iterations=1, local_opts=True
        )
        series[m] = job.metrics.response_time
    return series


# ----------------------------------------------------------------------
# Figure 12 — NR: MapReduce vs propagation across cluster sizes
# ----------------------------------------------------------------------
def fig12_nr_scaling(
    machine_counts=(8, 16, 24, 32),
    seed: int = 2010,
    graph: Graph | None = None,
) -> dict[int, dict[str, float]]:
    """NR response time, MapReduce vs. P-Surfer, per cluster size."""
    graph = graph if graph is not None else standard_graph()
    series: dict[int, dict[str, float]] = {}
    for m in machine_counts:
        num_parts = parts_for(graph, m)
        wl = Workload(graph=graph,
                      cluster=make_cluster(t1(m, SCALED_LINK_BPS)),
                      num_parts=num_parts, seed=seed)
        surfer = wl.surfer("bandwidth-aware")
        prop = surfer.run_propagation(
            make_app("NR", "propagation"), iterations=1, local_opts=True
        )
        mr = surfer.run_mapreduce(make_app("NR", "mapreduce"), rounds=1)
        series[m] = {
            "prop_time": prop.metrics.response_time,
            "mr_time": mr.metrics.response_time,
            "speedup": (mr.metrics.response_time
                        / max(prop.metrics.response_time, 1e-12)),
        }
    return series
