"""Execution-trace analysis: I/O-rate and recovery timelines (Figure 10).

The fault-tolerance experiment plots the *disk I/O rate over time* of
normal and recovering executions.  We derive the timeline from the
scheduler's task executions by spreading each task's disk bytes uniformly
over its execution window and sampling on a fixed-width grid.  The
structured :class:`~repro.runtime.tasks.RecoveryEvent` stream the
scheduler emits gets the same treatment: per-bucket event counts and
re-replication byte totals.

Every timeline accepts either the legacy
:class:`~repro.runtime.tasks.TaskExecution` list or the machine-level
:class:`~repro.runtime.events.Span` list of an
:class:`~repro.runtime.events.EventStream` — the analyses are built on
the shared windows (machine, start, end, bytes, planned duration) both
carry.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.runtime.tasks import RecoveryEvent, TaskExecution

__all__ = ["io_rate_timeline", "machine_timeline", "recovery_timeline",
           "recovery_event_counts"]


def _task_name(e: Any) -> str:
    task = getattr(e, "task", None)
    return task.name if task is not None else e.name


def _disk_bytes(e: Any) -> float:
    """Read+write disk bytes of an execution or span."""
    task = getattr(e, "task", None)
    if task is not None:
        return task.disk_read_bytes + task.disk_write_bytes
    return e.disk_read_bytes + e.disk_write_bytes


def io_rate_timeline(
    executions: list[TaskExecution],
    bucket_seconds: float = 10.0,
    machine: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Disk-I/O rate (bytes/sec) sampled on ``bucket_seconds`` buckets.

    Returns ``(bucket_start_times, rates)``.  Failed executions contribute
    the bytes proportional to how long they ran before dying.
    """
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")
    if machine is not None:
        executions = [e for e in executions if e.machine == machine]
    if not executions:
        return np.zeros(0), np.zeros(0)
    horizon = max(e.end for e in executions)
    num_buckets = int(np.ceil(horizon / bucket_seconds)) or 1
    bytes_per_bucket = np.zeros(num_buckets)
    for e in executions:
        total_bytes = _disk_bytes(e)
        planned = _planned_duration(e)
        if planned > 0 and e.duration < planned:
            total_bytes *= e.duration / planned
        if e.duration <= 0:
            if total_bytes:
                bucket = min(int(e.start / bucket_seconds), num_buckets - 1)
                bytes_per_bucket[bucket] += total_bytes
            continue
        rate = total_bytes / e.duration
        first = int(e.start / bucket_seconds)
        last = min(int(np.ceil(e.end / bucket_seconds)), num_buckets)
        for b in range(first, last):
            lo = max(e.start, b * bucket_seconds)
            hi = min(e.end, (b + 1) * bucket_seconds)
            if hi > lo:
                bytes_per_bucket[b] += rate * (hi - lo)
    times = np.arange(num_buckets) * bucket_seconds
    return times, bytes_per_bucket / bucket_seconds


def _planned_duration(execution: Any) -> float:
    """Duration the task would have had if it ran to completion.

    The scheduler records the full dispatched duration on every
    execution; a failed (killed/cancelled) task then prorates its bytes
    over the partial window it actually ran.  Hand-built executions
    without the recorded plan fall back to the observed duration
    (no proration).
    """
    if execution.succeeded:
        return execution.duration
    planned = getattr(execution, "planned_duration", 0.0)
    return planned if planned > 0 else execution.duration


def recovery_event_counts(
    events: list[RecoveryEvent],
) -> dict[str, int]:
    """How many recovery events of each kind a run produced."""
    counts: dict[str, int] = {}
    for ev in events:
        counts[ev.kind] = counts.get(ev.kind, 0) + 1
    return counts


def recovery_timeline(
    events: list[RecoveryEvent],
    bucket_seconds: float = 10.0,
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Recovery events per time bucket, split by kind.

    Returns ``(bucket_start_times, {kind: counts})`` on the same grid as
    :func:`io_rate_timeline` so the two can be plotted together — the
    paper's Figure 10 dip annotated with what the job manager did about
    it.
    """
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")
    finite = [ev for ev in events if np.isfinite(ev.time)]
    if not finite:
        return np.zeros(0), {}
    horizon = max(ev.time for ev in finite)
    num_buckets = int(np.ceil(horizon / bucket_seconds)) or 1
    series: dict[str, np.ndarray] = {}
    for ev in finite:
        counts = series.setdefault(ev.kind, np.zeros(num_buckets))
        bucket = min(int(ev.time / bucket_seconds), num_buckets - 1)
        counts[bucket] += 1
    times = np.arange(num_buckets) * bucket_seconds
    return times, series


def machine_timeline(
    executions: list[TaskExecution],
) -> dict[int, list[tuple[float, float, str, bool]]]:
    """Per-machine list of ``(start, end, task_name, succeeded)`` windows."""
    timeline: dict[int, list[tuple[float, float, str, bool]]] = {}
    for e in sorted(executions, key=lambda e: (e.machine, e.start)):
        timeline.setdefault(e.machine, []).append(
            (e.start, e.end, _task_name(e), e.succeeded)
        )
    return timeline
