"""Execution-trace analysis: I/O-rate timelines (Figure 10).

The fault-tolerance experiment plots the *disk I/O rate over time* of
normal and recovering executions.  We derive the timeline from the
scheduler's task executions by spreading each task's disk bytes uniformly
over its execution window and sampling on a fixed-width grid.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.tasks import TaskExecution

__all__ = ["io_rate_timeline", "machine_timeline"]


def io_rate_timeline(
    executions: list[TaskExecution],
    bucket_seconds: float = 10.0,
    machine: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Disk-I/O rate (bytes/sec) sampled on ``bucket_seconds`` buckets.

    Returns ``(bucket_start_times, rates)``.  Failed executions contribute
    the bytes proportional to how long they ran before dying.
    """
    if bucket_seconds <= 0:
        raise ValueError("bucket_seconds must be positive")
    if machine is not None:
        executions = [e for e in executions if e.machine == machine]
    if not executions:
        return np.zeros(0), np.zeros(0)
    horizon = max(e.end for e in executions)
    num_buckets = int(np.ceil(horizon / bucket_seconds)) or 1
    bytes_per_bucket = np.zeros(num_buckets)
    for e in executions:
        total_bytes = e.task.disk_read_bytes + e.task.disk_write_bytes
        planned = _planned_duration(e)
        if planned > 0 and e.duration < planned:
            total_bytes *= e.duration / planned
        if e.duration <= 0:
            if total_bytes:
                bucket = min(int(e.start / bucket_seconds), num_buckets - 1)
                bytes_per_bucket[bucket] += total_bytes
            continue
        rate = total_bytes / e.duration
        first = int(e.start / bucket_seconds)
        last = min(int(np.ceil(e.end / bucket_seconds)), num_buckets)
        for b in range(first, last):
            lo = max(e.start, b * bucket_seconds)
            hi = min(e.end, (b + 1) * bucket_seconds)
            if hi > lo:
                bytes_per_bucket[b] += rate * (hi - lo)
    times = np.arange(num_buckets) * bucket_seconds
    return times, bytes_per_bucket / bucket_seconds


def _planned_duration(execution: TaskExecution) -> float:
    """Duration the task would have had if it ran to completion."""
    if execution.succeeded:
        return execution.duration
    # Failed executions ran only part of the plan; we cannot recover the
    # plan exactly without the machine spec, so approximate with duration.
    return execution.duration


def machine_timeline(
    executions: list[TaskExecution],
) -> dict[int, list[tuple[float, float, str, bool]]]:
    """Per-machine list of ``(start, end, task_name, succeeded)`` windows."""
    timeline: dict[int, list[tuple[float, float, str, bool]]] = {}
    for e in sorted(executions, key=lambda e: (e.machine, e.start)):
        timeline.setdefault(e.machine, []).append(
            (e.start, e.end, e.task.name, e.succeeded)
        )
    return timeline
