"""Randomized chaos-testing harness for the recovery machinery.

Fault-tolerance code is only as good as the fault schedules it has
seen.  The unit tests pin down hand-picked scenarios; this module
generates *randomized* (but fully seeded) fault schedules across the
whole injection matrix — permanent kills, transient outages, slowdowns,
and correlated whole-replica-set loss — runs the same job under each,
and checks the recovery invariant:

    every schedule either yields a result bit-identical to the
    fault-free baseline, or a cleanly-reported failure (restart budget
    exhausted / cluster gone) — and in both cases the run's event
    stream must reconcile against its cluster metrics.

Anything else — a different result, an exception escaping the driver,
a trace that does not add up — is a **violation** and fails the sweep.

Everything is deterministic: schedule ``i`` of a sweep draws from
``np.random.default_rng([seed, i])``, so a violating schedule can be
replayed in isolation by seed alone (``repro chaos --seed ...``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import FaultInjectionError, JobError
from repro.cluster.faults import FaultPlan
from repro.core.surfer import JobResult, Surfer
from repro.runtime.events import reconcile, wall_timer

__all__ = ["ChaosOutcome", "ChaosReport", "random_fault_plan",
           "results_identical", "run_chaos_sweep", "surfer_factory"]


def random_fault_plan(
    rng: np.random.Generator,
    num_machines: int,
    horizon: float,
    replica_sets: Sequence[Sequence[int]] | None = None,
    max_kills: int | None = None,
) -> FaultPlan:
    """One seeded random fault schedule over the injection matrix.

    Draws, in order (so a given ``rng`` state maps to exactly one plan):

    * with probability ~0.3 (when ``replica_sets`` is given), a
      *correlated loss*: every holder of one randomly chosen partition
      is killed inside a tight window — the scenario that defeats
      replica promotion and forces a job-level restart;
    * 0..``max_kills`` further independent permanent kills at uniform
      times in ``[0, horizon)``;
    * 0..3 transient outages and 0..2 slowdowns on random machines
      (overlapping windows are skipped rather than re-drawn, keeping
      the draw sequence deterministic).

    ``max_kills`` defaults to half the cluster; the correlated-loss
    kills count against it.  ``horizon`` should comfortably cover the
    fault-free run so late schedules still land inside the job.
    """
    if max_kills is None:
        max_kills = max(1, num_machines // 2)
    plan = FaultPlan()
    killed: set[int] = set()
    if replica_sets and rng.random() < 0.3:
        target = replica_sets[int(rng.integers(0, len(replica_sets)))]
        t0 = float(rng.uniform(0.0, horizon))
        width = max(horizon * 0.02, 1e-3)
        for m in target:
            if len(killed) >= max_kills:
                break
            if int(m) in killed:
                continue
            plan.add_kill(int(m), t0 + float(rng.uniform(0.0, width)))
            killed.add(int(m))
    n_kills = int(rng.integers(0, max_kills + 1))
    for m in rng.permutation(num_machines):
        if len(killed) >= n_kills or len(killed) >= max_kills:
            break
        machine = int(m)
        if machine in killed:
            continue
        plan.add_kill(machine, float(rng.uniform(0.0, horizon)))
        killed.add(machine)
    for _ in range(int(rng.integers(0, 4))):
        machine = int(rng.integers(0, num_machines))
        start = float(rng.uniform(0.0, horizon))
        downtime = float(rng.uniform(horizon * 0.01, horizon * 0.2))
        try:
            plan.add_transient(machine, start, downtime)
        except FaultInjectionError:
            pass  # overlapping window: skip, keep the draw count fixed
    for _ in range(int(rng.integers(0, 3))):
        machine = int(rng.integers(0, num_machines))
        start = float(rng.uniform(0.0, horizon))
        duration = float(rng.uniform(horizon * 0.05, horizon * 0.3))
        factor = float(rng.uniform(1.5, 4.0))
        try:
            plan.add_slowdown(machine, start, duration, factor)
        except FaultInjectionError:
            pass
    return plan


def results_identical(a: Any, b: Any) -> bool:
    """Exact (bit-level, not approximate) equality of job results.

    Arrays must match in shape, dtype and every element; containers
    recurse; everything else falls back to ``==``.  No tolerance — the
    recovery invariant is *bit-identical*, which the deterministic
    UDF/engine discipline makes achievable.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return bool(a.shape == b.shape and a.dtype == b.dtype
                    and np.array_equal(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(results_identical(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(results_identical(x, y) for x, y in zip(a, b)))
    return bool(a == b)


@dataclass(frozen=True)
class ChaosOutcome:
    """What one random schedule did to the job.

    ``status`` is ``"identical"`` (completed, bit-identical to the
    fault-free baseline), ``"clean-failure"`` (a reported failed job —
    restart budget exhausted or cluster gone) or ``"violation"``
    (anything else; ``detail`` says what went wrong).
    """

    index: int
    status: str
    kills: int
    transients: int
    slowdowns: int
    restarts: int = 0
    checkpoints: int = 0
    detail: str | None = None
    #: real Python seconds this schedule's job took (0.0 if it escaped)
    wall_s: float = 0.0


@dataclass
class ChaosReport:
    """Aggregate of one sweep; ``ok`` is the recovery invariant."""

    seed: int
    baseline: JobResult
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    #: the completed (non-failed) job with the most restarts, kept so
    #: callers can report/bench the recovery overhead next to the
    #: baseline without re-running its schedule
    restarted_job: JobResult | None = None
    #: real Python seconds for the fault-free baseline run alone (the
    #: deployment build is excluded; benches must not report the whole
    #: sweep's wall clock as a per-job number)
    baseline_wall_s: float = 0.0
    #: real Python seconds for the retained ``restarted_job`` run
    restarted_wall_s: float = 0.0

    @property
    def violations(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if o.status == "violation"]

    @property
    def identical(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "identical")

    @property
    def clean_failures(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "clean-failure")

    @property
    def total_restarts(self) -> int:
        return sum(o.restarts for o in self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"chaos sweep: {len(self.outcomes)} schedules (seed {self.seed})",
            f"  identical results: {self.identical}",
            f"  clean failures:    {self.clean_failures}",
            f"  violations:        {len(self.violations)}",
            f"  job restarts:      {self.total_restarts}",
        ]
        for o in self.violations:
            lines.append(f"  VIOLATION schedule {o.index}: {o.detail}")
        return "\n".join(lines)


def run_chaos_sweep(
    make_surfer: Callable[[], Surfer],
    run_job: Callable[[Surfer, FaultPlan | None], JobResult],
    schedules: int,
    seed: int,
    horizon_factor: float = 1.5,
    max_kills: int | None = None,
) -> ChaosReport:
    """Run ``schedules`` random fault schedules and check the invariant.

    ``make_surfer`` must build a *fresh* deployment per call (the fault
    path mutates stores and placements); ``run_job(surfer, plan)`` runs
    the workload — with a checkpoint policy enabled, or the sweep will
    simply count every unabsorbed data loss as a clean failure and
    never exercise restart.  Schedule ``i`` draws from
    ``default_rng([seed, i])``; the fault horizon is the fault-free
    response time times ``horizon_factor``.
    """
    if schedules < 1:
        raise JobError("chaos sweep needs at least one schedule")
    surfer = make_surfer()
    timer = wall_timer()
    baseline = run_job(surfer, None)
    baseline_wall = timer.elapsed()
    if baseline.failed:
        raise JobError(f"fault-free baseline failed: {baseline.error}")
    base_issues = reconcile(baseline)
    if base_issues:
        raise JobError(
            f"fault-free baseline does not reconcile: {base_issues}"
        )
    num_machines = surfer.cluster.num_machines
    replica_sets = [surfer.store.replicas(p)
                    for p in range(surfer.store.num_partitions)]
    horizon = max(baseline.response_time * horizon_factor, 1.0)

    report = ChaosReport(seed=seed, baseline=baseline,
                         baseline_wall_s=baseline_wall)
    for i in range(schedules):
        rng = np.random.default_rng([seed, i])
        plan = random_fault_plan(rng, num_machines, horizon,
                                 replica_sets=replica_sets,
                                 max_kills=max_kills)
        counts = (len(plan.kills), len(plan.transients),
                  len(plan.slowdowns))
        job: JobResult | None = None
        status = "identical"
        detail: str | None = None
        wall = 0.0
        try:
            sched_surfer = make_surfer()
            timer = wall_timer()
            job = run_job(sched_surfer, plan)
            wall = timer.elapsed()
        except Exception as exc:  # noqa: BLE001 -- any escape is a violation
            status = "violation"
            detail = f"escaped {type(exc).__name__}: {exc}"
        if job is not None:
            issues = reconcile(job)
            if issues:
                status = "violation"
                detail = "trace does not reconcile: " + "; ".join(issues)
            elif job.failed:
                if job.error:
                    status = "clean-failure"
                    detail = job.error
                else:
                    status = "violation"
                    detail = "failed job without an error message"
            elif not results_identical(baseline.result, job.result):
                status = "violation"
                detail = "result differs from the fault-free baseline"
        report.outcomes.append(ChaosOutcome(
            index=i,
            status=status,
            kills=counts[0],
            transients=counts[1],
            slowdowns=counts[2],
            restarts=job.restarts if job is not None else 0,
            checkpoints=job.checkpoints if job is not None else 0,
            detail=detail,
            wall_s=wall,
        ))
        if (status == "identical" and job is not None and job.restarts
                and (report.restarted_job is None
                     or job.restarts > report.restarted_job.restarts)):
            report.restarted_job = job
            report.restarted_wall_s = wall
    return report


def surfer_factory(
    graph: Any,
    make_cluster: Callable[[], Any],
    num_parts: int,
    replication: int,
    seed: int = 0,
    layout: str = "bandwidth-aware",
) -> Callable[[], Surfer]:
    """A ``make_surfer`` that partitions once and redeploys per call.

    Partitioning dominates small-graph setup time; a chaos sweep builds
    one Surfer per schedule, so the factory computes the partition plan
    on the first call and hands each deployment its own *copy* of the
    placement (Surfer refines placements in place).
    """
    cache: list[Any] = []

    def make() -> Surfer:
        cluster = make_cluster()
        if not cache:
            first = Surfer(graph, cluster, num_parts=num_parts,
                           layout=layout, seed=seed,
                           replication=replication)
            cache.append(first.plan)
            return first
        plan = replace(cache[0], placement=cache[0].placement.copy())
        return Surfer(graph, cluster, num_parts=num_parts, seed=seed,
                      replication=replication, plan=plan)

    return make
