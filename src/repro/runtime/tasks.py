"""Task model for the simulated Surfer runtime.

Every engine stage (Transfer, Combine, Map, Shuffle, Reduce, bisection...)
decomposes into :class:`Task` objects, each pinned to the machine holding
its input partition.  A task's resource demands are plain numbers — disk
bytes, CPU work units, network sends — which the scheduler converts into
simulated seconds against the cluster's rate models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Task", "TaskExecution", "StageResult", "RecoveryEvent"]


@dataclass
class Task:
    """One schedulable unit of work.

    ``sends`` are ``(dst_machine, nbytes)`` pairs performed by this task;
    sends to the task's own machine are free (local).  ``receives`` are
    ``(src_machine, nbytes)`` pairs whose *time* is charged to this task —
    inbound data occupies the receiver's NIC before the task can run — but
    whose traffic was already counted by the sender.  ``input_transfers``
    are ``(src_machine, nbytes)`` pairs describing where this task's input
    came from — consulted only when the task must be *re-executed* after a
    failure, in which case a Combine-type task re-fetches its inputs
    (Appendix B).
    """

    name: str
    machine: int
    kind: str = "generic"
    partition: int | None = None
    disk_read_bytes: float = 0.0
    cpu_ops: float = 0.0
    disk_write_bytes: float = 0.0
    sends: list[tuple[int, float]] = field(default_factory=list)
    receives: list[tuple[int, float]] = field(default_factory=list)
    #: ``(src_machine, nbytes)`` remote input fetches — a non-local task
    #: pulling its partition from a replica holder.  Charged like receives
    #: *and* counted as network traffic.
    fetches: list[tuple[int, float]] = field(default_factory=list)
    input_transfers: list[tuple[int, float]] = field(default_factory=list)
    earliest_start: float = 0.0
    #: disk-rate divisor: > 1 when the working set does not fit in memory
    #: and I/O degrades from sequential to random (principle P2)
    disk_penalty: float = 1.0
    #: how many times this task has already been re-dispatched after a
    #: failure or launched speculatively; bounds the retry loop
    attempt: int = 0

    def total_send_bytes(self) -> float:
        return float(sum(b for _, b in self.sends))


@dataclass(frozen=True)
class TaskExecution:
    """A (possibly failed) run of a task on a machine.

    ``planned_duration`` is the full duration the scheduler dispatched
    the task with (slowdown-stretched), recorded at dispatch time.  For
    successful executions it equals ``duration``; for executions cut
    short by a fault it is the duration the task *would* have had, which
    is what byte proration over the partial window must divide by.
    ``0.0`` (the default, for hand-built executions) means unknown —
    consumers fall back to ``duration``.
    """

    task: Task
    machine: int
    start: float
    end: float
    succeeded: bool
    planned_duration: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RecoveryEvent:
    """One structured fault-recovery action taken by the job manager.

    ``kind`` is one of ``machine-down``, ``machine-recovered``,
    ``detect`` (heartbeat loss noticed), ``redispatch`` (lost task
    re-queued on a replica holder), ``spec-launch`` / ``spec-win`` /
    ``spec-cancel`` (speculative backup lifecycle), ``re-replicate``
    (background replica copy, ``nbytes`` of traffic), ``data-loss``
    and ``job-restart`` (job-level restart from a checkpoint; ``task``
    carries the provenance, e.g. ``"from checkpoint @ superstep 12"``).
    """

    time: float
    kind: str
    machine: int
    task: str | None = None
    partition: int | None = None
    nbytes: int = 0


@dataclass
class StageResult:
    """Outcome of one synchronized stage."""

    executions: list[TaskExecution]
    start_time: float
    end_time: float
    failures: int = 0
    recovery_events: list[RecoveryEvent] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.end_time - self.start_time
