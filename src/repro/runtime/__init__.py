"""Simulated Surfer runtime: tasks, job scheduler, traces."""

from repro.runtime.tasks import StageResult, Task, TaskExecution
from repro.runtime.scheduler import HEARTBEAT_INTERVAL, StageScheduler
from repro.runtime.trace import io_rate_timeline, machine_timeline
from repro.runtime.monitor import (
    JobMonitor,
    MachineUtilization,
    estimate_progress,
)

__all__ = [
    "StageResult",
    "Task",
    "TaskExecution",
    "HEARTBEAT_INTERVAL",
    "StageScheduler",
    "io_rate_timeline",
    "machine_timeline",
    "JobMonitor",
    "MachineUtilization",
    "estimate_progress",
]
