"""Simulated Surfer runtime: tasks, job scheduler, traces, observability."""

from repro.runtime.events import (
    EventStream,
    Instant,
    MetricsRegistry,
    Span,
    chrome_trace,
    reconcile,
    write_chrome_trace,
)
from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointPolicy,
    CheckpointStore,
)
from repro.runtime.tasks import (
    RecoveryEvent,
    StageResult,
    Task,
    TaskExecution,
)
from repro.runtime.scheduler import (
    HEARTBEAT_INTERVAL,
    MAX_RETRIES,
    SPECULATION_FACTOR,
    StageScheduler,
)
from repro.runtime.trace import (
    io_rate_timeline,
    machine_timeline,
    recovery_event_counts,
    recovery_timeline,
)
from repro.runtime.monitor import (
    JobMonitor,
    MachineUtilization,
    estimate_progress,
    failed_task_seconds,
)

__all__ = [
    "Checkpoint",
    "CheckpointPolicy",
    "CheckpointStore",
    "EventStream",
    "Instant",
    "MetricsRegistry",
    "Span",
    "chrome_trace",
    "reconcile",
    "write_chrome_trace",
    "failed_task_seconds",
    "RecoveryEvent",
    "StageResult",
    "Task",
    "TaskExecution",
    "HEARTBEAT_INTERVAL",
    "MAX_RETRIES",
    "SPECULATION_FACTOR",
    "StageScheduler",
    "io_rate_timeline",
    "machine_timeline",
    "recovery_event_counts",
    "recovery_timeline",
    "JobMonitor",
    "MachineUtilization",
    "estimate_progress",
]
