"""Simulated Surfer runtime: tasks, job scheduler, traces."""

from repro.runtime.tasks import (
    RecoveryEvent,
    StageResult,
    Task,
    TaskExecution,
)
from repro.runtime.scheduler import (
    HEARTBEAT_INTERVAL,
    MAX_RETRIES,
    SPECULATION_FACTOR,
    StageScheduler,
)
from repro.runtime.trace import (
    io_rate_timeline,
    machine_timeline,
    recovery_event_counts,
    recovery_timeline,
)
from repro.runtime.monitor import (
    JobMonitor,
    MachineUtilization,
    estimate_progress,
)

__all__ = [
    "RecoveryEvent",
    "StageResult",
    "Task",
    "TaskExecution",
    "HEARTBEAT_INTERVAL",
    "MAX_RETRIES",
    "SPECULATION_FACTOR",
    "StageScheduler",
    "io_rate_timeline",
    "machine_timeline",
    "recovery_event_counts",
    "recovery_timeline",
    "JobMonitor",
    "MachineUtilization",
    "estimate_progress",
]
