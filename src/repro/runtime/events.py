"""Run-wide observability: structured spans, metrics, Chrome-trace export.

The paper's job manager "records resource utilization and estimates the
execution progress of the job" (Appendix B).  This module is the
substrate for that: every component of the runtime — the stage
scheduler, the propagation and MapReduce engines, the network model and
the fault-recovery path — emits into one :class:`EventStream` per job:

* :class:`Span` — one timed unit of simulated work (a task execution, a
  barrier stage, an iteration), carrying the simulated window, the
  machine/partition it ran on, and its cost counters (cpu ops,
  disk/network bytes).  ``wall_self_seconds`` records the *real* Python
  time spent producing the span, so simulated cost and simulator
  overhead can be separated in one trace.
* :class:`Instant` — a point event (fault detected, task re-dispatched,
  replica re-created, ...).
* :class:`MetricsRegistry` — named monotonic counters and gauges shared
  by the scheduler, the engines and the network model; the registry is
  the single source the reports and the BENCH JSON read from.

:func:`chrome_trace` serializes a stream into the Chrome ``traceEvents``
JSON format, loadable in ``chrome://tracing`` or Perfetto: one process
per job section, one lane (thread) per machine, counters attached as
``args``.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "Span",
    "Instant",
    "MetricsRegistry",
    "EventStream",
    "chrome_trace",
    "write_chrome_trace",
    "reconcile",
    "CANONICAL_COUNTERS",
    "DYNAMIC_COUNTER_PREFIXES",
    "WallTimer",
    "wall_timer",
]


# ----------------------------------------------------------------------
# Canonical counter schema
# ----------------------------------------------------------------------
#: Every counter name the runtime increments, with its meaning.  This is
#: the *registration side* of the counter-conservation contract: the
#: ``repro check`` counter pass (``repro.analysis.counters``) statically
#: cross-references each ``metrics.add("...")`` site in the engines, the
#: scheduler, the network model and the fault path against this table,
#: in both directions — an increment of an unregistered name and a
#: registered name that nothing increments are both CI failures.  Adding
#: a counter therefore always touches this table, which is what keeps
#: ``reconcile()`` and the BENCH JSON consumers honest about what exists.
CANONICAL_COUNTERS: dict[str, str] = {
    # -- stage scheduler ------------------------------------------------
    "scheduler.tasks_executed": "successful task executions",
    "scheduler.task_failures": "executions cut short by a fault",
    "scheduler.stages": "barrier stages run",
    "scheduler.retries": "task re-dispatches after failures",
    "scheduler.wall_seconds": "real Python seconds spent scheduling",
    "scheduler.re_replication_bytes":
        "background replica-repair traffic (audited by reconcile())",
    "scheduler.spec_charged_disk_read_bytes":
        "disk reads charged to spec-cancelled originals",
    "scheduler.spec_charged_disk_write_bytes":
        "disk writes charged to spec-cancelled originals",
    "scheduler.spec_charged_network_bytes":
        "network traffic charged to spec-cancelled originals",
    # -- network model --------------------------------------------------
    "network.bytes_total": "all traffic put on the wire",
    "network.transfers": "point-to-point transfer count",
    "network.bytes_cross_pod": "traffic crossing a pod boundary",
    "network.bytes_background": "background (re-replication) flows",
    # -- propagation engine ---------------------------------------------
    "propagation.iterations": "propagation iterations run",
    "propagation.messages_emitted": "messages produced by transfer()",
    "propagation.messages_shipped": "messages that crossed partitions",
    "propagation.network_bytes": "cross-partition payload bytes",
    "propagation.spill_bytes": "boundary spill written to local disk",
    "propagation.locally_propagated": "vertices combined in memory",
    # -- frontier mode ---------------------------------------------------
    "frontier.active": "active vertices scanned by frontier Transfers",
    "frontier.exchange_bytes":
        "frontier summary bytes announced to other machines",
    "frontier.direction_switches":
        "per-partition top-down/bottom-up direction flips",
    "frontier.bottom_up_scans": "partitions scanned bottom-up",
    # -- MapReduce engine -----------------------------------------------
    "mapreduce.rounds": "MapReduce rounds run",
    "mapreduce.map_records": "records emitted by map()",
    "mapreduce.shuffle_bytes": "spilled/shuffled bytes (post-combine)",
    "mapreduce.network_bytes": "shuffle bytes that crossed machines",
    "mapreduce.shuffle_records": "records actually shuffled",
    "mapreduce.shuffle_bytes_precombine":
        "shuffle volume before map-side combining",
    # -- checkpoint/restore ----------------------------------------------
    "checkpoint.checkpoints": "snapshots committed to the replica tier",
    "checkpoint.bytes_written": "checkpoint bytes written (all replicas)",
    "checkpoint.restores": "successful restores from a checkpoint",
    "checkpoint.bytes_read":
        "state + durable-partition bytes read back during restores",
    "checkpoint.restart_attempts": "job-level restart attempts begun",
    "checkpoint.backoff_seconds": "simulated backoff before restarts",
    "checkpoint.restored_partitions":
        "partitions reloaded from the durable tier (all replicas lost)",
    # -- simulator overhead ---------------------------------------------
    "wall.udf_seconds": "real Python seconds spent in UDFs",
}

#: Prefixes under which counter names may be minted dynamically (one
#: counter per :class:`~repro.runtime.tasks.RecoveryEvent` kind).  The
#: static counter pass accepts ``add(f"<prefix>{...}")`` only for these.
DYNAMIC_COUNTER_PREFIXES: tuple[str, ...] = ("recovery.",)


# ----------------------------------------------------------------------
# Sanctioned wall-clock source
# ----------------------------------------------------------------------
class WallTimer:
    """Measures *real* Python time for span self-time accounting.

    The simulated runtime must never consult the wall clock for model
    time — the DET004 lint forbids ``time.time``/``time.perf_counter``
    inside the engines and the scheduler.  The one legitimate use is
    measuring simulator overhead (``Span.wall_self_seconds``,
    ``wall.udf_seconds``), and this class is the single sanctioned way
    to do it.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = _time.perf_counter()

    def elapsed(self) -> float:
        """Real seconds since this timer was created (or last restart)."""
        return _time.perf_counter() - self._start

    def restart(self) -> float:
        """Return :meth:`elapsed` and reset the start point to now."""
        now = _time.perf_counter()
        lap = now - self._start
        self._start = now
        return lap


def wall_timer() -> WallTimer:
    """Start a :class:`WallTimer` (the sanctioned wall-clock API)."""
    return WallTimer()


@dataclass(frozen=True)
class Span:
    """One timed unit of simulated work.

    ``start``/``end`` are simulated seconds; ``machine`` is ``-1`` for
    run-level spans (barrier stages, iterations) that belong to no single
    machine.  Cost counters describe the work *attempted* in the window;
    for failed spans (``succeeded=False``) the charged fraction is
    ``duration / planned_duration``.
    """

    name: str
    kind: str
    start: float
    end: float
    machine: int = -1
    partition: int | None = None
    succeeded: bool = True
    attempt: int = 0
    cpu_ops: float = 0.0
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    net_send_bytes: float = 0.0
    net_recv_bytes: float = 0.0
    #: full duration the work was dispatched with (equals ``duration``
    #: for successful spans; larger for spans cut short by a fault)
    planned_duration: float = 0.0
    #: real (wall-clock) seconds of Python time spent producing this
    #: span, exclusive of child spans — simulator overhead, not model
    wall_self_seconds: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def disk_bytes(self) -> float:
        return self.disk_read_bytes + self.disk_write_bytes


@dataclass(frozen=True)
class Instant:
    """A point event on the simulated timeline."""

    time: float
    name: str
    kind: str
    machine: int = -1
    partition: int | None = None
    nbytes: int = 0


class MetricsRegistry:
    """Named monotonic counters and last-value gauges.

    Counter names are dotted paths (``network.bytes_total``,
    ``propagation.messages_shipped``); the registry is deliberately
    schema-free — any component may mint a name — but the canonical
    names are documented in ``docs/OBSERVABILITY.md`` and stable across
    PRs because the BENCH JSON reads them.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        if name in self.counters:
            return self.counters[name]
        return self.gauges.get(name, default)

    def snapshot(self) -> dict[str, float]:
        """All counters and gauges as one flat dict (gauges prefixed)."""
        out = dict(sorted(self.counters.items()))
        out.update({f"gauge:{k}": v
                    for k, v in sorted(self.gauges.items())})
        return out

    def report(self) -> str:
        lines = ["metrics:"]
        for name, value in sorted(self.counters.items()):
            if float(value).is_integer():
                lines.append(f"  {name:40s} {int(value):>16,d}")
            else:
                lines.append(f"  {name:40s} {value:>16,.2f}")
        for name, value in sorted(self.gauges.items()):
            lines.append(f"  {name:40s} {value:>16,.2f} (gauge)")
        return "\n".join(lines)


class EventStream:
    """The per-job collector every runtime component emits into."""

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- emission ------------------------------------------------------
    def span(self, span: Span) -> None:
        self.spans.append(span)

    def emit(self, **kwargs: Any) -> Span:
        s = Span(**kwargs)
        self.spans.append(s)
        return s

    def instant(self, time: float, name: str, kind: str,
                machine: int = -1, partition: int | None = None,
                nbytes: int = 0) -> None:
        self.instants.append(
            Instant(time, name, kind, machine, partition, nbytes)
        )

    def annotate_last(self, **changes: Any) -> None:
        """Replace fields of the most recent span (frozen dataclass)."""
        if self.spans:
            self.spans[-1] = replace(self.spans[-1], **changes)

    # -- queries -------------------------------------------------------
    def task_spans(self) -> list[Span]:
        """Machine-level work spans (excludes stage/iteration framing)."""
        return [s for s in self.spans if s.machine >= 0]

    def spans_of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def machines(self) -> list[int]:
        return sorted({s.machine for s in self.task_spans()})

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.task_spans()), default=0.0)

    def stage_totals(self) -> dict[str, dict[str, float]]:
        """Per-kind simulated totals over machine-level spans.

        The reconciliation surface: these sums must equal the
        :class:`~repro.runtime.monitor.JobMonitor` stage summary and the
        cluster's cost counters for the same run.
        """
        totals: dict[str, dict[str, float]] = {}
        for s in self.task_spans():
            rec = totals.setdefault(s.kind, {
                "tasks": 0.0, "seconds": 0.0, "failed": 0.0,
                "cpu_ops": 0.0, "disk_read_bytes": 0.0,
                "disk_write_bytes": 0.0, "net_send_bytes": 0.0,
            })
            rec["tasks"] += 1
            rec["seconds"] += s.duration
            if not s.succeeded:
                rec["failed"] += 1
                continue
            # cost counters are charged on success only, mirroring the
            # scheduler's _charge(); int-truncated like the machine
            # counters so the totals reconcile exactly
            rec["cpu_ops"] += s.cpu_ops
            rec["disk_read_bytes"] += int(s.disk_read_bytes)
            rec["disk_write_bytes"] += int(s.disk_write_bytes)
            rec["net_send_bytes"] += int(s.net_send_bytes)
        return totals

    def wall_seconds(self) -> float:
        """Total real Python time recorded across all spans."""
        return sum(s.wall_self_seconds for s in self.spans)

    def verify_frame_discipline(self, atol: float = 1e-6) -> list[str]:
        """Check span push/pop discipline over the emission order.

        The emission contract: machine-level task spans are followed by
        exactly one ``stage`` span framing them; ``iteration``/``round``
        spans then frame the work stages of their superstep (checkpoint
        and restore stages sit *between* supersteps, outside any
        iteration frame).  A work stage left behind by an aborted
        superstep is legal only when a checkpoint/restore stage follows
        it before the next frame (the job-restart path).  Returns
        human-readable violations; empty means the discipline holds.
        """
        problems: list[str] = []

        def is_recovery_stage(span: Span) -> bool:
            kinds = span.name.split(" ", 1)[-1].split("+")
            return bool({"checkpoint", "restore"} & set(kinds))

        open_tasks: list[Span] = []
        pending_stages: list[Span] = []
        for s in self.spans:
            if s.end < s.start - atol:
                problems.append(
                    f"span {s.name!r} ends before it starts "
                    f"({s.end!r} < {s.start!r})")
            if s.machine >= 0:
                open_tasks.append(s)
            elif s.kind == "stage":
                for t in open_tasks:
                    if (t.start < s.start - atol
                            or t.end > s.end + atol):
                        problems.append(
                            f"task span {t.name!r} "
                            f"[{t.start!r}, {t.end!r}] escapes its "
                            f"stage {s.name!r} [{s.start!r}, {s.end!r}]")
                open_tasks = []
                pending_stages.append(s)
            elif s.kind in ("iteration", "round"):
                if open_tasks:
                    problems.append(
                        f"{len(open_tasks)} task span(s) not framed by "
                        f"a stage before {s.name!r}")
                    open_tasks = []
                framed = 0
                for idx, st in enumerate(pending_stages):
                    if is_recovery_stage(st):
                        continue
                    if (st.end <= s.start + atol
                            and any(is_recovery_stage(later) for later
                                    in pending_stages[idx + 1:])):
                        continue  # aborted pre-restart work
                    framed += 1
                    if (st.start < s.start - atol
                            or st.end > s.end + atol):
                        problems.append(
                            f"stage {st.name!r} "
                            f"[{st.start!r}, {st.end!r}] escapes its "
                            f"{s.kind} frame {s.name!r} "
                            f"[{s.start!r}, {s.end!r}]")
                if not framed:
                    problems.append(f"{s.name!r} frames no work stage")
                pending_stages = []
        if open_tasks:
            problems.append(
                f"{len(open_tasks)} task span(s) never framed by a "
                "stage span")
        return problems


# ----------------------------------------------------------------------
# Chrome-trace (chrome://tracing, Perfetto) export
# ----------------------------------------------------------------------
_USEC = 1e6  # trace timestamps are microseconds; ours are sim seconds


def chrome_trace(stream: EventStream) -> dict:
    """Serialize a stream to the Chrome ``traceEvents`` JSON object.

    Layout: pid 0 is the job ("surfer"), with one lane (tid) per
    machine; run-level spans (stages, iterations) render on pid 1
    ("job manager") in a single lane.  Counters ride along as ``args``
    so clicking a slice shows its cost breakdown.  Instants (recovery
    actions) appear as instant events on the lane of their machine.
    """
    events: list[dict] = []
    events.append({"ph": "M", "pid": 0, "name": "process_name",
                   "args": {"name": "surfer"}})
    events.append({"ph": "M", "pid": 1, "name": "process_name",
                   "args": {"name": "job manager"}})
    events.append({"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
                   "args": {"name": "stages"}})
    for m in stream.machines():
        events.append({"ph": "M", "pid": 0, "tid": m,
                       "name": "thread_name",
                       "args": {"name": f"machine {m}"}})
    for s in stream.spans:
        machine_level = s.machine >= 0
        args = {
            "kind": s.kind,
            "succeeded": s.succeeded,
            "cpu_ops": s.cpu_ops,
            "disk_read_bytes": s.disk_read_bytes,
            "disk_write_bytes": s.disk_write_bytes,
            "net_send_bytes": s.net_send_bytes,
            "net_recv_bytes": s.net_recv_bytes,
            "wall_self_seconds": s.wall_self_seconds,
        }
        if s.partition is not None:
            args["partition"] = s.partition
        if s.attempt:
            args["attempt"] = s.attempt
        if not s.succeeded and s.planned_duration > 0:
            args["planned_duration"] = s.planned_duration
        events.append({
            "name": s.name,
            "cat": s.kind,
            "ph": "X",
            "pid": 0 if machine_level else 1,
            "tid": s.machine if machine_level else 0,
            "ts": s.start * _USEC,
            "dur": s.duration * _USEC,
            "args": args,
        })
    for ev in stream.instants:
        args: dict = {"kind": ev.kind}
        if ev.partition is not None:
            args["partition"] = ev.partition
        if ev.nbytes:
            args["nbytes"] = ev.nbytes
        events.append({
            "name": ev.name,
            "cat": ev.kind,
            "ph": "i",
            "s": "g" if ev.machine < 0 else "t",
            "pid": 0 if ev.machine >= 0 else 1,
            "tid": max(ev.machine, 0),
            "ts": ev.time * _USEC,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated seconds scaled to microseconds",
            "metrics": stream.metrics.snapshot(),
            "wall_seconds": stream.wall_seconds(),
        },
    }


def write_chrome_trace(stream: EventStream, path: str) -> None:
    """Write the Chrome-trace JSON for ``stream`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(stream), fh, indent=1)


# ----------------------------------------------------------------------
# Reconciliation: the event stream must agree with the cluster counters
# ----------------------------------------------------------------------
def reconcile(job: Any, atol: float = 1e-6) -> list[str]:
    """Cross-check a job's event stream against its cluster metrics.

    Returns a list of human-readable mismatch descriptions (empty means
    the trace reconciles).  Checks that the span-level totals — makespan,
    disk bytes, network bytes — independently reproduce the
    :class:`~repro.cluster.cluster.ClusterMetrics` the cluster counted
    during the run.  Disk and network take re-replication into account:
    the cluster charges repair reads/writes and background flows to
    machines directly, not to any task span.

    ``atol`` absorbs float truncation when tasks carry fractional byte
    demands (the default workloads are integer-valued, so the default
    tolerance is effectively exact).
    """
    stream = job.events
    metrics = job.metrics
    if stream is None:
        return ["job has no event stream"]
    problems: list[str] = []

    def check(name: str, from_events: float, from_cluster: float) -> None:
        if abs(from_events - from_cluster) > atol:
            problems.append(
                f"{name}: events={from_events!r} vs cluster={from_cluster!r}"
            )

    totals = stream.stage_totals()
    registry = stream.metrics
    re_repl = registry.get("scheduler.re_replication_bytes")

    check("makespan", stream.makespan, metrics.response_time)
    check("disk_read_bytes",
          sum(t["disk_read_bytes"] for t in totals.values()) + re_repl
          + registry.get("scheduler.spec_charged_disk_read_bytes"),
          metrics.disk_read_bytes)
    check("disk_write_bytes",
          sum(t["disk_write_bytes"] for t in totals.values()) + re_repl
          + registry.get("scheduler.spec_charged_disk_write_bytes"),
          metrics.disk_write_bytes)
    check("network_bytes",
          sum(t["net_send_bytes"] for t in totals.values())
          + registry.get("network.bytes_background")
          + registry.get("scheduler.spec_charged_network_bytes"),
          metrics.network_bytes)
    check("network_bytes (registry)",
          registry.get("network.bytes_total"), metrics.network_bytes)
    check("re_replication_bytes", re_repl, metrics.re_replication_bytes)
    return problems
