"""The job manager: stage scheduling with barrier semantics.

Surfer's job manager is deliberately simple (Appendix B): it dispatches one
task at a time to each slave and re-executes tasks lost to machine failures.
We reproduce that: each machine runs its queue serially; a stage is a
barrier (the Combine stage starts only after every Transfer finished, as
Algorithm 5 requires); failed tasks are detected after a heartbeat delay
and re-dispatched to a machine holding a surviving replica.

Timing of one task:
``disk_read + cpu + sum(network sends) + disk_write`` at the machine's
rates, with network sends charged against the topology's pair bandwidth
(co-located sends are free).
"""

from __future__ import annotations

from collections import deque

from repro.errors import SchedulingError
from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.storage import PartitionStore
from repro.runtime.tasks import StageResult, Task, TaskExecution

__all__ = ["StageScheduler", "HEARTBEAT_INTERVAL"]

# Failure-detection latency of the heartbeat protocol, simulated seconds.
HEARTBEAT_INTERVAL = 5.0


class StageScheduler:
    """Executes stages of tasks on a cluster, with optional fault plan."""

    def __init__(
        self,
        cluster: Cluster,
        fault_plan: FaultPlan | None = None,
        store: PartitionStore | None = None,
        heartbeat: float = HEARTBEAT_INTERVAL,
        pipelined: bool = False,
    ):
        """``pipelined=True`` overlaps consecutive tasks' phases on a
        machine: while one task's output streams over the network, the
        next task's partition read proceeds on the disk (flow-shop
        pipelining over the machine's disk/CPU/NIC resources).  The
        default is the paper's strictly serial job manager.  Pipelining
        does not support fault plans."""
        if pipelined and fault_plan is not None and not fault_plan.empty:
            raise SchedulingError(
                "pipelined execution does not support fault injection"
            )
        self.cluster = cluster
        self.fault_plan = fault_plan or FaultPlan()
        self.store = store
        self.heartbeat = heartbeat
        self.pipelined = pipelined
        self.executions: list[TaskExecution] = []

    # ------------------------------------------------------------------
    def run_stage(self, tasks: list[Task]) -> StageResult:
        """Run ``tasks`` to completion and barrier all machine clocks."""
        start_time = max(
            (m.clock for m in self.cluster.machines), default=0.0
        )
        self._stage_users = self._collect_resource_users(tasks)
        queues: dict[int, deque[Task]] = {}
        for task in tasks:
            queues.setdefault(task.machine, deque()).append(task)

        stage_execs: list[TaskExecution] = []
        failed: deque[Task] = deque()
        failures = 0

        for machine_id in sorted(queues):
            if self.pipelined:
                self._drain_queue_pipelined(
                    machine_id, queues[machine_id], start_time, stage_execs
                )
            else:
                self._drain_queue(machine_id, queues[machine_id],
                                  start_time, stage_execs, failed)

        # Re-execute tasks lost to failures on replica holders.
        guard = 0
        while failed:
            guard += 1
            if guard > 10000:
                raise SchedulingError("failure re-execution did not converge")
            task = failed.popleft()
            failures += 1
            new_machine = self._reassign(task)
            task = self._recovery_copy(task, new_machine)
            self._drain_queue(new_machine, deque([task]), start_time,
                              stage_execs, failed)

        end_time = max(
            (e.end for e in stage_execs), default=start_time
        )
        # Barrier: every machine waits for the stage to complete.
        for m in self.cluster.machines:
            if m.alive:
                m.clock = max(m.clock, end_time)
        self.executions.extend(stage_execs)
        return StageResult(
            executions=stage_execs,
            start_time=start_time,
            end_time=end_time,
            failures=failures,
        )

    def run_stages(self, stages: list[list[Task]]) -> list[StageResult]:
        """Run consecutive barrier stages."""
        return [self.run_stage(stage) for stage in stages]

    # ------------------------------------------------------------------
    def _drain_queue(
        self,
        machine_id: int,
        queue: deque[Task],
        stage_start: float,
        stage_execs: list[TaskExecution],
        failed: deque[Task],
    ) -> None:
        machine = self.cluster.machine(machine_id)
        kill_time = self.fault_plan.kill_time(machine_id)
        while queue:
            task = queue.popleft()
            start = max(machine.clock, stage_start, task.earliest_start)
            if kill_time is not None and start >= kill_time:
                self._mark_dead(machine_id, kill_time)
                failed.append(task)
                failed.extend(queue)
                return
            duration = self._task_duration(task, machine_id)
            end = start + duration
            if kill_time is not None and end > kill_time:
                # Task dies mid-flight; time up to the kill is wasted.
                machine.busy_time += kill_time - start
                machine.clock = kill_time
                stage_execs.append(
                    TaskExecution(task, machine_id, start, kill_time, False)
                )
                self._mark_dead(machine_id, kill_time)
                failed.append(task)
                failed.extend(queue)
                return
            self._charge(task, machine_id, duration)
            machine.clock = end
            machine.busy_time += duration
            machine.tasks_executed += 1
            stage_execs.append(
                TaskExecution(task, machine_id, start, end, True)
            )

    def _drain_queue_pipelined(
        self,
        machine_id: int,
        queue: deque[Task],
        stage_start: float,
        stage_execs: list[TaskExecution],
    ) -> None:
        """Flow-shop execution: disk, CPU and NIC are independent lanes.

        Each task runs its phases in order (read -> compute -> network ->
        write); a phase starts when both the previous phase of the same
        task and the lane's previous occupant have finished.  Total work
        (busy time, byte counters) is identical to serial execution —
        only the elapsed time shrinks.
        """
        machine = self.cluster.machine(machine_id)
        spec = machine.spec
        net = self.cluster.network
        users = getattr(self, "_stage_users", None)
        base = max(machine.clock, stage_start)
        # four lanes: read disk, CPU, NIC, write disk (the testbed
        # machines carry two disks — Appendix F)
        read_free = cpu_free = net_free = write_free = base
        for task in queue:
            arrival = max(base, task.earliest_start)
            read_time = (spec.disk_read_time(task.disk_read_bytes)
                         * task.disk_penalty)
            cpu_time = spec.cpu_time(task.cpu_ops)
            net_time = net.flows_time(machine_id, task.sends,
                                      spec.nic_bps, outbound=True,
                                      users=users)
            net_time += net.flows_time(
                machine_id, list(task.receives) + list(task.fetches),
                spec.nic_bps, outbound=False, users=users,
            )
            write_time = (spec.disk_write_time(task.disk_write_bytes)
                          * task.disk_penalty)
            read_end = max(arrival, read_free) + read_time
            cpu_end = max(read_end, cpu_free) + cpu_time
            net_end = max(cpu_end, net_free) + net_time
            write_end = max(net_end, write_free) + write_time
            read_free, cpu_free = read_end, cpu_end
            net_free, write_free = net_end, write_end
            duration = read_time + cpu_time + net_time + write_time
            self._charge(task, machine_id, duration)
            machine.clock = max(machine.clock, write_end)
            machine.busy_time += duration
            machine.tasks_executed += 1
            stage_execs.append(
                TaskExecution(task, machine_id, arrival, write_end, True)
            )

    def _collect_resource_users(self, tasks: list[Task]) -> dict:
        """Who uses each shared network resource during this stage.

        The per-resource user sets determine fair-share bandwidth: a pod
        uplink crossed by every machine degrades to the topology's
        worst-case pair bandwidth, while concentrated flows from a few
        machines get proportionally more of the uplink.
        """
        topology = self.cluster.topology
        users: dict = {}
        for task in tasks:
            for dst, nbytes in task.sends:
                if nbytes > 0 and dst != task.machine:
                    for key, __, user in topology.flow_resources(
                        task.machine, dst
                    ):
                        users.setdefault(key, set()).add(user)
            for src, nbytes in list(task.receives) + list(task.fetches):
                if nbytes > 0 and src != task.machine:
                    for key, __, user in topology.flow_resources(
                        src, task.machine
                    ):
                        users.setdefault(key, set()).add(user)
        return users

    def _task_duration(self, task: Task, machine_id: int) -> float:
        spec = self.cluster.machine(machine_id).spec
        net = self.cluster.network
        users = getattr(self, "_stage_users", None)
        duration = (
            spec.disk_read_time(task.disk_read_bytes) * task.disk_penalty
            + spec.cpu_time(task.cpu_ops)
            + spec.disk_write_time(task.disk_write_bytes)
            * task.disk_penalty
        )
        duration += net.flows_time(machine_id, task.sends, spec.nic_bps,
                                   outbound=True, users=users)
        inbound = list(task.receives) + list(task.fetches)
        duration += net.flows_time(machine_id, inbound, spec.nic_bps,
                                   outbound=False, users=users)
        return duration

    def _charge(self, task: Task, machine_id: int, duration: float) -> None:
        """Record resource counters for a successful execution."""
        machine = self.cluster.machine(machine_id)
        machine.disk_read_bytes += int(task.disk_read_bytes)
        machine.disk_write_bytes += int(task.disk_write_bytes)
        machine.cpu_ops += task.cpu_ops
        for dst, nbytes in task.sends:
            if dst != machine_id:
                self.cluster.network.transfer(machine_id, dst, int(nbytes))
                machine.bytes_sent += int(nbytes)
                self.cluster.machine(dst).bytes_received += int(nbytes)
        for src, nbytes in task.fetches:
            if src != machine_id:
                self.cluster.network.transfer(src, machine_id, int(nbytes))
                self.cluster.machine(src).bytes_sent += int(nbytes)
                machine.bytes_received += int(nbytes)

    def _mark_dead(self, machine_id: int, kill_time: float) -> None:
        machine = self.cluster.machine(machine_id)
        if machine.alive:
            machine.fail(kill_time)
            if self.store is not None:
                self.store.handle_failure(machine_id)

    def _reassign(self, task: Task) -> int:
        """Pick the machine to re-execute a failed task on."""
        now_dead = {m.machine_id for m in self.cluster.machines
                    if not m.alive}
        if self.store is not None and task.partition is not None:
            candidate = self.store.primary(task.partition)
            if candidate not in now_dead:
                return candidate
        alive = self.cluster.alive_machines()
        if not alive:
            raise SchedulingError("no machines left alive to re-execute on")
        # Least-loaded alive machine, mirroring the greedy job manager.
        return min(alive, key=lambda m: self.cluster.machine(m).clock)

    def _recovery_copy(self, task: Task, new_machine: int) -> Task:
        """Clone a failed task for re-execution.

        Combine-type tasks must re-fetch their remote inputs before
        re-running (Appendix B): the input transfers become explicit sends
        charged against the network (modeled as reads from the sources).
        Detection waits one heartbeat after the failure.
        """
        failed_machine = self.cluster.machine(task.machine)
        detect = (failed_machine.failed_at or 0.0) + self.heartbeat
        refetch = [
            (src, nbytes)
            for src, nbytes in task.input_transfers
            if src != new_machine and self.cluster.machine(src).alive
        ]
        return Task(
            name=task.name + "#retry",
            machine=new_machine,
            kind=task.kind,
            partition=task.partition,
            disk_read_bytes=task.disk_read_bytes,
            cpu_ops=task.cpu_ops,
            disk_write_bytes=task.disk_write_bytes,
            sends=list(task.sends) + refetch,
            receives=list(task.receives),
            input_transfers=list(task.input_transfers),
            earliest_start=detect,
        )
