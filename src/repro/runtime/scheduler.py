"""The job manager: stage scheduling with barrier semantics.

Surfer's job manager is deliberately simple (Appendix B): it dispatches one
task at a time to each slave and re-executes tasks lost to machine failures.
We reproduce that — each machine runs its queue serially; a stage is a
barrier (the Combine stage starts only after every Transfer finished, as
Algorithm 5 requires) — and extend it with the recovery machinery a
production job manager needs:

* **permanent kills**: failed tasks are detected after a heartbeat delay
  and re-dispatched to the least-loaded machine holding a surviving
  replica, with a bounded per-task retry budget;
* **transient faults**: the in-flight task is lost and re-dispatched like a
  kill, but the machine rejoins at the end of its outage window and keeps
  working through its remaining queue;
* **stragglers**: with ``speculation`` enabled, a task whose duration
  exceeds ``speculation_factor`` × the stage's median gets a backup copy on
  the least-loaded replica holder; the first finisher wins and the loser is
  cancelled (MapReduce-style speculative execution);
* **re-replication**: after a permanent failure the partition store
  re-creates the lost replicas on survivors and the copy traffic is charged
  to the network as background flows, so a later failure does not hit a
  degraded replica set.

All recovery actions are recorded as structured
:class:`~repro.runtime.tasks.RecoveryEvent` entries.

Timing of one task:
``disk_read + cpu + sum(network sends) + disk_write`` at the machine's
rates, with network sends charged against the topology's pair bandwidth
(co-located sends are free) and slowdown windows stretching the wall-clock
time via :meth:`FaultPlan.advance`.
"""

from __future__ import annotations

from collections import deque

from repro.errors import DataLossError, SchedulingError
from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan, Outage
from repro.cluster.storage import PartitionStore
from repro.runtime.events import EventStream, Span, wall_timer
from repro.runtime.sanitizer import Sanitizer
from repro.runtime.tasks import (
    RecoveryEvent,
    StageResult,
    Task,
    TaskExecution,
)

__all__ = ["StageScheduler", "HEARTBEAT_INTERVAL", "SPECULATION_FACTOR",
           "MAX_RETRIES"]

# Failure-detection latency of the heartbeat protocol, simulated seconds.
HEARTBEAT_INTERVAL = 5.0
# A task is a straggler once it exceeds this multiple of the stage median.
SPECULATION_FACTOR = 2.0
# Re-dispatch budget per task before the job is declared unschedulable.
MAX_RETRIES = 5


def _execution_span(e: TaskExecution) -> Span:
    """One observability span per task execution.

    ``net_send_bytes`` is the traffic this task puts on the wire (its
    non-local sends plus its remote input fetches — both directions the
    scheduler charges to the network); ``net_recv_bytes`` is the inbound
    NIC occupancy (receives plus fetches).  Counters mirror the task's
    dispatched demands; the charged fraction of a failed span is
    ``duration / planned_duration``.
    """
    task = e.task
    sends = sum(b for dst, b in task.sends if dst != e.machine)
    fetches = sum(b for src, b in task.fetches if src != e.machine)
    receives = sum(b for src, b in task.receives if src != e.machine)
    return Span(
        name=task.name,
        kind=task.kind,
        start=e.start,
        end=e.end,
        machine=e.machine,
        partition=task.partition,
        succeeded=e.succeeded,
        attempt=task.attempt,
        cpu_ops=task.cpu_ops,
        disk_read_bytes=task.disk_read_bytes,
        disk_write_bytes=task.disk_write_bytes,
        net_send_bytes=sends + fetches,
        net_recv_bytes=receives + fetches,
        planned_duration=e.planned_duration,
    )


class StageScheduler:
    """Executes stages of tasks on a cluster, with optional fault plan."""

    def __init__(
        self,
        cluster: Cluster,
        fault_plan: FaultPlan | None = None,
        store: PartitionStore | None = None,
        heartbeat: float = HEARTBEAT_INTERVAL,
        pipelined: bool = False,
        speculation: bool = False,
        speculation_factor: float = SPECULATION_FACTOR,
        max_retries: int = MAX_RETRIES,
        re_replication: bool = True,
        events: EventStream | None = None,
    ) -> None:
        """``pipelined=True`` overlaps consecutive tasks' phases on a
        machine: while one task's output streams over the network, the
        next task's partition read proceeds on the disk (flow-shop
        pipelining over the machine's disk/CPU/NIC resources).  The
        default is the paper's strictly serial job manager.  Both modes
        support the full fault plan (kills, transients, slowdowns).

        ``speculation=True`` enables MapReduce-style backup tasks for
        stragglers; ``re_replication=False`` disables background replica
        repair after permanent failures (the pre-v2 degrade-only
        behaviour)."""
        if speculation_factor <= 1.0:
            raise SchedulingError("speculation_factor must be > 1")
        if max_retries < 1:
            raise SchedulingError("max_retries must be >= 1")
        self.cluster = cluster
        self.fault_plan = fault_plan or FaultPlan()
        self.store = store
        self.heartbeat = heartbeat
        self.pipelined = pipelined
        self.speculation = speculation
        self.speculation_factor = speculation_factor
        self.max_retries = max_retries
        self.re_replication = re_replication
        self.events = events if events is not None else EventStream()
        #: SimSan hook — attached by the Surfer facade when sanitizing;
        #: observe-only, so a sanitized run stays bit-identical
        self.sanitizer: Sanitizer | None = None
        self.executions: list[TaskExecution] = []
        self.recovery_events: list[RecoveryEvent] = []
        self.re_replication_bytes = 0
        self.data_loss: str | None = None
        self._stage_users: dict = {}
        self._seen_outages: set[tuple[int, float]] = set()
        self._stage_index = 0

    # ------------------------------------------------------------------
    def run_stage(self, tasks: list[Task]) -> StageResult:
        """Run ``tasks`` to completion and barrier all machine clocks."""
        timer = wall_timer()
        start_time = max(
            (m.clock for m in self.cluster.machines), default=0.0
        )
        self._stage_users = self._collect_resource_users(tasks)
        queues: dict[int, deque[Task]] = {}
        for task in tasks:
            queues.setdefault(task.machine, deque()).append(task)

        stage_execs: list[TaskExecution] = []
        failed: deque[tuple[Task, float]] = deque()
        failures = 0
        events_before = len(self.recovery_events)
        drain = (self._drain_queue_pipelined if self.pipelined
                 else self._drain_queue)

        try:
            for machine_id in sorted(queues):
                drain(machine_id, queues[machine_id], start_time,
                      stage_execs, failed)

            # Re-execute tasks lost to failures on replica holders.
            guard = 0
            while failed:
                guard += 1
                if guard > 10000:
                    raise SchedulingError(
                        "failure re-execution did not converge"
                    )
                task, detect = failed.popleft()
                failures += 1
                if task.attempt >= self.max_retries:
                    raise SchedulingError(
                        f"task {task.name} exceeded the retry budget "
                        f"({self.max_retries} attempts)"
                    )
                new_machine = self._reassign(task)
                retry = self._clone_task(task, new_machine, detect, "#retry")
                self._event(detect, "redispatch", new_machine,
                            task=retry.name, partition=task.partition)
                drain(new_machine, deque([retry]), start_time,
                      stage_execs, failed)

            if self.speculation:
                self._speculate(stage_execs)
        except (DataLossError, SchedulingError):
            # The stage is aborting (unrecoverable data loss or an
            # exhausted retry budget), but the work already executed was
            # charged to the machines and the network — record its spans
            # so the failed (or restarted) job's trace still reconciles.
            # No barrier: the job is unwinding, not synchronizing.
            abort_end = max(
                (e.end for e in stage_execs), default=start_time
            )
            self.executions.extend(stage_execs)
            self._record_stage(tasks, stage_execs, start_time, abort_end,
                               failures, timer.elapsed())
            if self.sanitizer is not None:
                # keep the shadow counts conserved across the restart;
                # the aborted stage's events still barrier for ordering
                self.sanitizer.on_stage(stage_execs)
            raise

        end_time = max(
            (e.end for e in stage_execs), default=start_time
        )
        # Barrier: every machine waits for the stage to complete.
        for m in self.cluster.machines:
            if m.alive:
                m.clock = max(m.clock, end_time)
        self.executions.extend(stage_execs)
        self._record_stage(tasks, stage_execs, start_time, end_time,
                           failures, timer.elapsed())
        if self.sanitizer is not None:
            self.sanitizer.on_stage(stage_execs)
        return StageResult(
            executions=stage_execs,
            start_time=start_time,
            end_time=end_time,
            failures=failures,
            recovery_events=self.recovery_events[events_before:],
        )

    def run_stages(self, stages: list[list[Task]]) -> list[StageResult]:
        """Run consecutive barrier stages.

        A :class:`DataLossError` (every replica of some partition gone)
        ends the job cleanly: the stages completed so far are returned and
        :attr:`data_loss` carries the reason instead of the exception
        crashing the caller.
        """
        results: list[StageResult] = []
        for stage in stages:
            try:
                results.append(self.run_stage(stage))
            except DataLossError:
                break
        return results

    # ------------------------------------------------------------------
    def _record_stage(self, tasks: list[Task],
                      stage_execs: list[TaskExecution],
                      start_time: float, end_time: float,
                      failures: int, wall_seconds: float) -> None:
        """Emit one stage span plus one span per task execution."""
        stream = self.events
        metrics = stream.metrics
        kinds = "+".join(sorted({t.kind for t in tasks})) or "empty"
        for e in stage_execs:
            stream.span(_execution_span(e))
            if e.succeeded:
                metrics.add("scheduler.tasks_executed")
            else:
                metrics.add("scheduler.task_failures")
        metrics.add("scheduler.stages")
        metrics.add("scheduler.retries", failures)
        metrics.add("scheduler.wall_seconds", wall_seconds)
        stream.span(Span(
            name=f"stage[{self._stage_index}] {kinds}",
            kind="stage",
            start=start_time,
            end=end_time,
            wall_self_seconds=wall_seconds,
        ))
        self._stage_index += 1

    def note_recovery(self, time: float, kind: str, machine: int = -1,
                      task: str | None = None,
                      partition: int | None = None,
                      nbytes: int = 0) -> None:
        """Record a recovery action decided *outside* the scheduler.

        The job-level restart driver (checkpoint/restore in
        ``core/surfer.py``) announces its actions — ``job-restart`` above
        all — through this hook so they land on the same structured
        recovery stream, instants and ``recovery.*`` counters as the
        scheduler's own fault handling.
        """
        self._event(time, kind, machine, task, partition, nbytes)

    def _event(self, time: float, kind: str, machine: int,
               task: str | None = None, partition: int | None = None,
               nbytes: int = 0) -> None:
        self.recovery_events.append(
            RecoveryEvent(time, kind, machine, task, partition, nbytes)
        )
        self.events.instant(time, task if task is not None else kind,
                            kind, machine, partition, nbytes)
        self.events.metrics.add(f"recovery.{kind}")

    def _fail_over(self, machine_id: int, tasks: list[Task], at: float,
                   failed: deque) -> None:
        """Queue lost tasks for re-dispatch, detected one heartbeat later."""
        detect = at + self.heartbeat
        for t in tasks:
            failed.append((t, detect))
            self._event(detect, "detect", machine_id, task=t.name,
                        partition=t.partition)

    def _mark_down(self, machine_id: int, outage: Outage) -> None:
        """Record a transient outage window (once per window)."""
        key = (machine_id, outage.start)
        if key in self._seen_outages:
            return
        self._seen_outages.add(key)
        machine = self.cluster.machine(machine_id)
        machine.down_seconds += outage.end - outage.start
        machine.recoveries += 1
        self._event(outage.start, "machine-down", machine_id)
        self._event(outage.end, "machine-recovered", machine_id)

    # ------------------------------------------------------------------
    def _drain_queue(
        self,
        machine_id: int,
        queue: deque[Task],
        stage_start: float,
        stage_execs: list[TaskExecution],
        failed: deque,
    ) -> None:
        machine = self.cluster.machine(machine_id)
        plan = self.fault_plan
        while queue:
            task = queue.popleft()
            start = max(machine.clock, stage_start, task.earliest_start)
            outage = plan.next_outage(machine_id, start)
            if outage is not None and outage.start <= start:
                if outage.permanent:
                    self._mark_dead(machine_id, outage.start)
                    self._fail_over(machine_id, [task, *queue],
                                    outage.start, failed)
                    return
                # transiently down at dispatch time: the queue simply
                # waits out the outage on the machine
                self._mark_down(machine_id, outage)
                machine.clock = max(machine.clock, outage.end)
                queue.appendleft(task)
                continue
            duration = self._task_duration(task, machine_id)
            end = plan.advance(machine_id, start, duration)
            if outage is not None and end > outage.start:
                # Task dies mid-flight; time up to the outage is wasted.
                # The execution records the full dispatched duration so
                # trace analysis can prorate bytes over the partial run.
                machine.busy_time += outage.start - start
                machine.clock = outage.start
                stage_execs.append(
                    TaskExecution(task, machine_id, start,
                                  outage.start, False,
                                  planned_duration=end - start)
                )
                if outage.permanent:
                    self._mark_dead(machine_id, outage.start)
                    self._fail_over(machine_id, [task, *queue],
                                    outage.start, failed)
                    return
                # transient: the in-flight task fails over, the machine
                # rejoins at the end of the window with its queue.  The
                # clock stays at the failure point — if more work remains
                # the next dispatch waits out the window (identical
                # timing), and an emptied queue leaves no clock beyond
                # the last recorded span.
                self._mark_down(machine_id, outage)
                self._fail_over(machine_id, [task], outage.start, failed)
                continue
            self._charge(task, machine_id)
            machine.clock = end
            machine.busy_time += end - start
            machine.tasks_executed += 1
            stage_execs.append(
                TaskExecution(task, machine_id, start, end, True,
                              planned_duration=end - start)
            )

    def _drain_queue_pipelined(
        self,
        machine_id: int,
        queue: deque[Task],
        stage_start: float,
        stage_execs: list[TaskExecution],
        failed: deque,
    ) -> None:
        """Flow-shop execution: disk, CPU and NIC are independent lanes.

        Each task runs its phases in order (read -> compute -> network ->
        write); a phase starts when both the previous phase of the same
        task and the lane's previous occupant have finished.  Total work
        (busy time, byte counters) is identical to serial execution —
        only the elapsed time shrinks.  Faults use the task's full
        pipeline window [arrival, write_end): an outage inside it loses
        the in-flight task, and after a transient recovery the lanes
        restart cold at the end of the window.
        """
        machine = self.cluster.machine(machine_id)
        spec = machine.spec
        net = self.cluster.network
        plan = self.fault_plan
        users = self._stage_users
        base = max(machine.clock, stage_start)
        # four lanes: read disk, CPU, NIC, write disk (the testbed
        # machines carry two disks — Appendix F)
        read_free = cpu_free = net_free = write_free = base
        while queue:
            task = queue.popleft()
            arrival = max(base, task.earliest_start)
            outage = plan.next_outage(machine_id, arrival)
            if outage is not None and outage.start <= arrival:
                if outage.permanent:
                    self._mark_dead(machine_id, outage.start)
                    self._fail_over(machine_id, [task, *queue],
                                    outage.start, failed)
                    return
                self._mark_down(machine_id, outage)
                base = max(base, outage.end)
                read_free = max(read_free, base)
                cpu_free = max(cpu_free, base)
                net_free = max(net_free, base)
                write_free = max(write_free, base)
                machine.clock = max(machine.clock, base)
                queue.appendleft(task)
                continue
            read_time = (spec.disk_read_time(task.disk_read_bytes)
                         * task.disk_penalty)
            cpu_time = spec.cpu_time(task.cpu_ops)
            net_time = net.flows_time(machine_id, task.sends,
                                      spec.nic_bps, outbound=True,
                                      users=users)
            net_time += net.flows_time(
                machine_id, list(task.receives) + list(task.fetches),
                spec.nic_bps, outbound=False, users=users,
            )
            write_time = (spec.disk_write_time(task.disk_write_bytes)
                          * task.disk_penalty)
            read_start = max(arrival, read_free)
            read_end = plan.advance(machine_id, read_start, read_time)
            cpu_start = max(read_end, cpu_free)
            cpu_end = plan.advance(machine_id, cpu_start, cpu_time)
            net_start = max(cpu_end, net_free)
            net_end = plan.advance(machine_id, net_start, net_time)
            write_start = max(net_end, write_free)
            write_end = plan.advance(machine_id, write_start, write_time)
            if outage is not None and write_end > outage.start:
                # the pipeline stalls at the outage; the in-flight task
                # is lost along with its partial overlapped progress
                machine.busy_time += max(0.0, outage.start - arrival)
                machine.clock = max(machine.clock, outage.start)
                stage_execs.append(
                    TaskExecution(task, machine_id, arrival,
                                  outage.start, False,
                                  planned_duration=write_end - arrival)
                )
                if outage.permanent:
                    self._mark_dead(machine_id, outage.start)
                    self._fail_over(machine_id, [task, *queue],
                                    outage.start, failed)
                    return
                # the lanes restart cold after the window, but the clock
                # stays at the failure point until real work moves it —
                # an emptied queue must not leave a clock past the last
                # recorded span
                self._mark_down(machine_id, outage)
                self._fail_over(machine_id, [task], outage.start, failed)
                base = max(base, outage.end)
                read_free = cpu_free = net_free = write_free = base
                continue
            duration = ((read_end - read_start) + (cpu_end - cpu_start)
                        + (net_end - net_start) + (write_end - write_start))
            read_free, cpu_free = read_end, cpu_end
            net_free, write_free = net_end, write_end
            self._charge(task, machine_id)
            machine.clock = max(machine.clock, write_end)
            machine.busy_time += duration
            machine.tasks_executed += 1
            stage_execs.append(
                TaskExecution(task, machine_id, arrival, write_end, True,
                              planned_duration=write_end - arrival)
            )

    # ------------------------------------------------------------------
    def _collect_resource_users(self, tasks: list[Task]) -> dict:
        """Who uses each shared network resource during this stage.

        The per-resource user sets determine fair-share bandwidth: a pod
        uplink crossed by every machine degrades to the topology's
        worst-case pair bandwidth, while concentrated flows from a few
        machines get proportionally more of the uplink.
        """
        topology = self.cluster.topology
        users: dict = {}
        for task in tasks:
            for dst, nbytes in task.sends:
                if nbytes > 0 and dst != task.machine:
                    for key, __, user in topology.flow_resources(
                        task.machine, dst
                    ):
                        users.setdefault(key, set()).add(user)
            for src, nbytes in list(task.receives) + list(task.fetches):
                if nbytes > 0 and src != task.machine:
                    for key, __, user in topology.flow_resources(
                        src, task.machine
                    ):
                        users.setdefault(key, set()).add(user)
        return users

    def _task_duration(self, task: Task, machine_id: int) -> float:
        spec = self.cluster.machine(machine_id).spec
        net = self.cluster.network
        users = self._stage_users
        duration = (
            spec.disk_read_time(task.disk_read_bytes) * task.disk_penalty
            + spec.cpu_time(task.cpu_ops)
            + spec.disk_write_time(task.disk_write_bytes)
            * task.disk_penalty
        )
        duration += net.flows_time(machine_id, task.sends, spec.nic_bps,
                                   outbound=True, users=users)
        inbound = list(task.receives) + list(task.fetches)
        duration += net.flows_time(machine_id, inbound, spec.nic_bps,
                                   outbound=False, users=users)
        return duration

    def _charge(self, task: Task, machine_id: int) -> None:
        """Record resource counters for a successful execution."""
        machine = self.cluster.machine(machine_id)
        machine.disk_read_bytes += int(task.disk_read_bytes)
        machine.disk_write_bytes += int(task.disk_write_bytes)
        machine.cpu_ops += task.cpu_ops
        for dst, nbytes in task.sends:
            if dst != machine_id:
                self.cluster.network.transfer(machine_id, dst, int(nbytes))
                machine.bytes_sent += int(nbytes)
                self.cluster.machine(dst).bytes_received += int(nbytes)
        for src, nbytes in task.fetches:
            if src != machine_id:
                self.cluster.network.transfer(src, machine_id, int(nbytes))
                self.cluster.machine(src).bytes_sent += int(nbytes)
                machine.bytes_received += int(nbytes)

    # ------------------------------------------------------------------
    def _mark_dead(self, machine_id: int, kill_time: float) -> None:
        machine = self.cluster.machine(machine_id)
        if not machine.alive:
            return
        machine.fail(kill_time)
        self._event(kill_time, "machine-down", machine_id)
        if self.store is None:
            return
        try:
            self.store.handle_failure(machine_id)
        except DataLossError as exc:
            self.data_loss = str(exc)
            self._event(kill_time, "data-loss", machine_id)
            raise
        if self.re_replication:
            self._re_replicate(kill_time + self.heartbeat)

    def _re_replicate(self, now: float) -> None:
        """Re-create lost replicas in the background; charge the copies."""
        cluster = self.cluster
        for p, src, dst in self.store.re_replicate(
            cluster.alive_machines()
        ):
            nbytes = self.store.partition_nbytes(p)
            if nbytes > 0:
                cluster.network.transfer(src, dst, nbytes, background=True)
                src_m = cluster.machine(src)
                dst_m = cluster.machine(dst)
                src_m.disk_read_bytes += nbytes
                src_m.bytes_sent += nbytes
                dst_m.disk_write_bytes += nbytes
                dst_m.bytes_received += nbytes
            self.re_replication_bytes += nbytes
            self.events.metrics.add("scheduler.re_replication_bytes",
                                    nbytes)
            self._event(now, "re-replicate", dst, partition=p,
                        nbytes=nbytes)

    # ------------------------------------------------------------------
    def _reassign(self, task: Task) -> int:
        """Pick the machine to re-execute a failed task on.

        Prefers the least-loaded alive holder of the task's partition
        (after failover the store only lists survivors), falling back to
        the least-loaded alive machine — the greedy job manager's rule.
        """
        dead = {m.machine_id for m in self.cluster.machines
                if not m.alive}
        if self.store is not None and task.partition is not None:
            # replica order (primary first) breaks clock ties, so the
            # promoted survivor beats a freshly re-replicated copy
            holders = [m for m in self.store.replicas(task.partition)
                       if m not in dead]
            if holders:
                return min(holders,
                           key=lambda m: self.cluster.machine(m).clock)
        alive = self.cluster.alive_machines()
        if not alive:
            raise SchedulingError("no machines left alive to re-execute on")
        return min(alive, key=lambda m: self.cluster.machine(m).clock)

    def _clone_task(self, task: Task, new_machine: int,
                    earliest: float, suffix: str) -> Task:
        """Clone a task for re-execution or speculative backup.

        Combine-type tasks must re-fetch their remote inputs before
        re-running (Appendix B): the input transfers become explicit sends
        charged against the network (modeled as reads from the sources).
        """
        refetch = [
            (src, nbytes)
            for src, nbytes in task.input_transfers
            if src != new_machine and self.cluster.machine(src).alive
        ]
        return Task(
            name=task.name + suffix,
            machine=new_machine,
            kind=task.kind,
            partition=task.partition,
            disk_read_bytes=task.disk_read_bytes,
            cpu_ops=task.cpu_ops,
            disk_write_bytes=task.disk_write_bytes,
            sends=list(task.sends) + refetch,
            receives=list(task.receives),
            input_transfers=list(task.input_transfers),
            earliest_start=earliest,
            disk_penalty=task.disk_penalty,
            attempt=task.attempt + 1,
        )

    # ------------------------------------------------------------------
    def _speculate(self, stage_execs: list[TaskExecution]) -> None:
        """Launch backup copies for stragglers; first finisher wins.

        A machine's *final* task of the stage is a speculation candidate
        when its duration exceeds ``speculation_factor`` × the stage's
        median task duration: that is the task pinning the stage barrier,
        so rescuing it shortens the makespan.  The backup launches on the
        least-loaded alive replica holder at the moment the straggler is
        detected; whichever copy finishes first wins and the other is
        cancelled there and then.
        """
        succ = [e for e in stage_execs if e.succeeded]
        if len(succ) < 3:
            return
        durations = sorted(e.duration for e in succ)
        median = durations[len(durations) // 2]
        if median <= 0:
            return
        threshold = self.speculation_factor * median
        last: dict[int, TaskExecution] = {}
        for e in succ:
            cur = last.get(e.machine)
            if cur is None or e.end > cur.end:
                last[e.machine] = e
        candidates = [
            e for e in last.values()
            if e.duration > threshold
            and abs(e.end - self.cluster.machine(e.machine).clock) < 1e-9
        ]
        candidates.sort(key=lambda e: (e.start + threshold, e.machine))
        for e in candidates:
            self._speculate_one(e, stage_execs, threshold)

    def _speculate_one(self, e: TaskExecution,
                       stage_execs: list[TaskExecution],
                       threshold: float) -> None:
        task = e.task
        detect = e.start + threshold
        backup_machine = self._backup_machine(task, e.machine, detect)
        if backup_machine is None:
            return
        holder = self.cluster.machine(backup_machine)
        if holder.clock >= e.end:
            return  # no capacity frees up before the original finishes
        backup = self._clone_task(task, backup_machine, detect, "#spec")
        b_start = max(detect, holder.clock)
        duration = self._task_duration(backup, backup_machine)
        b_end = self.fault_plan.advance(backup_machine, b_start, duration)
        self._event(detect, "spec-launch", backup_machine,
                    task=backup.name, partition=task.partition)
        if b_end < e.end:
            # Backup wins; the original attempt is cancelled at b_end.
            self._charge(backup, backup_machine)
            holder.clock = max(holder.clock, b_end)
            holder.busy_time += b_end - b_start
            holder.tasks_executed += 1
            stage_execs.append(
                TaskExecution(backup, backup_machine, b_start, b_end, True,
                              planned_duration=b_end - b_start)
            )
            original = self.cluster.machine(e.machine)
            original.busy_time -= e.end - b_end
            original.clock = b_end
            idx = next(i for i, x in enumerate(stage_execs) if x is e)
            stage_execs[idx] = TaskExecution(
                task, e.machine, e.start, b_end, False,
                planned_duration=e.planned_duration or e.duration,
            )
            # The original was charged in full when it completed, before
            # the rescue was decided; the cancellation does not refund
            # the machine counters.  Expose that charged-but-cancelled
            # cost so span totals still reconcile with the cluster.
            m = self.events.metrics
            m.add("scheduler.spec_charged_disk_read_bytes",
                  int(task.disk_read_bytes))
            m.add("scheduler.spec_charged_disk_write_bytes",
                  int(task.disk_write_bytes))
            m.add("scheduler.spec_charged_network_bytes",
                  sum(int(b) for d, b in task.sends if d != e.machine)
                  + sum(int(b) for s, b in task.fetches if s != e.machine))
            self._event(b_end, "spec-win", backup_machine,
                        task=backup.name, partition=task.partition)
            self._event(b_end, "spec-cancel", e.machine, task=task.name,
                        partition=task.partition)
        else:
            # Original wins; the backup is cancelled when it finishes.
            # The wasted backup time occupies the holder but moves no
            # bytes (the copy never commits its output).
            holder.clock = max(holder.clock, e.end)
            holder.busy_time += e.end - b_start
            stage_execs.append(
                TaskExecution(backup, backup_machine, b_start, e.end,
                              False, planned_duration=b_end - b_start)
            )
            self._event(e.end, "spec-cancel", backup_machine,
                        task=backup.name, partition=task.partition)

    def _backup_machine(self, task: Task, exclude: int,
                        now: float) -> int | None:
        """Least-loaded alive replica holder to run a backup copy on."""
        plan = self.fault_plan
        candidates: list[int] = []
        if self.store is not None and task.partition is not None:
            candidates = [
                m for m in self.store.replicas(task.partition)
                if m != exclude and self.cluster.machine(m).alive
                and not plan.is_down(m, now)
            ]
        if not candidates:
            candidates = [
                m for m in self.cluster.alive_machines()
                if m != exclude and not plan.is_down(m, now)
            ]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda m: self.cluster.machine(m).clock)
