"""Job monitoring: progress estimation and resource-utilization reports.

The paper's job manager "records resource utilization and estimates the
execution progress of the job", surfaced through the demo GUI (Appendix
B).  This module is the text-mode equivalent: a :class:`JobMonitor`
summarizes a finished (or injected-fault) run's per-machine utilization,
per-stage progress and stragglers, and :func:`estimate_progress` answers
"how far along is the job at time t" from the execution trace.

The monitor is built on the run's :class:`~repro.runtime.events.Span`
stream when one is available (``JobMonitor.from_events``): the spans
carry the same windows as the legacy ``TaskExecution`` view plus the
cost counters, so the report can include the metrics-registry section.
Both views share every analysis below.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass

import numpy as np

from repro.runtime.events import EventStream
from repro.runtime.tasks import RecoveryEvent, TaskExecution

__all__ = ["MachineUtilization", "JobMonitor", "estimate_progress",
           "failed_task_seconds"]


def _kind(e: Any) -> str:
    task = getattr(e, "task", None)
    return task.kind if task is not None else e.kind


@dataclass(frozen=True)
class MachineUtilization:
    """One machine's share of a run."""

    machine: int
    busy_seconds: float
    utilization: float
    tasks: int
    failed_tasks: int


def estimate_progress(executions: list[TaskExecution],
                      now: float) -> float:
    """Fraction of dispatched task-seconds finished by time ``now``.

    Mirrors the job manager's progress estimate: every execution the
    scheduler has dispatched by ``now`` contributes its duration to the
    denominator; completed work counts fully and work still running at
    ``now`` counts its elapsed share.  Two classes are excluded:

    * executions that *start after* ``now`` — the job manager cannot
      know about work it has not dispatched yet, and counting it made
      early progress under-report;
    * executions already *failed* by ``now`` — their seconds were spent
      but produced nothing (the retry redoes the work), so counting them
      as completed let a run report 100 % progress and then fail.
      Failed-but-still-running work is indistinguishable from running
      work and counts until its failure time.  The wasted seconds are
      reported separately by :func:`failed_task_seconds`.
    """
    total = 0.0
    done = 0.0
    completed = 0
    for e in executions:
        if e.start > now:
            continue  # not dispatched yet at time `now`
        if e.end <= now and not e.succeeded:
            continue  # known-failed: wasted work, not progress
        total += e.duration
        if e.end <= now:
            done += e.duration
            completed += 1
        else:
            done += now - e.start
    if total <= 0:
        # no measurable task-seconds: either only zero-duration work
        # completed (done), or nothing has been dispatched/succeeded yet
        if completed:
            return 1.0
        return 1.0 if not executions else 0.0
    return min(1.0, done / total)


def failed_task_seconds(executions: list[TaskExecution],
                        now: float = float("inf")) -> float:
    """Task-seconds lost to executions that had failed by ``now``."""
    return sum(e.duration for e in executions
               if e.end <= now and not e.succeeded)


class JobMonitor:
    """Post-hoc analysis of a job's execution trace.

    ``recovery_events`` (optional) is the scheduler's structured stream
    of fault-recovery actions; when given, the report includes a
    recovery section (detections, re-dispatches, speculative
    launches/cancels, re-replication traffic).  ``events`` (optional) is
    the run's :class:`~repro.runtime.events.EventStream`; when given,
    ``executions`` may be omitted (the machine-level spans stand in) and
    the report gains the metrics-registry section.
    """

    def __init__(self, executions: list[TaskExecution] | None = None,
                 recovery_events: list[RecoveryEvent] | None = None,
                 events: EventStream | None = None) -> None:
        if executions is None:
            executions = events.task_spans() if events is not None else []
        self.executions = list(executions)
        self.recovery_events = list(recovery_events or [])
        self.events = events

    @classmethod
    def from_events(cls, events: EventStream,
                    recovery_events: list[RecoveryEvent] | None = None,
                    ) -> "JobMonitor":
        """A monitor over an event stream's machine-level spans."""
        return cls(recovery_events=recovery_events, events=events)

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.executions), default=0.0)

    def machine_utilization(self) -> list[MachineUtilization]:
        """Per-machine busy time, utilization and failure counts."""
        span = self.makespan
        per_machine: dict[int, dict] = {}
        for e in self.executions:
            rec = per_machine.setdefault(
                e.machine, {"busy": 0.0, "tasks": 0, "failed": 0}
            )
            rec["busy"] += e.duration
            rec["tasks"] += 1
            if not e.succeeded:
                rec["failed"] += 1
        return [
            MachineUtilization(
                machine=m,
                busy_seconds=rec["busy"],
                utilization=(rec["busy"] / span if span > 0 else 0.0),
                tasks=rec["tasks"],
                failed_tasks=rec["failed"],
            )
            for m, rec in sorted(per_machine.items())
        ]

    def stragglers(self, threshold: float = 1.5) -> list[int]:
        """Machines whose busy time exceeds ``threshold`` × the median."""
        stats = self.machine_utilization()
        if not stats:
            return []
        busy = np.array([s.busy_seconds for s in stats])
        median = float(np.median(busy))
        if median <= 0:
            return []
        return [s.machine for s in stats
                if s.busy_seconds > threshold * median]

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate duration and counts per task kind."""
        stages: dict[str, dict[str, float]] = {}
        for e in self.executions:
            rec = stages.setdefault(
                _kind(e), {"tasks": 0.0, "seconds": 0.0, "failed": 0.0}
            )
            rec["tasks"] += 1
            rec["seconds"] += e.duration
            if not e.succeeded:
                rec["failed"] += 1
        return stages

    def failed_seconds(self) -> float:
        """Total task-seconds lost to failed executions."""
        return failed_task_seconds(self.executions)

    def recovery_summary(self) -> dict[str, int]:
        """Count of recovery events per kind (empty without fault plan)."""
        counts: dict[str, int] = {}
        for ev in self.recovery_events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    def re_replication_bytes(self) -> int:
        """Background replica-repair traffic recorded during the run."""
        return sum(ev.nbytes for ev in self.recovery_events
                   if ev.kind == "re-replicate")

    def restart_summary(self) -> str | None:
        """One line describing job-level restarts, or None without any.

        E.g. ``"restarted 2× from checkpoint @ superstep 12"`` — the
        count is the number of ``job-restart`` recovery events and the
        provenance comes from the latest one (restarts always resume from
        the newest committed checkpoint).
        """
        restarts = [ev for ev in self.recovery_events
                    if ev.kind == "job-restart"]
        if not restarts:
            return None
        last = restarts[-1]
        provenance = last.task if last.task else "from checkpoint"
        return f"restarted {len(restarts)}× {provenance}"

    def report(self) -> str:
        """Human-readable utilization report (the GUI's text sibling)."""
        lines = [f"job makespan: {self.makespan:,.1f}s simulated"]
        lines.append("stage summary:")
        for kind, rec in sorted(self.stage_summary().items()):
            lines.append(
                f"  {kind:10s} {int(rec['tasks']):4d} tasks  "
                f"{rec['seconds']:10,.1f}s"
                + (f"  ({int(rec['failed'])} failed)"
                   if rec["failed"] else "")
            )
        failed = self.failed_seconds()
        if failed:
            lines.append(f"wasted (failed-task) time: {failed:,.1f}s")
        stats = self.machine_utilization()
        if stats:
            utils = [s.utilization for s in stats]
            lines.append(
                f"machine utilization: min {min(utils):.0%} / "
                f"median {float(np.median(utils)):.0%} / "
                f"max {max(utils):.0%}"
            )
        stragglers = self.stragglers()
        if stragglers:
            lines.append(f"stragglers (>1.5x median busy): {stragglers}")
        restarted = self.restart_summary()
        if restarted:
            lines.append(restarted)
        summary = self.recovery_summary()
        if summary:
            lines.append(
                "recovery events: "
                + ", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
            )
            repair = self.re_replication_bytes()
            if repair:
                lines.append(
                    f"re-replication traffic: {repair:,} bytes"
                )
        if self.events is not None and self.events.metrics.counters:
            lines.append(self.events.metrics.report())
        return "\n".join(lines)
