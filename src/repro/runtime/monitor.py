"""Job monitoring: progress estimation and resource-utilization reports.

The paper's job manager "records resource utilization and estimates the
execution progress of the job", surfaced through the demo GUI (Appendix
B).  This module is the text-mode equivalent: a :class:`JobMonitor`
summarizes a finished (or injected-fault) run's per-machine utilization,
per-stage progress and stragglers, and :func:`estimate_progress` answers
"how far along is the job at time t" from the execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.tasks import RecoveryEvent, TaskExecution

__all__ = ["MachineUtilization", "JobMonitor", "estimate_progress"]


@dataclass(frozen=True)
class MachineUtilization:
    """One machine's share of a run."""

    machine: int
    busy_seconds: float
    utilization: float
    tasks: int
    failed_tasks: int


def estimate_progress(executions: list[TaskExecution], now: float) -> float:
    """Fraction of planned task-seconds finished by time ``now``.

    Mirrors the job manager's progress estimate: every task contributes
    its duration; tasks still running at ``now`` contribute their elapsed
    share.
    """
    total = sum(e.duration for e in executions)
    if total <= 0:
        return 1.0
    done = 0.0
    for e in executions:
        if e.end <= now:
            done += e.duration
        elif e.start < now:
            done += now - e.start
    return min(1.0, done / total)


class JobMonitor:
    """Post-hoc analysis of a job's execution trace.

    ``recovery_events`` (optional) is the scheduler's structured stream of
    fault-recovery actions; when given, the report includes a recovery
    section (detections, re-dispatches, speculative launches/cancels,
    re-replication traffic).
    """

    def __init__(self, executions: list[TaskExecution],
                 recovery_events: list[RecoveryEvent] | None = None):
        self.executions = list(executions)
        self.recovery_events = list(recovery_events or [])

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.executions), default=0.0)

    def machine_utilization(self) -> list[MachineUtilization]:
        """Per-machine busy time, utilization and failure counts."""
        span = self.makespan
        per_machine: dict[int, dict] = {}
        for e in self.executions:
            rec = per_machine.setdefault(
                e.machine, {"busy": 0.0, "tasks": 0, "failed": 0}
            )
            rec["busy"] += e.duration
            rec["tasks"] += 1
            if not e.succeeded:
                rec["failed"] += 1
        return [
            MachineUtilization(
                machine=m,
                busy_seconds=rec["busy"],
                utilization=(rec["busy"] / span if span > 0 else 0.0),
                tasks=rec["tasks"],
                failed_tasks=rec["failed"],
            )
            for m, rec in sorted(per_machine.items())
        ]

    def stragglers(self, threshold: float = 1.5) -> list[int]:
        """Machines whose busy time exceeds ``threshold`` × the median."""
        stats = self.machine_utilization()
        if not stats:
            return []
        busy = np.array([s.busy_seconds for s in stats])
        median = float(np.median(busy))
        if median <= 0:
            return []
        return [s.machine for s in stats
                if s.busy_seconds > threshold * median]

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate duration and counts per task kind."""
        stages: dict[str, dict[str, float]] = {}
        for e in self.executions:
            rec = stages.setdefault(
                e.task.kind, {"tasks": 0.0, "seconds": 0.0, "failed": 0.0}
            )
            rec["tasks"] += 1
            rec["seconds"] += e.duration
            if not e.succeeded:
                rec["failed"] += 1
        return stages

    def recovery_summary(self) -> dict[str, int]:
        """Count of recovery events per kind (empty without fault plan)."""
        counts: dict[str, int] = {}
        for ev in self.recovery_events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    def re_replication_bytes(self) -> int:
        """Background replica-repair traffic recorded during the run."""
        return sum(ev.nbytes for ev in self.recovery_events
                   if ev.kind == "re-replicate")

    def report(self) -> str:
        """Human-readable utilization report (the GUI's text sibling)."""
        lines = [f"job makespan: {self.makespan:,.1f}s simulated"]
        lines.append("stage summary:")
        for kind, rec in sorted(self.stage_summary().items()):
            lines.append(
                f"  {kind:10s} {int(rec['tasks']):4d} tasks  "
                f"{rec['seconds']:10,.1f}s"
                + (f"  ({int(rec['failed'])} failed)"
                   if rec["failed"] else "")
            )
        stats = self.machine_utilization()
        if stats:
            utils = [s.utilization for s in stats]
            lines.append(
                f"machine utilization: min {min(utils):.0%} / "
                f"median {float(np.median(utils)):.0%} / "
                f"max {max(utils):.0%}"
            )
        stragglers = self.stragglers()
        if stragglers:
            lines.append(f"stragglers (>1.5x median busy): {stragglers}")
        summary = self.recovery_summary()
        if summary:
            lines.append(
                "recovery events: "
                + ", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
            )
            repair = self.re_replication_bytes()
            if repair:
                lines.append(
                    f"re-replication traffic: {repair:,} bytes"
                )
        return "\n".join(lines)
