"""Checkpoint/restore for job-level restart (Pregel-style recovery).

The in-job machinery (replica promotion, task re-execution, background
re-replication) absorbs most faults, but when *every* replica of a
partition is gone the job used to be discarded with a
:class:`~repro.errors.DataLossError`.  This module supplies the standard
answer of the Pregel/superstep era: snapshot the job's per-partition
vertex state at configurable superstep (propagation) or round
(MapReduce) boundaries into the replicated storage layer, and let the
driver restart from the latest *committed* checkpoint instead of
failing.

Consistency model
-----------------
A checkpoint is taken at a barrier — after ``app.update`` applied step
``k`` and before step ``k + 1`` dispatches any task — so the snapshot is
a consistent cut by construction.  It is *committed* (becomes eligible
for restore) only after its write stage ran to completion; a checkpoint
interrupted by the very fault it should protect against is discarded.
Everything after the restored step is recomputed, not replayed: the
UDF-purity and determinism discipline (PRs 2/4/5) is what makes the
recomputation bit-identical to the fault-free run.

Cost model
----------
Checkpoint writes and restores run as regular scheduler stages built
here (``kind="checkpoint"`` / ``kind="restore"``): every byte flows
through the machines' disk rates and the topology's network model, gets
a span in the event stream and counts toward ``checkpoint.*`` counters —
so ``reconcile()`` holds for checkpointed, restarted and failed runs
alike, and the recovery overhead is visible in ``repro profile``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import JobError
from repro.cluster.storage import PartitionStore
from repro.graph.io import VALUE_BYTES
from repro.runtime.events import EventStream
from repro.runtime.tasks import Task

__all__ = ["CheckpointPolicy", "Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to checkpoint and how hard to try restarting.

    ``interval`` is in supersteps (propagation) or rounds (MapReduce);
    ``0`` disables checkpointing entirely — the pre-checkpoint behaviour
    where any unabsorbed data loss fails the job.  ``backoff_base`` is
    the *simulated* wait before the first restart; each further attempt
    multiplies it by ``backoff_factor`` (exponential backoff, mirroring
    how a cloud job manager paces itself while the cluster stabilizes).
    """

    interval: int = 0
    max_restarts: int = 3
    backoff_base: float = 30.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise JobError("checkpoint interval must be >= 0")
        if self.max_restarts < 0:
            raise JobError("max_restarts must be >= 0")
        if self.backoff_base < 0:
            raise JobError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise JobError("backoff_factor must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def backoff(self, attempt: int) -> float:
        """Simulated seconds to wait before restart ``attempt`` (1-based)."""
        if attempt < 1:
            raise JobError("restart attempts are counted from 1")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class Checkpoint:
    """One committed snapshot: the state as of completed step ``step``."""

    step: int
    state: Any
    nbytes: int


class CheckpointStore:
    """Committed snapshots of a job's vertex state, plus the stage
    builders that price their writes and restores.

    The store itself is driver-side metadata; the snapshot *bytes* live
    (in the model) on the replica holders of each partition, written
    through the same :class:`~repro.cluster.storage.PartitionStore`
    replica sets as the graph partitions themselves.
    """

    def __init__(self, policy: CheckpointPolicy, pgraph: Any,
                 events: EventStream) -> None:
        if not policy.enabled:
            raise JobError("CheckpointStore needs an enabled policy")
        self.policy = policy
        self.pgraph = pgraph
        self.events = events
        self.checkpoints: list[Checkpoint] = []

    # -- snapshots -----------------------------------------------------
    def latest(self) -> Checkpoint | None:
        """The newest committed checkpoint, or None before the first."""
        return self.checkpoints[-1] if self.checkpoints else None

    def snapshot_state(self, state: Any) -> Any:
        """Deep-copy the job state, sharing the immutable graph.

        ``VertexState`` carries a reference to the partitioned graph;
        seeding the deepcopy memo with it (and the underlying graph)
        keeps the snapshot O(state), not O(graph), and preserves the
        engines' identity assumptions on the graph object.
        """
        pgraph = self.pgraph
        # deepcopy memo keys are object ids by contract; nothing is
        # routed or hashed on them
        memo: dict[int, Any] = {id(pgraph): pgraph}  # repro: ignore[DET001] -- deepcopy memo key
        graph = getattr(pgraph, "graph", None)
        if graph is not None:
            memo[id(graph)] = graph  # repro: ignore[DET001] -- deepcopy memo key
        return copy.deepcopy(state, memo)

    def state_nbytes(self, partition: int) -> int:
        """Modeled snapshot footprint of one partition's vertex values."""
        return int(self.pgraph.partition_size(partition)) * VALUE_BYTES

    def commit(self, step: int, state: Any, nbytes: int) -> None:
        """Register a checkpoint whose write stage ran to completion."""
        self.checkpoints.append(Checkpoint(step, state, nbytes))
        metrics = self.events.metrics
        metrics.add("checkpoint.checkpoints")
        metrics.add("checkpoint.bytes_written", nbytes)

    # -- stage builders ------------------------------------------------
    def write_tasks(self, store: PartitionStore,
                    assignment: Any, step: int) -> tuple[list[Task], int]:
        """The checkpoint-write stage for one barrier, and its bytes.

        Per partition, the machine that just computed the step (its
        assigned replica holder) writes the snapshot locally and streams
        a copy to every other replica holder; per receiving machine one
        aggregated task charges the inbound NIC time and the replica
        disk writes.  Returns ``(tasks, total_bytes_written)`` — all
        replica copies included — for :meth:`commit`.
        """
        tasks: list[Task] = []
        recv_bytes: dict[int, int] = {}
        recv_flows: dict[int, list[tuple[int, float]]] = {}
        total = 0
        for p in range(store.num_partitions):
            nbytes = self.state_nbytes(p)
            writer = int(assignment[p])
            holders = store.replicas(p)
            sends = [(h, float(nbytes)) for h in holders if h != writer]
            for h, b in sends:
                recv_bytes[h] = recv_bytes.get(h, 0) + int(b)
                recv_flows.setdefault(h, []).append((writer, b))
            tasks.append(Task(
                name=f"ckpt[{step}] p{p}",
                machine=writer,
                kind="checkpoint",
                partition=p,
                disk_write_bytes=float(nbytes),
                sends=sends,
            ))
            total += nbytes * len(holders)
        for machine in sorted(recv_bytes):
            tasks.append(Task(
                name=f"ckpt[{step}] recv m{machine}",
                machine=machine,
                kind="checkpoint",
                disk_write_bytes=float(recv_bytes[machine]),
                receives=list(recv_flows[machine]),
            ))
        return tasks, total

    def restore_tasks(self, store: PartitionStore, assignment: Any,
                      restored: Sequence[int],
                      copies: Sequence[tuple[int, int, int]],
                      ready: float) -> tuple[list[Task], int, int]:
        """The restore stage after a job-level restart.

        Three kinds of work, all released no earlier than ``ready`` (the
        backoff deadline): partitions whose every replica died are
        reloaded from the durable tier onto their new holder (a local
        read + write of the partition plus its checkpointed state);
        replica-repair ``copies`` fetched from the surviving primary;
        and per-machine aggregated reads of the checkpointed state the
        resumed supersteps will start from.  Returns
        ``(tasks, state_bytes_read, durable_bytes_read)``.
        """
        tasks: list[Task] = []
        durable = 0
        for p in restored:
            holder = store.primary(p)
            nbytes = store.partition_nbytes(p) + self.state_nbytes(p)
            tasks.append(Task(
                name=f"restore-durable p{p}",
                machine=holder,
                kind="restore",
                partition=p,
                disk_read_bytes=float(nbytes),
                disk_write_bytes=float(nbytes),
                earliest_start=ready,
            ))
            durable += nbytes
        for p, src, dst in copies:
            nbytes = store.partition_nbytes(p) + self.state_nbytes(p)
            tasks.append(Task(
                name=f"restore-copy p{p} m{src}->m{dst}",
                machine=dst,
                kind="restore",
                partition=p,
                disk_write_bytes=float(nbytes),
                fetches=[(src, float(nbytes))],
                earliest_start=ready,
            ))
        state_reads: dict[int, int] = {}
        for p in range(store.num_partitions):
            machine = int(assignment[p])
            state_reads[machine] = (state_reads.get(machine, 0)
                                    + self.state_nbytes(p))
        state_total = 0
        for machine in sorted(state_reads):
            tasks.append(Task(
                name=f"restore-state m{machine}",
                machine=machine,
                kind="restore",
                disk_read_bytes=float(state_reads[machine]),
                earliest_start=ready,
            ))
            state_total += state_reads[machine]
        return tasks, state_total, durable
