"""SimSan — the opt-in runtime sanitizer for simulated BSP runs.

``repro check`` proves invariants statically; SimSan proves the ones
only an execution can witness.  Attached to a
:class:`~repro.runtime.scheduler.StageScheduler` (via
``Surfer.run_propagation(..., sanitize=True)``, the ``--sanitize`` CLI
flag, or ``REPRO_SANITIZE=1`` in the environment for test runs), it
checks, as the job runs:

* **BSP write races** — a vector-clock detector over the simulated
  task events: within a superstep no write to a partition's state may
  be concurrent with another machine's access to the same partition.
  Machines only synchronize at stage barriers, so two task events on
  different machines inside one stage are concurrent by construction;
  the barrier joins all clocks, ordering later stages after earlier
  ones.
* **Shadow counter conservation** — the sanitizer independently counts
  task executions, failures and stages from the raw execution records
  and, at *every* superstep boundary (not only at job end), requires
  the metrics registry and the full :func:`~repro.runtime.events
  .reconcile` contract to agree with the cluster's own counters.
* **Span push/pop discipline** — every machine-level span must be
  framed by its stage span, every work stage by its iteration/round
  span (:meth:`EventStream.verify_frame_discipline`).
* **Read-only served views** — shard-backed graphs must hand out
  ``writeable=False`` arrays; a writable view is reported before the
  job runs a single stage.

SimSan is strictly observe-only: it mints no counters, emits no spans
and mutates no runtime state, so a sanitized run is bit-identical to
an unsanitized one — the CI smoke tier asserts exactly that.  Any
violation raises :class:`~repro.errors.SanitizerError` at the boundary
where it was detected, while the failing schedule is still in hand.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import SanitizerError
from repro.runtime.events import EventStream, reconcile
from repro.runtime.tasks import TaskExecution

__all__ = [
    "TaskEvent",
    "VectorClockRaceDetector",
    "Sanitizer",
    "sanitize_enabled",
]

#: task kind -> the partition-state access it models.  Transfer/map
#: tasks read their partition and emit messages; combine/reduce tasks
#: write the partition's state; restore rewrites it from a snapshot.
OP_BY_KIND: dict[str, str] = {
    "transfer": "read",
    "map": "read",
    "checkpoint": "read",
    "combine": "write",
    "reduce": "write",
    "restore": "write",
}


def sanitize_enabled(flag: bool | None = None) -> bool:
    """Resolve the sanitizer opt-in: explicit flag, else environment."""
    if flag is not None:
        return flag
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


@dataclass(frozen=True)
class TaskEvent:
    """One partition-state access, stamped with its vector clock."""

    machine: int
    partition: int
    op: str
    name: str
    #: the recording machine's vector clock, as sorted (machine, count)
    clock: tuple[tuple[int, int], ...]

    def happens_before(self, other: "TaskEvent") -> bool:
        """Vector-clock order: every component <= , at least one <."""
        mine = dict(self.clock)
        theirs = dict(other.clock)
        keys = sorted(set(mine) | set(theirs))
        le = all(mine.get(k, 0) <= theirs.get(k, 0) for k in keys)
        return le and mine != theirs

    def concurrent_with(self, other: "TaskEvent") -> bool:
        return (not self.happens_before(other)
                and not other.happens_before(self))


class VectorClockRaceDetector:
    """Happens-before tracking over simulated BSP task events.

    Each machine carries a vector clock seeded from the last barrier
    join; recording an event ticks the machine's own component.  At a
    :meth:`barrier` all buffered events are checked pairwise — two
    events race when they touch the same partition from different
    machines, at least one is a write, and neither happens-before the
    other — then every clock joins to the elementwise maximum, so all
    later events are ordered after the barrier.
    """

    def __init__(self) -> None:
        self._joined: dict[int, int] = {}
        self._clocks: dict[int, dict[int, int]] = {}
        self._pending: list[TaskEvent] = []
        self.events_recorded = 0
        self.barriers = 0

    def record(self, machine: int, partition: int, op: str,
               name: str) -> None:
        """Record one access of ``partition`` by ``machine``."""
        if op not in ("read", "write"):
            raise SanitizerError(f"unknown access op {op!r}")
        vc = self._clocks.setdefault(machine, dict(self._joined))
        vc[machine] = vc.get(machine, 0) + 1
        self._pending.append(TaskEvent(
            machine, partition, op, name, tuple(sorted(vc.items()))))
        self.events_recorded += 1

    def barrier(self) -> list[str]:
        """Race-check the buffered events, then join all clocks."""
        races: list[str] = []
        pending = self._pending
        for i, a in enumerate(pending):
            for b in pending[i + 1:]:
                if (a.partition == b.partition
                        and a.machine != b.machine
                        and ("write" in (a.op, b.op))
                        and a.concurrent_with(b)):
                    races.append(
                        f"partition {a.partition}: {a.op} by "
                        f"{a.name!r} (machine {a.machine}) races "
                        f"{b.op} by {b.name!r} (machine {b.machine})")
        joined = dict(self._joined)
        for vc in self._clocks.values():
            for machine, count in vc.items():
                joined[machine] = max(joined.get(machine, 0), count)
        self._joined = joined
        self._clocks = {}
        self._pending = []
        self.barriers += 1
        return races


class Sanitizer:
    """The per-job SimSan instance a scheduler carries when enabled."""

    def __init__(self, atol: float = 1e-6) -> None:
        self.atol = atol
        self.detector = VectorClockRaceDetector()
        self.stages_checked = 0
        self.supersteps_checked = 0
        self._shadow_executed = 0
        self._shadow_failed = 0

    # -- hooks ---------------------------------------------------------
    def on_stage(self, executions: Sequence[TaskExecution]) -> None:
        """Called by the scheduler after each stage is recorded.

        Feeds the race detector with the stage's *successful*
        partition accesses (a failed or speculatively-cancelled copy
        never commits its output) and barriers it, and grows the
        shadow execution counts the superstep check audits.
        """
        for e in executions:
            if e.succeeded:
                self._shadow_executed += 1
            else:
                self._shadow_failed += 1
            if e.succeeded and e.task.partition is not None:
                self.detector.record(
                    e.machine, e.task.partition,
                    OP_BY_KIND.get(e.task.kind, "read"), e.task.name)
        races = self.detector.barrier()
        self.stages_checked += 1
        if races:
            self._fail("BSP write race within a superstep", races)

    def on_superstep(self, events: EventStream, cluster: Any) -> None:
        """Called by an engine at every superstep boundary."""
        registry = events.metrics
        problems: list[str] = []
        shadow = (
            ("scheduler.tasks_executed", float(self._shadow_executed)),
            ("scheduler.task_failures", float(self._shadow_failed)),
            ("scheduler.stages", float(self.stages_checked)),
        )
        for name, expected in shadow:
            got = registry.get(name)
            if abs(got - expected) > self.atol:
                problems.append(
                    f"{name}: registry={got!r} vs shadow={expected!r}")
        problems.extend(reconcile(
            _JobView(events, cluster.metrics()), atol=self.atol))
        problems.extend(events.verify_frame_discipline(self.atol))
        self.supersteps_checked += 1
        if problems:
            self._fail(
                f"superstep {self.supersteps_checked} boundary check "
                "failed", problems)

    def check_graph(self, graph: Any) -> None:
        """Writable-view audit for shard-backed graphs (pre-run)."""
        store = getattr(graph, "store", None)
        if store is None:
            return
        problems: list[str] = []
        for s in range(int(store.num_shards)):
            for label, arr in (
                (f"shard_indices({s})", store.shard_indices(s)),
                (f"shard_indptr({s})", store.shard_indptr(s)),
            ):
                flags = getattr(arr, "flags", None)
                if flags is not None and flags.writeable:
                    problems.append(
                        f"{label} serves a writable view")
        indptr = getattr(graph, "out_indptr", None)
        flags = getattr(indptr, "flags", None)
        if flags is not None and flags.writeable:
            problems.append("out_indptr is a writable shared array")
        if problems:
            self._fail("shard store hands out writable views", problems)

    # -- failure -------------------------------------------------------
    def _fail(self, what: str, details: Sequence[str]) -> None:
        lines = "\n  ".join(details)
        raise SanitizerError(f"SimSan: {what}:\n  {lines}")


class _JobView:
    """Minimal ``job`` shim for :func:`reconcile` mid-run."""

    __slots__ = ("events", "metrics")

    def __init__(self, events: EventStream, metrics: Any) -> None:
        self.events = events
        self.metrics = metrics
