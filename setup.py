"""Setuptools shim so `pip install -e .` works without PEP 517 wheels."""
from setuptools import setup

setup()
