#!/usr/bin/env python
"""Social-influence analysis: a product-recommendation campaign (RS + NR).

The scenario the paper's introduction motivates: a social network wants to
know how a product recommendation spreads and who the influential users
are.  We seed a small adopter set, cascade recommendations with the RS
application, rank users with NR, and then measure how much better the
campaign performs when seeded at the top-ranked users instead of random
ones — all running on the simulated partitioned cluster.

Run:  python examples/social_influence.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import NetworkRankingPropagation, RecommenderPropagation
from repro.bench.workloads import SCALED_LINK_BPS, make_cluster
from repro.cluster.topology import t1
from repro.core import Surfer
from repro.graph import composite_social_graph


class SeededRecommender(RecommenderPropagation):
    """RS variant whose initial adopters are an explicit vertex set."""

    def __init__(self, seeds: np.ndarray, probability: float = 0.25):
        super().__init__(probability=probability)
        self._seeds = seeds

    def setup(self, pgraph):
        state = super().setup(pgraph)
        state.values[:] = False
        state.values[self._seeds] = True
        return state


def run_campaign(surfer: Surfer, seeds: np.ndarray,
                 iterations: int = 4) -> int:
    app = SeededRecommender(seeds)
    job = surfer.run_propagation(app, iterations=iterations)
    return int(job.result.sum())


def main() -> None:
    graph = composite_social_graph(
        num_communities=24, community_size=256, k=8, seed=11
    )
    cluster = make_cluster(t1(16, SCALED_LINK_BPS))
    surfer = Surfer(graph, cluster, num_parts=32, seed=11)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 1. Find the influencers: 5 iterations of network ranking.
    nr = surfer.run_propagation(NetworkRankingPropagation(), iterations=5)
    ranks = nr.result
    print(f"network ranking done in {nr.response_time:,.0f}s (simulated)")

    # 2. Two campaigns with the same budget of 50 seed users.
    budget = 50
    rng = np.random.default_rng(0)
    random_seeds = rng.choice(graph.num_vertices, budget, replace=False)
    top_seeds = np.argsort(ranks)[::-1][:budget]

    random_reach = run_campaign(surfer, random_seeds)
    top_reach = run_campaign(surfer, top_seeds)

    print(f"\ncampaign reach after 4 rounds (budget {budget} seeds):")
    print(f"  random seeding      : {random_reach:5d} adopters")
    print(f"  influencer seeding  : {top_reach:5d} adopters "
          f"({top_reach / max(random_reach, 1):.2f}x)")

    # influencers reach at least as far as random seeds
    assert top_reach >= random_reach


if __name__ == "__main__":
    main()
