#!/usr/bin/env python
"""Cloud-deployment planner: how much does bandwidth awareness buy you?

An operations-flavored use of the library: given a graph workload and a
set of candidate cluster topologies, compare the ParMetis-like oblivious
deployment against the bandwidth-aware one — both the partitioning time
(Table 1's experiment) and the steady-state processing time (Figure 6's)
— and print a deployment recommendation.

Run:  python examples/topology_planner.py
"""

from __future__ import annotations

from repro.apps import NetworkRankingPropagation, TwoHopFriendsPropagation
from repro.bench.workloads import (
    PAPER_GRAPH_BYTES,
    SCALED_LINK_BPS,
    Workload,
    make_cluster,
)
from repro.cluster.spec import GIGABIT_BPS
from repro.cluster.topology import t1, t2, t3
from repro.core.bandwidth_aware import (
    build_machine_tree,
    random_machine_tree,
)
from repro.core.partition_cost import simulate_partitioning_time
from repro.graph import composite_social_graph


def main() -> None:
    graph = composite_social_graph(
        num_communities=24, community_size=256, k=8, seed=3
    )
    print(f"workload graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges\n")

    candidates = {
        "flat pod (T1)": (t1(16, SCALED_LINK_BPS),
                          t1(16, GIGABIT_BPS)),
        "2 pods (T2)": (t2(2, 1, 16, SCALED_LINK_BPS),
                        t2(2, 1, 16, GIGABIT_BPS)),
        "mixed hardware (T3)": (t3(16, SCALED_LINK_BPS),
                                t3(16, GIGABIT_BPS)),
    }

    header = (f"{'topology':22s} {'part. aware/oblivious (h)':>28s} "
              f"{'NR aware/oblivious (s)':>25s} {'TFL aware (s)':>14s}")
    print(header)
    print("-" * len(header))
    for name, (run_topo, cost_topo) in candidates.items():
        # one-off partitioning cost at the paper's 128 GB scale
        aware_tree = build_machine_tree(cost_topo, 5, seed=3)
        oblivious_tree = random_machine_tree(cost_topo, 5, seed=3)
        part_aware = simulate_partitioning_time(
            PAPER_GRAPH_BYTES, aware_tree, cost_topo).total_seconds
        part_obl = simulate_partitioning_time(
            PAPER_GRAPH_BYTES, oblivious_tree, cost_topo).total_seconds

        # steady-state processing under both layouts
        results = {}
        for layout in ("bandwidth-aware", "oblivious"):
            wl = Workload(graph=graph, cluster=make_cluster(run_topo),
                          num_parts=32, seed=3)
            surfer = wl.surfer(layout)
            nr = surfer.run_propagation(NetworkRankingPropagation(),
                                        iterations=2)
            results[layout] = nr.response_time
            if layout == "bandwidth-aware":
                tfl = surfer.run_propagation(
                    TwoHopFriendsPropagation(select_ratio=0.1)
                )
                tfl_time = tfl.response_time
        print(f"{name:22s} "
              f"{part_aware / 3600:10.2f} / {part_obl / 3600:.2f}"
              f"{results['bandwidth-aware']:16,.0f} / "
              f"{results['oblivious']:,.0f}"
              f"{tfl_time:15,.0f}")

    print("\nreading: bandwidth-aware partitioning pays off most on the "
          "pod-structured topology,\nboth for the one-off partitioning "
          "job and for every subsequent processing job.")


if __name__ == "__main__":
    main()
