#!/usr/bin/env python
"""GraphFlow analytics: the high-level layer the paper promised.

The paper's Appendix B announces "a high-level language on top of
MapReduce and propagation"; `repro.lang` is that layer.  This example
writes a three-step analytics pipeline — rank the network, find each
vertex's component, then histogram rank mass per component — without
touching a single partition, message or UDF class.

Run:  python examples/dataflow_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.workloads import SCALED_LINK_BPS, make_cluster
from repro.cluster.topology import t1
from repro.core import Surfer
from repro.graph import composite_social_graph
from repro.lang import GraphFlow, min_label_flow, pagerank_flow


def main() -> None:
    graph = composite_social_graph(
        num_communities=12, community_size=128, k=6, seed=31
    ).symmetrized()
    surfer = Surfer(graph, make_cluster(t1(8, SCALED_LINK_BPS)),
                    num_parts=16, seed=31)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Step pipelines compose: reuse the library flows, then add a custom
    # aggregate over both of their outputs.
    flow = pagerank_flow(iterations=4)
    cc = min_label_flow()
    flow.initializers.update(cc.initializers)
    flow.steps.extend(cc.steps)
    flow.aggregate(
        key=lambda u, ctx: int(ctx["label"][u]),
        value=lambda u, ctx: float(ctx["rank"][u]),
        reduce=sum,
        into="rank_by_component",
    )

    results, metrics = flow.run(surfer, collect_metrics=True)
    total_time = sum(m.response_time for m in metrics)
    print(f"pipeline of {len(metrics)} jobs finished in "
          f"{total_time:,.0f}s simulated\n")

    by_component = sorted(results["rank_by_component"].items(),
                          key=lambda kv: -kv[1])
    print("rank mass per component (top 5):")
    for label, mass in by_component[:5]:
        members = int(np.count_nonzero(results["label"] == label))
        print(f"  component {label:5d}: {mass:.4f} rank mass, "
              f"{members} members")

    total = sum(results["rank_by_component"].values())
    assert abs(total - results["rank"].sum()) < 1e-9


if __name__ == "__main__":
    main()
