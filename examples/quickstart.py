#!/usr/bin/env python
"""Quickstart: partition a graph, deploy Surfer, run PageRank both ways.

Builds the paper's synthetic social graph, deploys it on a simulated
32-machine cloud with bandwidth-aware partitioning, and ranks the network
with the propagation primitive — then does the same job with MapReduce to
show the efficiency and programmability gap the paper is about.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import NetworkRankingMapReduce, NetworkRankingPropagation
from repro.bench.workloads import SCALED_LINK_BPS, make_cluster
from repro.cluster.topology import t2
from repro.core import Surfer
from repro.graph import composite_social_graph, pagerank


def main() -> None:
    # 1. A social graph: 16 R-MAT communities glued with 5 % rewires.
    graph = composite_social_graph(
        num_communities=16, community_size=256, k=8, seed=7
    )
    print(f"graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    # 2. A cloud: 16 machines in 2 pods — cross-pod links are 32x slower.
    cluster = make_cluster(t2(2, 1, 16, SCALED_LINK_BPS))

    # 3. Deploy Surfer: bandwidth-aware partitioning into 32 partitions.
    surfer = Surfer(graph, cluster, num_parts=32,
                    layout="bandwidth-aware", seed=7)
    print(f"partitioned: inner-edge ratio "
          f"{surfer.pgraph.inner_edge_ratio:.1%}, "
          f"inner-vertex ratio {surfer.pgraph.inner_vertex_ratio:.1%}")

    # 4. Network ranking with the propagation primitive (Algorithm 1).
    prop = surfer.run_propagation(NetworkRankingPropagation(),
                                  iterations=5)
    print(f"\npropagation NR: response {prop.response_time:,.0f}s "
          f"(simulated), network "
          f"{prop.metrics.network_bytes / 1024:,.0f} KB")

    # 5. The same job with the home-grown MapReduce (Algorithm 2).
    mr = surfer.run_mapreduce(NetworkRankingMapReduce(), rounds=5)
    print(f"mapreduce   NR: response {mr.response_time:,.0f}s "
          f"(simulated), network "
          f"{mr.metrics.network_bytes / 1024:,.0f} KB")
    print(f"-> propagation speedup "
          f"{mr.response_time / prop.response_time:.1f}x, "
          f"{1 - prop.metrics.network_bytes / mr.metrics.network_bytes:.0%}"
          f" less network I/O")

    # 6. Both engines agree with the single-machine oracle.
    oracle = pagerank(graph, num_iterations=5)
    assert np.allclose(prop.result, oracle)
    assert np.allclose(mr.result, oracle)
    top = np.argsort(oracle)[::-1][:5]
    print("\ntop-5 ranked vertices:",
          ", ".join(f"{v} ({oracle[v]:.2e})" for v in top))


if __name__ == "__main__":
    main()
