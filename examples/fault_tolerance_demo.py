#!/usr/bin/env python
"""Fault-tolerance demo: kill a slave machine mid-PageRank and recover.

Reproduces the paper's Figure 10 scenario interactively: a 3-iteration
network-ranking job runs on 16 machines; partway through, one machine
dies.  The job manager detects the failure by heartbeat loss, the GFS-like
store promotes surviving replicas, the lost tasks re-execute elsewhere
(Combine tasks re-fetch their inputs), and the job completes with the
exact same result at a modest overhead.

Run:  python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import NetworkRankingPropagation
from repro.bench.workloads import SCALED_LINK_BPS, make_cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.topology import t1
from repro.core import Surfer
from repro.graph import composite_social_graph
from repro.runtime.trace import io_rate_timeline


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Tiny ASCII intensity plot of an I/O-rate timeline."""
    if values.size == 0:
        return ""
    blocks = " .:-=+*#%@"
    if values.size > width:
        chunk = int(np.ceil(values.size / width))
        values = np.array([values[i:i + chunk].mean()
                           for i in range(0, values.size, chunk)])
    top = values.max() or 1.0
    return "".join(blocks[int(v / top * (len(blocks) - 1))]
                   for v in values)


def main() -> None:
    graph = composite_social_graph(
        num_communities=16, community_size=256, k=8, seed=23
    )

    def fresh_surfer() -> Surfer:
        cluster = make_cluster(t1(16, SCALED_LINK_BPS))
        return Surfer(graph, cluster, num_parts=32, seed=23)

    app = NetworkRankingPropagation()

    # Normal execution first, to know when to strike.
    surfer = fresh_surfer()
    normal = surfer.run_propagation(app, iterations=3)
    kill_time = 0.3 * normal.response_time
    victim = int(surfer.store.primary(0))

    # Now the same job with machine `victim` dying mid-run.
    surfer = fresh_surfer()
    plan = FaultPlan().add_kill(victim, kill_time)
    faulty = surfer.run_propagation(app, iterations=3, fault_plan=plan)

    assert np.allclose(normal.result, faulty.result), "results must match"
    overhead = faulty.response_time / normal.response_time - 1
    lost = sum(1 for e in faulty.executions if not e.succeeded)
    retried = sum(1 for e in faulty.executions
                  if e.task.name.endswith("#retry"))

    print(f"victim machine      : {victim} "
          f"(killed at t={kill_time:,.0f}s)")
    print(f"normal response     : {normal.response_time:,.0f}s")
    print(f"recovered response  : {faulty.response_time:,.0f}s "
          f"(+{overhead:.1%} overhead; paper reports ~10%)")
    print(f"tasks lost mid-run  : {lost}, re-executed: {retried}")
    print("results identical   : yes\n")

    bucket = normal.response_time / 60
    for label, job in (("normal ", normal), ("faulty ", faulty)):
        __, rates = io_rate_timeline(job.executions, bucket)
        print(f"{label} disk-I/O rate |{sparkline(rates)}|")
    __, victim_rates = io_rate_timeline(faulty.executions, bucket,
                                        machine=victim)
    print(f"victim  disk-I/O rate |{sparkline(victim_rates)}|  "
          "(goes silent after the kill)")


if __name__ == "__main__":
    main()
