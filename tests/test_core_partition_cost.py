"""Unit tests for the Table-1 partitioning elapsed-time model."""

import pytest

from repro.cluster.topology import t1, t2, t3
from repro.core.bandwidth_aware import build_machine_tree, random_machine_tree
from repro.core.partition_cost import (
    PartitioningCostModel,
    simulate_partitioning_time,
)

GB = 1024**3


class TestCostModel:
    def test_flat_topology_method_independent(self):
        topo = t1(16)
        aware = build_machine_tree(topo, 5, seed=0)
        random_tree = random_machine_tree(topo, 5, seed=0)
        a = simulate_partitioning_time(10 * GB, aware, topo)
        b = simulate_partitioning_time(10 * GB, random_tree, topo)
        assert a.total_seconds == pytest.approx(b.total_seconds, rel=0.01)

    def test_aware_beats_random_on_tree(self):
        topo = t2(2, 1, 16)
        aware = build_machine_tree(topo, 5, seed=0)
        random_tree = random_machine_tree(topo, 5, seed=0)
        a = simulate_partitioning_time(10 * GB, aware, topo)
        b = simulate_partitioning_time(10 * GB, random_tree, topo)
        assert a.total_seconds < 0.7 * b.total_seconds

    def test_time_scales_with_graph_size(self):
        topo = t2(2, 1, 16)
        tree = build_machine_tree(topo, 5, seed=0)
        small = simulate_partitioning_time(1 * GB, tree, topo)
        large = simulate_partitioning_time(4 * GB, tree, topo)
        assert large.total_seconds == pytest.approx(
            4 * small.total_seconds, rel=0.01
        )

    def test_level_breakdown_sums(self):
        topo = t1(8)
        tree = build_machine_tree(topo, 4, seed=0)
        report = simulate_partitioning_time(GB, tree, topo)
        assert sum(report.level_seconds) == pytest.approx(
            report.total_seconds
        )
        assert len(report.level_seconds) == 4

    def test_components_positive(self):
        topo = t2(4, 1, 16)
        tree = build_machine_tree(topo, 4, seed=0)
        report = simulate_partitioning_time(GB, tree, topo)
        assert report.compute_seconds > 0
        assert report.exchange_seconds > 0
        assert report.redistribution_seconds > 0

    def test_no_redistribution_option(self):
        topo = t2(2, 1, 8)
        tree = build_machine_tree(topo, 3, seed=0)
        with_r = simulate_partitioning_time(GB, tree, topo)
        without = simulate_partitioning_time(
            GB, tree, topo,
            PartitioningCostModel(include_redistribution=False),
        )
        assert without.total_seconds < with_r.total_seconds
        assert without.redistribution_seconds == 0.0

    def test_more_pods_cost_more_for_random(self):
        """Deeper unevenness hurts the oblivious partitioner more."""
        sizes = {}
        for pods in (2, 4):
            topo = t2(pods, 1, 16)
            tree = random_machine_tree(topo, 5, seed=0)
            sizes[pods] = simulate_partitioning_time(
                10 * GB, tree, topo
            ).total_seconds
        assert sizes[4] > sizes[2] * 0.9
