"""Tests for incremental graph construction and relabeling."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, relabel_edges
from repro.graph.digraph import Graph
from repro.graph.generators import ring


class TestGraphBuilder:
    def test_incremental_equals_batch(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1).add_edge(1, 2).add_edges([(2, 3), (3, 0)])
        assert builder.build() == ring(4)
        assert builder.num_edges_added == 4

    def test_chunked_equals_single(self, small_graph):
        builder = GraphBuilder(num_vertices=small_graph.num_vertices)
        edges = small_graph.edges()
        half = edges.shape[0] // 2
        builder.add_edges(edges[:half]).add_edges(edges[half:])
        assert builder.build() == small_graph

    def test_add_graph_with_offset(self):
        builder = GraphBuilder()
        builder.add_graph(ring(3)).add_graph(ring(3), offset=3)
        g = builder.build()
        assert g.num_vertices == 6
        assert g.has_edge(0, 1) and g.has_edge(3, 4)
        assert not g.has_edge(2, 3)

    def test_empty_build(self):
        assert GraphBuilder().build().num_vertices == 0
        assert GraphBuilder(num_vertices=5).build().num_vertices == 5

    def test_dedup_and_loops(self):
        builder = GraphBuilder().add_edges([(0, 0), (0, 1), (0, 1)])
        g = builder.build(dedup=True, drop_self_loops=True)
        assert g.num_edges == 1

    def test_rejects_bad_edges(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edges([(0, -1)])
        with pytest.raises(GraphError):
            GraphBuilder(num_vertices=2).add_edge(0, 5)
        with pytest.raises(GraphError):
            GraphBuilder().add_edges(np.zeros((2, 3)))

    def test_builder_reusable(self):
        builder = GraphBuilder().add_edge(0, 1)
        first = builder.build()
        builder.add_edge(1, 2)
        second = builder.build()
        assert first.num_edges == 1
        assert second.num_edges == 2


class TestRelabel:
    def test_string_ids(self):
        arr, table = relabel_edges([("alice", "bob"), ("bob", "carol")])
        assert table == ["alice", "bob", "carol"]
        assert arr.tolist() == [[0, 1], [1, 2]]

    def test_sparse_int_ids(self):
        arr, table = relabel_edges([(1000, 5), (5, 70000)])
        g = Graph.from_edges(arr)
        assert g.num_vertices == 3
        assert table[int(arr[0][0])] == 1000

    def test_empty(self):
        arr, table = relabel_edges([])
        assert arr.shape == (0, 2)
        assert table == []
