"""SimSan: the opt-in runtime sanitizer.

The vector-clock detector must flag a deliberately racy synthetic
schedule and stay silent on a properly barriered one; the sanitizer
hooks must catch corrupted counters, broken span framing and writable
shard views; and a sanitized end-to-end run must be bit-identical to an
unsanitized one (modulo the real-time wall counters, which differ
between *any* two runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.surfer import Surfer
from repro.apps import NetworkRankingPropagation, NetworkRankingMapReduce
from repro.cluster.faults import FaultPlan
from repro.errors import SanitizerError
from repro.graph.store import ShardBackedGraph, build_shard_store
from repro.graph.stream import stream_rmat
from repro.runtime.events import EventStream, Span
from repro.runtime.sanitizer import (
    OP_BY_KIND,
    Sanitizer,
    TaskEvent,
    VectorClockRaceDetector,
    sanitize_enabled,
)
from repro.runtime.tasks import Task, TaskExecution

from tests.conftest import make_test_cluster


def execution(machine, kind, partition, *, succeeded=True, start=0.0,
              end=1.0):
    task = Task(name=f"{kind}[{partition}]@{machine}", machine=machine,
                kind=kind, partition=partition)
    return TaskExecution(task=task, machine=machine, start=start,
                         end=end, succeeded=succeeded)


# ---------------------------------------------------------------------------
# vector clocks
# ---------------------------------------------------------------------------

class TestTaskEvent:
    def test_happens_before_is_componentwise(self):
        a = TaskEvent(0, 1, "write", "a", ((0, 1),))
        b = TaskEvent(0, 1, "write", "b", ((0, 2),))
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.concurrent_with(b)

    def test_incomparable_clocks_are_concurrent(self):
        a = TaskEvent(0, 1, "write", "a", ((0, 1),))
        b = TaskEvent(1, 1, "write", "b", ((1, 1),))
        assert a.concurrent_with(b)


class TestVectorClockRaceDetector:
    def test_unbarriered_write_write_races(self):
        det = VectorClockRaceDetector()
        det.record(0, 5, "write", "combine[5]@0")
        det.record(1, 5, "write", "combine[5]@1")
        races = det.barrier()
        assert len(races) == 1
        assert "partition 5" in races[0]

    def test_write_read_races(self):
        det = VectorClockRaceDetector()
        det.record(0, 5, "write", "combine[5]@0")
        det.record(1, 5, "read", "transfer[5]@1")
        assert det.barrier()

    def test_concurrent_reads_do_not_race(self):
        det = VectorClockRaceDetector()
        det.record(0, 5, "read", "transfer[5]@0")
        det.record(1, 5, "read", "transfer[5]@1")
        assert det.barrier() == []

    def test_distinct_partitions_do_not_race(self):
        det = VectorClockRaceDetector()
        det.record(0, 5, "write", "combine[5]@0")
        det.record(1, 6, "write", "combine[6]@1")
        assert det.barrier() == []

    def test_same_machine_is_program_ordered(self):
        det = VectorClockRaceDetector()
        det.record(0, 5, "write", "first")
        det.record(0, 5, "write", "second")
        assert det.barrier() == []

    def test_barrier_orders_later_accesses(self):
        det = VectorClockRaceDetector()
        det.record(0, 5, "write", "combine[5]@0")
        assert det.barrier() == []
        # after the join, machine 1's access inherits machine 0's tick
        det.record(1, 5, "write", "combine[5]@1")
        assert det.barrier() == []
        assert det.barriers == 2
        assert det.events_recorded == 2

    def test_unknown_op_rejected(self):
        det = VectorClockRaceDetector()
        with pytest.raises(SanitizerError):
            det.record(0, 5, "mutate", "x")


# ---------------------------------------------------------------------------
# sanitizer stage hook
# ---------------------------------------------------------------------------

class TestOnStage:
    def test_deliberately_racy_schedule_flagged(self):
        # two machines both combine (write) partition 3 in one stage —
        # a schedule the real planner must never produce
        san = Sanitizer()
        with pytest.raises(SanitizerError, match="BSP write race"):
            san.on_stage([
                execution(0, "combine", 3),
                execution(1, "combine", 3),
            ])

    def test_partition_parallel_stage_clean(self):
        san = Sanitizer()
        san.on_stage([execution(m, "combine", m) for m in range(4)])
        assert san.stages_checked == 1

    def test_failed_copy_does_not_commit_an_access(self):
        # a speculation loser / failed attempt never writes its output,
        # so it must not race the winning copy
        san = Sanitizer()
        san.on_stage([
            execution(0, "combine", 3),
            execution(1, "combine", 3, succeeded=False),
        ])

    def test_shadow_counts_grow(self):
        san = Sanitizer()
        san.on_stage([
            execution(0, "transfer", 0),
            execution(1, "transfer", 1, succeeded=False),
        ])
        assert san._shadow_executed == 1
        assert san._shadow_failed == 1

    def test_op_kind_mapping(self):
        assert OP_BY_KIND["combine"] == "write"
        assert OP_BY_KIND["reduce"] == "write"
        assert OP_BY_KIND["restore"] == "write"
        assert OP_BY_KIND["transfer"] == "read"
        assert OP_BY_KIND["map"] == "read"


# ---------------------------------------------------------------------------
# superstep boundary: shadow counters + reconciliation
# ---------------------------------------------------------------------------

class TestOnSuperstep:
    def test_corrupted_task_counter_caught(self):
        san = Sanitizer()
        events = EventStream()
        # registry claims 5 executions the sanitizer never witnessed
        events.metrics.add("scheduler.tasks_executed", 5.0)
        cluster = make_test_cluster(2)
        with pytest.raises(SanitizerError,
                           match="scheduler.tasks_executed"):
            san.on_superstep(events, cluster)

    def test_conserved_counters_pass(self):
        san = Sanitizer()
        events = EventStream()
        cluster = make_test_cluster(2)
        san.on_superstep(events, cluster)
        assert san.supersteps_checked == 1


# ---------------------------------------------------------------------------
# span frame discipline
# ---------------------------------------------------------------------------

class TestFrameDiscipline:
    @staticmethod
    def work(start, end, machine=0):
        return Span(name=f"combine[0]@{machine}", kind="combine",
                    start=start, end=end, machine=machine)

    def test_framed_stage_clean(self):
        ev = EventStream()
        ev.span(self.work(0.0, 1.0))
        ev.span(Span("stage[0] combine", "stage", 0.0, 1.0))
        ev.span(Span("iteration[0]", "iteration", 0.0, 1.0))
        assert ev.verify_frame_discipline() == []

    def test_task_outside_stage_window_flagged(self):
        ev = EventStream()
        ev.span(self.work(0.0, 2.0))
        ev.span(Span("stage[0] combine", "stage", 0.0, 1.0))
        ev.span(Span("iteration[0]", "iteration", 0.0, 1.0))
        assert ev.verify_frame_discipline()

    def test_stage_outside_iteration_flagged(self):
        ev = EventStream()
        ev.span(self.work(0.0, 1.0))
        ev.span(Span("stage[0] combine", "stage", 0.0, 1.0))
        ev.span(Span("iteration[0]", "iteration", 0.5, 1.0))
        assert ev.verify_frame_discipline()

    def test_trailing_unframed_task_flagged(self):
        ev = EventStream()
        ev.span(self.work(0.0, 1.0))
        assert ev.verify_frame_discipline()


# ---------------------------------------------------------------------------
# read-only served views
# ---------------------------------------------------------------------------

class TestCheckGraph:
    @pytest.fixture()
    def shard_graph(self, tmp_path):
        stream = stream_rmat(8, edge_factor=6, seed=2010, chunk_size=509)
        store = build_shard_store(stream, tmp_path / "s", 3)
        return ShardBackedGraph(store)

    def test_store_views_are_read_only(self, shard_graph):
        Sanitizer().check_graph(shard_graph)
        assert not shard_graph.out_indptr.flags.writeable
        store = shard_graph.store
        for s in range(store.num_shards):
            assert not store.shard_indices(s).flags.writeable
            assert not store.shard_indptr(s).flags.writeable

    def test_multi_shard_range_is_read_only(self, shard_graph):
        out = shard_graph.out_indices_range(0, shard_graph.num_edges)
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0] = 1

    def test_writable_view_reported(self, shard_graph):
        writable = np.asarray(shard_graph.out_indptr).copy()
        shard_graph.out_indptr = writable
        with pytest.raises(SanitizerError, match="out_indptr"):
            Sanitizer().check_graph(shard_graph)

    def test_plain_graph_has_nothing_to_audit(self, tiny_graph):
        Sanitizer().check_graph(tiny_graph)  # no store attr: no-op


# ---------------------------------------------------------------------------
# opt-in plumbing + end-to-end bit identity
# ---------------------------------------------------------------------------

class TestEnablement:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_enabled(True)
        assert not sanitize_enabled(False)

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(None)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled(None)
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize_enabled(None)
        # the flag still overrides a set environment
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert not sanitize_enabled(False)


def _strip_wall(snapshot):
    """Drop the real-time overhead counters that differ between any
    two runs (simulated metrics must match exactly)."""
    return {k: v for k, v in snapshot.items() if "wall" not in k}


class TestBitIdentity:
    def _run(self, graph, sanitize, fault_plan=None):
        surfer = Surfer(graph, make_test_cluster(4), num_parts=8, seed=3)
        return surfer.run_propagation(
            NetworkRankingPropagation(), iterations=3, sanitize=sanitize,
            fault_plan=fault_plan)

    def test_propagation_identical(self, tiny_graph):
        plain = self._run(tiny_graph, sanitize=False)
        sanitized = self._run(tiny_graph, sanitize=True)
        assert not sanitized.failed
        np.testing.assert_array_equal(plain.result, sanitized.result)
        assert (_strip_wall(plain.events.metrics.snapshot())
                == _strip_wall(sanitized.events.metrics.snapshot()))
        assert plain.metrics.response_time == sanitized.metrics.response_time

    def test_faulted_run_identical(self, tiny_graph):
        def plan():
            return FaultPlan().add_kill(2, 0.3)

        plain = self._run(tiny_graph, sanitize=False, fault_plan=plan())
        sanitized = self._run(tiny_graph, sanitize=True, fault_plan=plan())
        assert not sanitized.failed
        np.testing.assert_array_equal(plain.result, sanitized.result)
        assert (_strip_wall(plain.events.metrics.snapshot())
                == _strip_wall(sanitized.events.metrics.snapshot()))

    def test_mapreduce_identical(self, tiny_graph):
        def run(sanitize):
            surfer = Surfer(tiny_graph, make_test_cluster(4),
                            num_parts=8, seed=3)
            return surfer.run_mapreduce(NetworkRankingMapReduce(),
                                        rounds=2, sanitize=sanitize)

        plain, sanitized = run(False), run(True)
        assert not sanitized.failed
        np.testing.assert_array_equal(plain.result, sanitized.result)
        assert (_strip_wall(plain.events.metrics.snapshot())
                == _strip_wall(sanitized.events.metrics.snapshot()))

    def test_sanitizer_actually_observed_the_run(self, tiny_graph):
        surfer = Surfer(tiny_graph, make_test_cluster(4), num_parts=8,
                        seed=3)
        job = surfer.run_propagation(NetworkRankingPropagation(),
                                     iterations=2, sanitize=True)
        assert not job.failed
        # the hook path is live, not silently detached
        assert job.events.metrics.get("scheduler.tasks_executed") > 0
