"""Unit tests for the bench harness, LoC counting and workloads."""

import pytest

from repro.apps import NetworkRankingPropagation
from repro.bench.harness import (
    ExperimentTable,
    format_bytes,
    format_seconds,
    format_value,
)
from repro.bench.loc import (
    PAPER_TABLE4,
    count_udf_lines,
    method_body_lines,
)
from repro.bench.workloads import (
    cached_bisection,
    standard_graph,
    standard_workload,
    topology_suite,
)


class TestExperimentTable:
    def test_add_and_cell(self):
        t = ExperimentTable("T", ["a", "b"])
        t.add_row("r1", [1, 2])
        assert t.cell("r1", "b") == 2

    def test_rejects_wrong_width(self):
        t = ExperimentTable("T", ["a"])
        with pytest.raises(ValueError):
            t.add_row("r", [1, 2])

    def test_missing_row(self):
        t = ExperimentTable("T", ["a"])
        with pytest.raises(KeyError):
            t.cell("nope", "a")

    def test_render_contains_everything(self):
        t = ExperimentTable("Title", ["col"])
        t.add_row("row", [3.14])
        t.notes.append("a note")
        text = t.render()
        assert "Title" in text and "row" in text and "a note" in text

    def test_formatters(self):
        assert format_seconds(30) == "30.0s"
        assert format_seconds(600) == "10.0min"
        assert format_seconds(7200) == "2.00h"
        assert format_bytes(512) == "512B"
        assert "KB" in format_bytes(2048)
        assert format_value(3.0) == "3"
        assert format_value(12345.6) == "1.23e+04"


class TestLocCounting:
    def test_counts_body_lines_only(self):
        class Sample:
            def method(self):
                """Docstring not counted."""
                # comment not counted
                a = 1

                return a

        assert method_body_lines(Sample, "method") == 2

    def test_inherited_methods_count_zero(self):
        class Base:
            def method(self):
                return 1

        class Child(Base):
            pass

        assert method_body_lines(Child, "method") == 0

    def test_missing_method(self):
        class Empty:
            pass

        assert method_body_lines(Empty, "anything") == 0

    def test_app_udfs_counted(self):
        count = count_udf_lines(NetworkRankingPropagation, "propagation")
        assert 1 <= count <= 30

    def test_paper_table_rows_complete(self):
        for engine, counts in PAPER_TABLE4.items():
            assert set(counts) == {"VDD", "NR", "RS", "RLG", "TC", "TFL"}


class TestWorkloads:
    def test_standard_graph_memoized(self):
        assert standard_graph() is standard_graph()

    def test_cached_bisection_identity(self):
        g = standard_graph()
        a = cached_bisection(g, 16, 1)
        b = cached_bisection(g, 16, 1)
        assert a is b

    def test_workload_surfer_cached(self):
        wl = standard_workload(num_machines=8, num_parts=16)
        assert wl.surfer("oblivious") is wl.surfer("oblivious")

    def test_topology_suite_complete(self):
        suite = topology_suite(16)
        assert set(suite) == {"T1", "T2(2,1)", "T2(4,1)", "T2(4,2)", "T3"}
        for topo in suite.values():
            assert topo.num_machines == 16
