"""Unit tests for PartitionedGraph and the vertex-id encoding."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.core.partitioned import PartitionedGraph, VertexEncoding
from repro.graph.digraph import Graph
from repro.graph.generators import ring
from repro.partitioning.baselines import chunk_partition


def make_pg() -> PartitionedGraph:
    # 0,1 in part 0; 2,3 in part 1.  Edges: 0->1 inner, 1->2 cross,
    # 2->3 inner, 3->0 cross.
    g = ring(4)
    parts = np.array([0, 0, 1, 1])
    return PartitionedGraph(g, parts, 2)


class TestStructure:
    def test_cross_edges(self):
        pg = make_pg()
        assert pg.num_cross_edges == 2
        assert pg.inner_edge_ratio == 0.5

    def test_boundary_vertices(self):
        pg = make_pg()
        # every vertex of the 4-ring touches a cross edge
        assert pg.boundary_mask.all()
        assert pg.inner_vertex_ratio == 0.0

    def test_inner_vertices(self):
        g = Graph.from_edges([(0, 1), (1, 0), (2, 3)], num_vertices=4)
        pg = PartitionedGraph(g, np.array([0, 0, 1, 1]), 2)
        assert pg.inner_vertex_ratio == 1.0
        assert pg.is_inner(0)

    def test_boundary_tables_match_paper_structures(self):
        pg = make_pg()
        assert pg.boundary_tables[0] == {0, 1}
        assert pg.boundary_tables[1] == {2, 3}

    def test_cross_dest_maps(self):
        pg = make_pg()
        # partition 0's cross edge 1->2 targets vertex 2 in partition 1
        assert pg.cross_dest_maps[0] == {2: 1}
        assert pg.cross_dest_maps[1] == {0: 0}

    def test_partition_edges(self):
        pg = make_pg()
        src, dst = pg.partition_edges(0)
        assert sorted(zip(src, dst)) == [(0, 1), (1, 2)]

    def test_partition_bytes_positive(self):
        pg = make_pg()
        assert pg.partition_bytes(0) > 0
        assert pg.partition_bytes(0) == pg.partition_bytes(1)

    def test_validate(self, small_graph):
        parts = chunk_partition(small_graph, 4)
        pg = PartitionedGraph(small_graph, parts, 4)
        pg.validate()

    def test_partition_of(self):
        pg = make_pg()
        assert pg.partition_of(0) == 0
        assert pg.partition_of(3) == 1

    def test_ivr_consistent_with_boundary(self, small_graph):
        parts = chunk_partition(small_graph, 4)
        pg = PartitionedGraph(small_graph, parts, 4)
        assert pg.inner_vertex_ratio == pytest.approx(
            1 - pg.boundary_mask.mean()
        )


class TestVertexEncoding:
    def test_consecutive_ranges(self):
        parts = np.array([1, 0, 1, 0, 2])
        enc = VertexEncoding(parts, 3)
        # partition 0 owns encoded ids 0..1, partition 1 ids 2..3, etc.
        for old in range(5):
            new = enc.encode(old)
            assert enc.partition_of(new) == parts[old]
            assert enc.decode(new) == old

    def test_offsets(self):
        parts = np.array([0, 0, 1, 2, 2, 2])
        enc = VertexEncoding(parts, 3)
        assert list(enc.offsets) == [0, 2, 3, 6]

    def test_roundtrip_permutation(self, small_graph):
        parts = chunk_partition(small_graph, 4)
        enc = VertexEncoding(parts, 4)
        ids = np.arange(small_graph.num_vertices)
        assert np.array_equal(enc.new_to_old[enc.old_to_new], ids)

    def test_encode_graph_isomorphic(self):
        g = ring(6)
        parts = np.array([0, 1, 0, 1, 0, 1])
        enc = VertexEncoding(parts, 2)
        encoded = enc.encode_graph(g)
        assert encoded.num_edges == g.num_edges
        for u, v in g.iter_edges():
            assert encoded.has_edge(enc.encode(u), enc.encode(v))

    def test_partition_lookup_out_of_range(self):
        enc = VertexEncoding(np.array([0, 1]), 2)
        with pytest.raises(PartitioningError):
            enc.partition_of(5)

    def test_encoding_from_pgraph(self):
        pg = make_pg()
        enc = pg.encoding()
        assert enc.partition_of(enc.encode(2)) == 1
