"""Vectorized MapReduce fast path: hash parity, scalar-vs-array
equivalence, combiner accounting, and routing determinism.

The scalar per-record path is the oracle: the array path must reproduce
its outputs, shuffle counters and task costs *bit for bit* — in both
combiner modes (see docs/COST_MODEL.md for the contract).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.apps import (
    DegreeDistributionMapReduce,
    NetworkRankingMapReduce,
    ReverseLinkGraphMapReduce,
)
from repro.core.surfer import Surfer
from repro.errors import JobError
from repro.graph.generators import composite_social_graph
from repro.hashing import stable_hash, stable_hash_array
from repro.mapreduce.api import MapReduceApp
from repro.mapreduce.engine import reducer_of
from repro.runtime.events import reconcile
from tests.conftest import make_test_cluster

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


# ----------------------------------------------------------------------
# stable_hash_array == stable_hash, element for element
# ----------------------------------------------------------------------
class TestStableHashArray:
    def test_int64_parity_including_negatives(self):
        keys = np.array([0, 1, 42, -5, -2**62, 2**62, 2**63 - 1, -2**63],
                        dtype=np.int64)
        hashed = stable_hash_array(keys)
        assert hashed.tolist() == [stable_hash(int(k)) for k in keys]

    @pytest.mark.parametrize("dtype", [np.int8, np.int32, np.uint8,
                                       np.uint32, np.uint64])
    def test_small_and_unsigned_dtypes(self, dtype):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, np.iinfo(dtype).max, 200,
                            dtype=np.uint64).astype(dtype)
        hashed = stable_hash_array(keys)
        assert hashed.tolist() == [stable_hash(int(k)) for k in keys]

    def test_bytes_keys_parity(self):
        keys = np.array([b"alpha", b"x", b"longer-key", b""], dtype="S16")
        hashed = stable_hash_array(keys)
        # numpy strips trailing NULs when yielding bytes; the scalar
        # twin of the batched CRC32 hashes exactly those bytes
        assert hashed.tolist() == [stable_hash(k) for k in keys.tolist()]

    def test_routing_matches_reducer_of(self):
        rng = np.random.default_rng(17)
        keys = rng.integers(-10**9, 10**9, 5000)
        routed = (stable_hash_array(keys) % 32).tolist()
        assert routed == [reducer_of(int(k), 32) for k in keys]

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(TypeError):
            stable_hash_array(np.array([1.5, 2.5]))


# ----------------------------------------------------------------------
# Scalar vs. vectorized engine equivalence
# ----------------------------------------------------------------------
def _job_signature(job):
    reports = [
        (r.map_records, r.shuffle_records, r.shuffle_bytes,
         r.shuffle_bytes_precombine, r.network_bytes)
        for r in job.reports
    ]
    tasks = [
        (e.task.name, e.task.cpu_ops, e.task.disk_read_bytes,
         e.task.disk_write_bytes, tuple(e.task.sends),
         tuple(e.task.receives), e.task.disk_penalty)
        for e in job.executions
    ]
    metrics = (job.metrics.network_bytes, job.metrics.disk_bytes,
               job.metrics.response_time)
    return reports, tasks, metrics


def _result_equal(a, b) -> bool:
    if isinstance(a, np.ndarray):
        return a.tobytes() == b.tobytes()  # bitwise, not approx
    if isinstance(a, dict):
        return a == b
    # RLG finalizes to a Graph
    return (np.array_equal(a.edge_sources(), b.edge_sources())
            and np.array_equal(a.out_indices, b.out_indices))


APPS = {
    "NR": NetworkRankingMapReduce,
    "VDD": DegreeDistributionMapReduce,
    "RLG": ReverseLinkGraphMapReduce,
}


class TestFastPathEquivalence:
    @pytest.fixture(scope="class")
    def graph(self):
        return composite_social_graph(
            num_communities=8, community_size=64, k=5, seed=9
        )

    @pytest.fixture(scope="class")
    def surfer(self, graph):
        return Surfer(graph, make_test_cluster(4), num_parts=8, seed=3)

    @pytest.mark.parametrize("combiner", [False, True])
    @pytest.mark.parametrize("app_name", ["NR", "VDD", "RLG"])
    def test_bit_identical_products(self, surfer, app_name, combiner):
        if app_name == "RLG" and combiner:
            pytest.skip("RLG bags cannot fold to one value")
        app_cls = APPS[app_name]
        scalar = surfer.run_mapreduce(app_cls(), rounds=2,
                                      vectorized=False, combiner=combiner)
        fast = surfer.run_mapreduce(app_cls(), rounds=2,
                                    vectorized=True, combiner=combiner)
        assert _result_equal(scalar.result, fast.result)
        assert _job_signature(scalar) == _job_signature(fast)

    @pytest.mark.parametrize("combiner", [False, True])
    def test_fast_path_reconciles(self, surfer, combiner):
        job = surfer.run_mapreduce(NetworkRankingMapReduce(), rounds=2,
                                   vectorized=True, combiner=combiner)
        assert reconcile(job) == []

    def test_naive_map_plus_combiner_matches_in_map_combining(self, surfer):
        """Engine-side combining of the raw per-edge emission stream is
        bit-identical to Algorithm 2's in-map hash table (same folds, in
        the same edge-scan order)."""
        in_map = surfer.run_mapreduce(NetworkRankingMapReduce(),
                                      rounds=1, vectorized=True)
        for vectorized in (False, True):
            naive = surfer.run_mapreduce(
                NetworkRankingMapReduce(in_map_combining=False),
                rounds=1, vectorized=vectorized, combiner=True)
            assert naive.result.tobytes() == in_map.result.tobytes()
            rep = naive.reports[0]
            # the raw stream is much bigger than what hits the wire ...
            assert rep.shuffle_bytes < rep.shuffle_bytes_precombine
            assert rep.shuffle_records < rep.map_records
            assert 0.0 < rep.combine_reduction < 1.0
            # ... and the combined stream equals the in-map one
            assert rep.shuffle_bytes == in_map.reports[0].shuffle_bytes

    def test_combiner_off_keeps_precombine_equal(self, surfer):
        job = surfer.run_mapreduce(NetworkRankingMapReduce(), rounds=1)
        rep = job.reports[0]
        assert rep.shuffle_bytes_precombine == rep.shuffle_bytes
        assert rep.shuffle_records == rep.map_records
        assert rep.combine_reduction == 0.0

    def test_force_vectorized_rejects_unsupported_app(self, surfer):
        class NoArrayApp(MapReduceApp):
            name = "no-array"

            def map(self, partition, pgraph, state, emit):
                emit(partition, 1)

            def reduce(self, key, values, state, emit):
                emit(key, sum(values))

            def update(self, state, outputs):
                pass

        with pytest.raises(JobError):
            surfer.run_mapreduce(NoArrayApp(), vectorized=True)

    def test_custom_sizing_disqualifies_fast_path(self, surfer):
        """Per-record sizing hooks need per-record calls; the fast path
        declines instead of silently using the constant sizes."""

        class FatKeys(NetworkRankingMapReduce):
            def key_nbytes(self, key):
                return 16.0

        with pytest.raises(JobError):
            surfer.run_mapreduce(FatKeys(), vectorized=True)
        auto = surfer.run_mapreduce(FatKeys())  # auto: scalar path
        scalar = surfer.run_mapreduce(FatKeys(), vectorized=False)
        assert _job_signature(auto) == _job_signature(scalar)

    def test_map_array_decline_falls_back_whole_round(self, surfer):
        class Declines(NetworkRankingMapReduce):
            def map_array(self, partition, pgraph, state):
                if partition == 3:
                    return None  # scalar re-run must cover all partitions
                return super().map_array(partition, pgraph, state)

        with pytest.raises(JobError):
            surfer.run_mapreduce(Declines(), vectorized=True)
        auto = surfer.run_mapreduce(Declines())
        scalar = surfer.run_mapreduce(Declines(), vectorized=False)
        assert auto.result.tobytes() == scalar.result.tobytes()
        assert _job_signature(auto) == _job_signature(scalar)

    def test_combiner_needs_combine(self, surfer):
        with pytest.raises(JobError):
            surfer.run_mapreduce(ReverseLinkGraphMapReduce(),
                                 combiner=True)

    def test_combiner_on_fast_path_needs_ufunc(self, surfer):
        class NoUfunc(NetworkRankingMapReduce):
            combine_ufunc = None

        with pytest.raises(JobError):
            surfer.run_mapreduce(NoUfunc(), vectorized=True, combiner=True)
        # auto silently takes the scalar path, which only needs combine()
        auto = surfer.run_mapreduce(NoUfunc(), combiner=True)
        scalar = surfer.run_mapreduce(NetworkRankingMapReduce(),
                                      vectorized=False, combiner=True)
        assert auto.result.tobytes() == scalar.result.tobytes()

    def test_reduce_array_decline_uses_sorted_scalar_groups(self, surfer):
        class NoReduceArray(NetworkRankingMapReduce):
            def reduce_array(self, keys, bounds, values, state):
                return None

        fast = surfer.run_mapreduce(NoReduceArray(), vectorized=True)
        scalar = surfer.run_mapreduce(NoReduceArray(), vectorized=False)
        assert fast.result.tobytes() == scalar.result.tobytes()
        assert _job_signature(fast) == _job_signature(scalar)


# ----------------------------------------------------------------------
# Routing determinism across PYTHONHASHSEED values
# ----------------------------------------------------------------------
_ROUTE_SNIPPET = """
import numpy as np
from repro.hashing import stable_hash_array
keys = np.array([0, 1, 42, -5, 123456789, -2**40], dtype=np.int64)
print((stable_hash_array(keys) % 16).tolist())
print((stable_hash_array(np.array([b"u:1", b"v:2"], dtype="S8")) % 16)
      .tolist())
"""


class TestRoutingDeterminism:
    def _route_output(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _ROUTE_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        return proc.stdout

    def test_array_routing_survives_hash_salting(self):
        out0 = self._route_output("0")
        out1 = self._route_output("54321")
        assert out0 == out1
        # and the parent process (whatever its seed) agrees too
        keys = np.array([0, 1, 42, -5, 123456789, -2**40], dtype=np.int64)
        local = str((stable_hash_array(keys) % 16).tolist()) + "\n" + str(
            (stable_hash_array(np.array([b"u:1", b"v:2"], dtype="S8")) % 16)
            .tolist()) + "\n"
        assert out0 == local
