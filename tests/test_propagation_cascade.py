"""Unit tests for cascaded multi-iteration propagation (Section 5.2)."""

import numpy as np
import pytest

from repro.apps import NetworkRankingPropagation
from repro.core.partitioned import PartitionedGraph
from repro.core.surfer import Surfer
from repro.graph.digraph import Graph
from repro.graph.generators import ring
from repro.propagation.cascade import (
    cascade_io_fractions,
    compute_cascade_info,
)
from tests.conftest import make_test_cluster


def chain_partitioned() -> PartitionedGraph:
    """Chain 0->1->2->3->4->5, split [0..2] / [3..5]."""
    g = Graph.from_edges([(i, i + 1) for i in range(5)], num_vertices=6)
    parts = np.array([0, 0, 0, 1, 1, 1])
    return PartitionedGraph(g, parts, 2)


class TestCascadeInfo:
    def test_entry_depths_on_chain(self):
        info = compute_cascade_info(chain_partitioned())
        # vertex 3 is the entry of partition 1 (cross edge 2->3)
        assert info.depth[3] == 0
        assert info.depth[4] == 1
        assert info.depth[5] == 2

    def test_unreached_vertices_are_v_inf(self):
        info = compute_cascade_info(chain_partitioned())
        # partition 0 has no incoming cross edges: all of it is V_inf
        assert info.depth[0] == -1
        assert info.v_inf_mask()[0]

    def test_v_k_masks_nested(self):
        info = compute_cascade_info(chain_partitioned())
        v1 = info.v_k_mask(1)
        v2 = info.v_k_mask(2)
        assert np.all(v2 <= v1)  # V_2 is a subset of V_1

    def test_ratio_decreases_with_k(self):
        pg = chain_partitioned()
        info = compute_cascade_info(pg)
        assert info.ratio_v_k(1) >= info.ratio_v_k(2) >= info.ratio_v_k(5)

    def test_ring_single_partition_all_v_inf(self):
        g = ring(6)
        pg = PartitionedGraph(g, np.zeros(6, dtype=np.int64), 1)
        info = compute_cascade_info(pg)
        assert info.v_inf_mask().all()

    def test_phase_lengths(self):
        info = compute_cascade_info(chain_partitioned())
        info.partition_diameters = [2, 2]
        assert info.phase_lengths(5) == [2, 2, 1]
        assert info.phase_lengths(0) == []


class TestIoFractions:
    def test_bounds(self):
        pg = chain_partitioned()
        info = compute_cascade_info(pg)
        fractions = cascade_io_fractions(pg, info, phase_length=2)
        assert np.all(fractions > 0)
        assert np.all(fractions <= 1)

    def test_all_cascadable_gives_minimum(self):
        g = ring(6)
        pg = PartitionedGraph(g, np.zeros(6, dtype=np.int64), 1)
        info = compute_cascade_info(pg)
        fractions = cascade_io_fractions(pg, info, phase_length=3)
        assert fractions[0] == pytest.approx(2.0 / 4.0)

    def test_longer_phases_save_more(self):
        g = ring(6)
        pg = PartitionedGraph(g, np.zeros(6, dtype=np.int64), 1)
        info = compute_cascade_info(pg)
        f2 = cascade_io_fractions(pg, info, 2)
        f4 = cascade_io_fractions(pg, info, 4)
        assert f4[0] < f2[0]


def chain_with_island() -> PartitionedGraph:
    """Chain 0..5 split [0..2]/[3..5] plus an isolated ring 6-7-8 in its
    own partition (no cross edges touch it) and an edgeless vertex 9 in
    a fourth partition; partition 4 is empty."""
    edges = [(i, i + 1) for i in range(5)]
    edges += [(6, 7), (7, 8), (8, 6)]
    g = Graph.from_edges(edges, num_vertices=10)
    parts = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2, 3])
    return PartitionedGraph(g, parts, 5)


class TestIslandPartitions:
    """Regressions: unreachable-vertex semantics must agree between
    d_min (phase sizing) and cascade_io_fractions (I/O accounting)."""

    def test_island_partition_does_not_cap_d_min(self):
        pg = chain_with_island()
        info = compute_cascade_info(pg)
        # the ring island (diameter 2 internally) and the isolated
        # vertex get the V_inf sentinel, matching their depth == -1
        assert info.partition_diameters[2] == -1
        assert info.partition_diameters[3] == -1
        assert info.partition_diameters[4] == -1  # empty partition
        assert info.v_inf_mask()[[6, 7, 8, 9]].all()
        # d_min is set by the only partition external info enters
        # (partition 1, internal chain 3->4->5, diameter 2) — not
        # dragged to a degenerate value by islands
        assert info.d_min == 2

    def test_all_island_graph_falls_back_to_phase_one(self):
        g = ring(6)
        pg = PartitionedGraph(g, np.zeros(6, dtype=np.int64), 1)
        info = compute_cascade_info(pg)
        assert info.partition_diameters == [-1]
        assert info.d_min == 1

    def test_island_vertices_are_fully_cascadable_in_fractions(self):
        pg = chain_with_island()
        info = compute_cascade_info(pg)
        fractions = cascade_io_fractions(pg, info, phase_length=2)
        # V_inf partitions still pay the initial-read/final-write floor
        assert fractions[2] == pytest.approx(2.0 / 3.0)
        assert fractions[3] == pytest.approx(2.0 / 3.0)

    def test_empty_partition_fraction_is_zero(self):
        pg = chain_with_island()
        info = compute_cascade_info(pg)
        fractions = cascade_io_fractions(pg, info, phase_length=3)
        assert fractions[4] == 0.0
        # and every non-empty partition keeps a positive fraction
        assert np.all(fractions[:4] > 0)


class TestCascadedExecution:
    @pytest.fixture()
    def surfer(self, small_graph):
        return Surfer(small_graph, make_test_cluster(4), num_parts=8,
                      seed=4)

    def test_results_identical(self, surfer):
        plain = surfer.run_propagation(NetworkRankingPropagation(),
                                       iterations=3, cascaded=False)
        cascaded = surfer.run_propagation(NetworkRankingPropagation(),
                                          iterations=3, cascaded=True)
        assert np.allclose(plain.result, cascaded.result)

    def test_disk_io_reduced(self, surfer):
        plain = surfer.run_propagation(NetworkRankingPropagation(),
                                       iterations=3, cascaded=False)
        cascaded = surfer.run_propagation(NetworkRankingPropagation(),
                                          iterations=3, cascaded=True)
        assert cascaded.metrics.disk_bytes < plain.metrics.disk_bytes
        assert (cascaded.metrics.response_time
                <= plain.metrics.response_time)

    def test_network_unchanged(self, surfer):
        """Cascading only touches intermediate value I/O, not messages."""
        plain = surfer.run_propagation(NetworkRankingPropagation(),
                                       iterations=3, cascaded=False)
        cascaded = surfer.run_propagation(NetworkRankingPropagation(),
                                          iterations=3, cascaded=True)
        assert cascaded.metrics.network_bytes == plain.metrics.network_bytes

    def test_single_iteration_noop(self, surfer):
        plain = surfer.run_propagation(NetworkRankingPropagation(),
                                       iterations=1, cascaded=False)
        cascaded = surfer.run_propagation(NetworkRankingPropagation(),
                                          iterations=1, cascaded=True)
        assert cascaded.metrics.disk_bytes == plain.metrics.disk_bytes
