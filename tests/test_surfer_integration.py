"""Integration tests for the Surfer facade."""

import numpy as np
import pytest

from repro.apps import NetworkRankingPropagation
from repro.cluster.cluster import partitions_for_memory
from repro.core.surfer import (
    ALL_LEVELS,
    O1,
    O4,
    Surfer,
    default_num_parts,
)
from repro.errors import JobError
from tests.conftest import make_test_cluster


class TestConstruction:
    def test_default_num_parts(self):
        assert default_num_parts(32) == 64
        assert default_num_parts(24) == 64   # next power of two
        assert default_num_parts(1) == 2

    def test_layouts(self, small_graph):
        for layout in ("bandwidth-aware", "oblivious"):
            s = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                       layout=layout, seed=0)
            assert s.layout == layout
            assert s.num_parts == 8

    def test_rejects_unknown_layout(self, small_graph):
        with pytest.raises(JobError):
            Surfer(small_graph, make_test_cluster(4), num_parts=8,
                   layout="psychic")

    def test_same_partitions_across_layouts(self, small_graph):
        a = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                   layout="bandwidth-aware", seed=0)
        b = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                   layout="oblivious", seed=0)
        assert np.array_equal(a.plan.parts, b.plan.parts)

    def test_assignment_stays_on_replicas(self, shared_surfer):
        for p in range(shared_surfer.num_parts):
            assert (shared_surfer.assignment[p]
                    in shared_surfer.store.replicas(p))

    def test_replication_capped_by_machines(self, small_graph):
        s = Surfer(small_graph, make_test_cluster(2), num_parts=4,
                   replication=5, seed=0)
        assert len(s.store.replicas(0)) == 2

    def test_optimization_level_constants(self):
        assert len(ALL_LEVELS) == 4
        assert not O1.bandwidth_aware_layout and not O1.local_optimizations
        assert O4.bandwidth_aware_layout and O4.local_optimizations


class TestRuns:
    def test_propagation_and_mapreduce_share_cluster(self, small_graph):
        from repro.apps import NetworkRankingMapReduce
        s = Surfer(small_graph, make_test_cluster(4), num_parts=8, seed=0)
        prop = s.run_propagation(NetworkRankingPropagation())
        mr = s.run_mapreduce(NetworkRankingMapReduce())
        assert np.allclose(prop.result, mr.result)

    def test_determinism(self, small_graph):
        runs = []
        for _ in range(2):
            s = Surfer(small_graph, make_test_cluster(4), num_parts=8,
                       seed=1)
            job = s.run_propagation(NetworkRankingPropagation(),
                                    iterations=2)
            runs.append(job)
        assert np.array_equal(runs[0].result, runs[1].result)
        assert (runs[0].metrics.response_time
                == runs[1].metrics.response_time)
        assert (runs[0].metrics.network_bytes
                == runs[1].metrics.network_bytes)

    def test_executions_recorded(self, small_graph):
        s = Surfer(small_graph, make_test_cluster(4), num_parts=8, seed=0)
        job = s.run_propagation(NetworkRankingPropagation())
        kinds = {e.task.kind for e in job.executions}
        assert kinds == {"transfer", "combine"}
        assert len(job.executions) == 2 * s.num_parts

    def test_memory_rule_partition_count(self):
        # the paper's setting: 128 GB graph, 2 GB memory budget
        assert partitions_for_memory(128 * 1024**3, 2 * 1024**3) == 64
