"""Sparse-frontier propagation: the traversal suite's parity matrix.

Two layered contracts (see docs/DESIGN.md, frontier section):

* **frontier vs dense** — both modes route the *identical* message set
  (``frontier()`` agrees with ``select``), so outputs and every
  ``propagation.*`` counter must match exactly; the modes differ only in
  Transfer I/O pricing (frontier reads active rows, dense reads the
  partition) and the frontier-summary exchange on the network.
* **scalar vs vectorized** (PR 2/4 discipline) — within either mode the
  array fast path reproduces the scalar oracle bit for bit, costs
  included.

Plus: single-machine oracles (bfs_levels / dijkstra / core_numbers /
pagerank), PYTHONHASHSEED determinism, checkpoint/restart and chaos
recovery in frontier mode, top-down/bottom-up direction switching, and
the delta-PageRank convergent-tail message saving (>= 5x vs dense NR).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.apps import EXTENSION_APPS
from repro.apps.network_ranking import NetworkRankingPropagation
from repro.apps.traversal import (
    BreadthFirstSearchPropagation,
    DeltaPageRankPropagation,
    KCoreDecompositionPropagation,
    ShortestPathsPropagation,
    edge_weight,
    edge_weight_array,
    h_index,
)
from repro.cluster.faults import FaultPlan
from repro.core.surfer import Surfer
from repro.errors import JobError
from repro.graph.algorithms import (
    bfs_levels,
    core_numbers,
    dijkstra,
    pagerank,
)
from repro.graph.generators import (
    composite_social_graph,
    star,
    web_feeder_graph,
)
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.events import reconcile
from tests.conftest import make_test_cluster

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: app name -> (class, needs undirected/symmetrized graph)
TRAVERSAL_APPS = {
    "BFS": (BreadthFirstSearchPropagation, False),
    "SSSP": (ShortestPathsPropagation, False),
    "KCORE": (KCoreDecompositionPropagation, True),
    "DPR": (DeltaPageRankPropagation, False),
}


def _graph_for(app_name: str, graph):
    return graph.symmetrized() if TRAVERSAL_APPS[app_name][1] else graph


def _surfer(graph, machines=4, parts=8, seed=3, replication=1):
    return Surfer(graph, make_test_cluster(machines), num_parts=parts,
                  seed=seed, replication=replication)


def _run(app_name, graph, frontier, parts=8, vectorized=None, **kw):
    cls = TRAVERSAL_APPS[app_name][0]
    surfer = _surfer(_graph_for(app_name, graph), parts=parts)
    return surfer.run_propagation(cls(), iterations=100,
                                  until_convergence=True,
                                  frontier=frontier,
                                  vectorized=vectorized, **kw)


def _job_signature(job):
    reports = [
        (r.messages_emitted, r.messages_shipped, r.network_bytes,
         r.spill_bytes, r.locally_propagated)
        for r in job.reports
    ]
    tasks = [
        (e.task.name, e.task.cpu_ops, e.task.disk_read_bytes,
         e.task.disk_write_bytes, tuple(e.task.sends),
         tuple(e.task.receives), e.task.disk_penalty)
        for e in job.executions
    ]
    metrics = (job.metrics.network_bytes, job.metrics.disk_bytes,
               job.metrics.response_time)
    return reports, tasks, metrics


# ----------------------------------------------------------------------
# UDF helpers
# ----------------------------------------------------------------------
class TestHelpers:
    def test_h_index(self):
        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([5]) == 1
        assert h_index([3, 3, 3]) == 3
        assert h_index([5, 4, 3, 2, 1]) == 3
        assert h_index([10, 10, 10, 10]) == 4

    def test_edge_weights_positive_bounded_and_deterministic(self):
        src = np.arange(200, dtype=np.int64)
        dst = (src * 7 + 3) % 200
        w = edge_weight_array(src, dst)
        assert w.dtype == np.int64
        assert w.min() >= 1 and w.max() <= 16
        assert np.array_equal(w, edge_weight_array(src, dst))
        # scalar twin is bit-identical (it IS the array path)
        for u, v in [(0, 3), (17, 5), (199, 0)]:
            i = int(np.where((src == u) & (dst == v))[0][0]) \
                if ((src == u) & (dst == v)).any() else None
            assert edge_weight(u, v) == int(
                edge_weight_array(np.array([u]), np.array([v]))[0])
            if i is not None:
                assert edge_weight(u, v) == int(w[i])

    def test_weights_not_all_equal(self):
        src = np.arange(50, dtype=np.int64)
        w = edge_weight_array(src, src + 1)
        assert len(set(w.tolist())) > 1


# ----------------------------------------------------------------------
# Single-machine oracles
# ----------------------------------------------------------------------
class TestOracles:
    @pytest.fixture(scope="class")
    def graph(self):
        return composite_social_graph(
            num_communities=4, community_size=32, seed=7
        )

    def test_bfs_matches_bfs_levels(self, graph):
        job = _run("BFS", graph, frontier=True)
        assert not job.failed
        assert np.array_equal(job.result, bfs_levels(graph, 0))

    def test_sssp_matches_dijkstra(self, graph):
        job = _run("SSSP", graph, frontier=True)
        assert not job.failed
        assert np.array_equal(job.result,
                              dijkstra(graph, 0, edge_weight))

    def test_sssp_never_longer_than_hops_times_16(self, graph):
        job = _run("SSSP", graph, frontier=True)
        hops = bfs_levels(graph, 0)
        reach = hops >= 0
        assert np.array_equal(np.asarray(job.result) >= 0, reach)
        assert (np.asarray(job.result)[reach]
                <= hops[reach] * 16).all()

    def test_kcore_matches_peeling(self, graph):
        gs = graph.symmetrized()
        job = _run("KCORE", graph, frontier=True)
        assert not job.failed
        assert np.array_equal(job.result, core_numbers(gs))

    def test_dpr_converges_to_pagerank(self, graph):
        job = _run("DPR", graph, frontier=True)
        assert not job.failed
        oracle = pagerank(graph, num_iterations=200, dangling="self")
        assert np.allclose(job.result, oracle, rtol=0, atol=1e-3)
        assert np.abs(np.asarray(job.result) - oracle).max() < 1e-3


# ----------------------------------------------------------------------
# Frontier vs dense: identical semantics, cheaper Transfer reads
# ----------------------------------------------------------------------
class TestFrontierDenseEquivalence:
    @pytest.fixture(scope="class")
    def graph(self):
        return composite_social_graph(
            num_communities=4, community_size=32, seed=7
        )

    @pytest.mark.parametrize("parts", [4, 8])
    @pytest.mark.parametrize("app_name", sorted(TRAVERSAL_APPS))
    def test_outputs_and_message_counters_identical(
            self, graph, app_name, parts):
        dense = _run(app_name, graph, frontier=False, parts=parts)
        sparse = _run(app_name, graph, frontier=True, parts=parts)
        assert not dense.failed and not sparse.failed
        assert np.array_equal(dense.result, sparse.result)
        # identical message routing, iteration by iteration
        assert len(dense.reports) == len(sparse.reports)
        for rd, rs in zip(dense.reports, sparse.reports):
            assert rd.messages_emitted == rs.messages_emitted
            assert rd.messages_shipped == rs.messages_shipped
            assert rd.locally_propagated == rs.locally_propagated
            assert rd.spill_bytes == rs.spill_bytes

    @pytest.mark.parametrize("app_name", sorted(TRAVERSAL_APPS))
    def test_cost_split_network_up_disk_down(self, graph, app_name):
        dense = _run(app_name, graph, frontier=False)
        sparse = _run(app_name, graph, frontier=True)
        exchange = sparse.events.metrics.get("frontier.exchange_bytes")
        # network: dense traffic plus exactly the summary exchange
        assert sparse.metrics.network_bytes == pytest.approx(
            dense.metrics.network_bytes + exchange)
        # disk: bottom-up reads what dense reads, top-down only less
        assert sparse.metrics.disk_bytes <= dense.metrics.disk_bytes
        assert sparse.events.metrics.get("frontier.active") > 0

    @pytest.mark.parametrize("app_name", sorted(TRAVERSAL_APPS))
    def test_transfer_cpu_identical_across_modes(self, graph, app_name):
        dense = _run(app_name, graph, frontier=False)
        sparse = _run(app_name, graph, frontier=True)
        for ed, es in zip(dense.executions, sparse.executions):
            assert ed.task.name == es.task.name
            assert ed.task.cpu_ops == es.task.cpu_ops

    def test_dense_mode_has_no_frontier_counters(self, graph):
        dense = _run("BFS", graph, frontier=False)
        assert dense.events.metrics.get("frontier.active") == 0
        assert dense.events.metrics.get("frontier.exchange_bytes") == 0

    @pytest.mark.parametrize("app_name", sorted(TRAVERSAL_APPS))
    def test_both_modes_reconcile(self, graph, app_name):
        assert reconcile(_run(app_name, graph, frontier=True)) == []
        assert reconcile(_run(app_name, graph, frontier=False)) == []


# ----------------------------------------------------------------------
# Scalar vs vectorized inside frontier mode (PR 2/4 discipline)
# ----------------------------------------------------------------------
class TestFrontierFastPathParity:
    @pytest.fixture(scope="class")
    def graph(self):
        return composite_social_graph(
            num_communities=4, community_size=32, seed=9
        )

    @pytest.mark.parametrize("app_name", sorted(TRAVERSAL_APPS))
    def test_bit_identical_products_and_costs(self, graph, app_name):
        scalar = _run(app_name, graph, frontier=True, vectorized=False)
        vector = _run(app_name, graph, frontier=True, vectorized=True)
        assert not scalar.failed and not vector.failed
        assert np.array_equal(scalar.result, vector.result)
        assert _job_signature(scalar) == _job_signature(vector)


# ----------------------------------------------------------------------
# Direction switching (Buluc-Madduri top-down/bottom-up)
# ----------------------------------------------------------------------
class TestDirectionSwitching:
    def test_kcore_switches_from_bottom_up_to_top_down(self):
        # all vertices start active -> bottom-up sequential scans; the
        # frontier then shrinks -> per-partition flips to top-down
        graph = composite_social_graph(
            num_communities=4, community_size=32, seed=7
        )
        job = _run("KCORE", graph, frontier=True)
        m = job.events.metrics
        assert m.get("frontier.bottom_up_scans") > 0
        assert m.get("frontier.direction_switches") > 0

    def test_bfs_single_source_starts_top_down(self):
        graph = composite_social_graph(
            num_communities=4, community_size=32, seed=7
        )
        job = _run("BFS", graph, frontier=True)
        # a 1-vertex frontier must never trigger a full partition scan
        # on iteration one; scans can only appear later if the frontier
        # saturates
        assert job.reports[0].frontier_bottom_up_scans == 0

    def test_empty_frontier_iteration_is_free(self):
        # hub of an in-star has no out-edges: the frontier empties after
        # iteration one, and an empty frontier reads nothing and
        # announces nothing
        graph = star(6, out=False)
        surfer = Surfer(graph, make_test_cluster(2), num_parts=2, seed=0)
        job = surfer.run_propagation(
            BreadthFirstSearchPropagation(), iterations=2, frontier=True
        )
        assert not job.failed
        assert job.result.tolist() == [0] + [-1] * 6
        last = job.reports[-1]
        assert last.frontier_active == 0
        assert last.frontier_exchange_bytes == 0
        assert last.messages_emitted == 0


# ----------------------------------------------------------------------
# Delta-PageRank's convergent tail vs dense NR (the >= 5x claim)
# ----------------------------------------------------------------------
class TestDeltaPageRankTail:
    def test_frontier_tail_ships_5x_fewer_messages_than_dense(self):
        # the bench config delta_pr.toml records the same comparison;
        # keep graph/seed in sync with it
        graph = web_feeder_graph(core=32, feeders=480, seed=2010)
        surfer = _surfer(graph, parts=8)
        dpr = surfer.run_propagation(
            DeltaPageRankPropagation(), iterations=200,
            until_convergence=True, frontier=True, local_opts=False,
        )
        assert not dpr.failed
        iters = len(dpr.reports)
        nr = _surfer(graph, parts=8).run_propagation(
            NetworkRankingPropagation(), iterations=iters,
            local_opts=False,
        )
        dpr_msgs = sum(r.messages_shipped for r in dpr.reports)
        nr_msgs = sum(r.messages_shipped for r in nr.reports)
        assert nr_msgs >= 5 * dpr_msgs
        emitted_dpr = sum(r.messages_emitted for r in dpr.reports)
        emitted_nr = sum(r.messages_emitted for r in nr.reports)
        assert emitted_nr >= 5 * emitted_dpr

    def test_feeders_leave_frontier_after_first_iteration(self):
        graph = web_feeder_graph(core=32, feeders=480, seed=2010)
        job = _run("DPR", graph, frontier=True)
        actives = [r.frontier_active for r in job.reports]
        assert actives[0] == graph.num_vertices
        assert all(a <= 32 for a in actives[1:])


# ----------------------------------------------------------------------
# Fault tolerance in frontier mode
# ----------------------------------------------------------------------
class TestFrontierRecovery:
    @pytest.fixture(scope="class")
    def graph(self):
        return composite_social_graph(
            num_communities=4, community_size=32, seed=7
        )

    @pytest.mark.parametrize("app_name", sorted(TRAVERSAL_APPS))
    def test_restart_is_bit_identical(self, graph, app_name):
        baseline = _run(app_name, graph, frontier=True)
        assert not baseline.failed

        cls = TRAVERSAL_APPS[app_name][0]
        surfer = _surfer(_graph_for(app_name, graph))
        plan = FaultPlan().add_kill(surfer.store.primary(0), 1.0)
        job = surfer.run_propagation(
            cls(), iterations=100, until_convergence=True,
            frontier=True, fault_plan=plan,
            checkpoint=CheckpointPolicy(interval=1),
        )
        assert not job.failed
        assert job.restarts >= 1
        assert np.array_equal(baseline.result, job.result)
        assert reconcile(job) == []

    def test_chaos_sweep_recovery_invariant(self, graph):
        from repro.runtime.chaos import run_chaos_sweep, surfer_factory

        make_surfer = surfer_factory(
            graph, lambda: make_test_cluster(4),
            num_parts=8, replication=2, seed=3,
        )
        policy = CheckpointPolicy(interval=1, max_restarts=3)

        def run_job(surfer, plan):
            return surfer.run_propagation(
                BreadthFirstSearchPropagation(), iterations=100,
                until_convergence=True, frontier=True, fault_plan=plan,
                checkpoint=policy if plan is not None else None,
            )

        report = run_chaos_sweep(make_surfer, run_job, 6, seed=11)
        assert report.ok, report.summary()


# ----------------------------------------------------------------------
# Hash-salting determinism
# ----------------------------------------------------------------------
_FRONTIER_SNIPPET = """
import numpy as np
from repro.apps.traversal import ShortestPathsPropagation
from repro.core.surfer import Surfer
from repro.graph.generators import composite_social_graph
from tests.conftest import make_test_cluster

graph = composite_social_graph(num_communities=4, community_size=32,
                               seed=7)
surfer = Surfer(graph, make_test_cluster(4), num_parts=8, seed=3)
job = surfer.run_propagation(ShortestPathsPropagation(), iterations=100,
                             until_convergence=True, frontier=True)
print(np.asarray(job.result).tolist())
print(job.metrics.network_bytes, job.metrics.disk_bytes,
      int(job.events.metrics.get("frontier.exchange_bytes")),
      int(job.events.metrics.get("frontier.direction_switches")))
"""


class TestHashSeedDeterminism:
    def _output(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = (SRC_DIR + os.pathsep
                             + os.path.dirname(SRC_DIR)
                             + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.run(
            [sys.executable, "-c", _FRONTIER_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
            cwd=os.path.dirname(SRC_DIR),
        )
        return proc.stdout

    def test_frontier_run_survives_hash_salting(self):
        assert self._output("0") == self._output("12345")


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
class _NoMaskApp(BreadthFirstSearchPropagation):
    name = "NOMASK"

    def frontier(self, state):
        return state.extra["active"].astype(np.int64)  # wrong dtype


class TestFrontierErrors:
    @pytest.fixture(scope="class")
    def graph(self):
        return composite_social_graph(
            num_communities=4, community_size=32, seed=7
        )

    def test_non_frontier_app_rejected(self, graph):
        surfer = _surfer(graph)
        with pytest.raises(JobError, match="frontier"):
            surfer.run_propagation(NetworkRankingPropagation(),
                                   iterations=1, frontier=True)

    def test_cascaded_frontier_rejected(self, graph):
        surfer = _surfer(graph)
        with pytest.raises(JobError, match="cascaded"):
            surfer.run_propagation(
                BreadthFirstSearchPropagation(), iterations=4,
                frontier=True, cascaded=True,
            )

    def test_bad_mask_dtype_rejected(self, graph):
        surfer = _surfer(graph)
        with pytest.raises(JobError, match="boolean mask"):
            surfer.run_propagation(_NoMaskApp(), iterations=2,
                                   frontier=True)

    def test_default_frontier_hook_raises(self):
        state = object()
        with pytest.raises(JobError, match="frontier"):
            NetworkRankingPropagation().frontier(state)
