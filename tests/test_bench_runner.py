"""Tests for the config-driven bench runner (``repro bench``).

Covers the TOML config model (validation collects every violation),
suite selection including per-workload suite overrides, the noise-aware
min-of-N sampler, and a tiny end-to-end suite run from a config file on
disk.  The committed configs under ``src/repro/bench/configs/`` must
always parse clean — they are the executable definition of the repo's
benchmark suite.
"""

import textwrap
import tomllib
from types import SimpleNamespace

import pytest

from repro.bench.benchjson import validate_bench_json, write_bench_json
from repro.bench.runner import (
    DEFAULT_CONFIG_DIR,
    SUITES,
    discover_configs,
    load_config,
    parse_config,
    run_suite,
    select_suite,
    timed_min_of_n,
)
from repro.errors import BenchConfigError, BenchRunError


def parse(toml_text, source="<test>"):
    return parse_config(tomllib.loads(textwrap.dedent(toml_text)),
                        source=source)


MINIMAL = """
    [experiment]
    name = "tiny"
    suites = ["smoke"]

    [[workload]]
    name = "w1"
    app = "NR"
    engine = "propagation"
"""


# ----------------------------------------------------------------------
# Parsing + validation
# ----------------------------------------------------------------------
class TestParseConfig:
    def test_minimal_config_defaults(self):
        cfg = parse(MINIMAL)
        assert cfg.name == "tiny"
        assert cfg.kind == "jobs"
        assert cfg.suites == ("smoke",)
        assert cfg.repetitions == 1
        assert cfg.cluster.topology == "T1"
        assert len(cfg.workloads) == 1
        assert cfg.workloads[0].iterations is None  # app default

    def test_all_violations_collected_in_one_error(self):
        with pytest.raises(BenchConfigError) as exc:
            parse("""
                [experiment]
                name = "bad"
                suites = ["smoke", "nightly"]
                bogus_key = 1

                [cluster]
                topology = "T9"
                machines = -3

                [sampling]
                repetitions = true

                [tolerances]
                makespan_s = -0.1
                not_a_metric = 1.0

                [[workload]]
                name = "w"
                app = "NOPE"
                engine = "gpu"
                iterations = 0

                [[workload]]
                name = "w"
                app = "NR"
                engine = "propagation"
            """)
        text = "\n".join(exc.value.errors)
        assert "unknown suites ['nightly']" in text
        assert "bogus_key" in text
        assert "unknown topology 'T9'" in text
        assert "machines must be a positive integer" in text
        assert "repetitions must be a positive integer" in text  # bool
        assert "makespan_s must be a non-negative number" in text
        assert "unknown metric 'not_a_metric'" in text
        assert "unknown app 'NOPE'" in text
        assert "engine must be one of" in text
        assert "iterations must be a positive" in text
        assert "duplicate workload name 'w'" in text

    def test_missing_experiment_table(self):
        with pytest.raises(BenchConfigError) as exc:
            parse_config({"graph": {}})
        assert "missing [experiment] table" in exc.value.errors[0]

    def test_jobs_kind_needs_workloads(self):
        with pytest.raises(BenchConfigError) as exc:
            parse("""
                [experiment]
                name = "empty"
                suites = ["smoke"]
            """)
        assert any("at least one" in e for e in exc.value.errors)

    def test_chaos_kind_needs_chaos_table_and_no_workloads(self):
        with pytest.raises(BenchConfigError) as exc:
            parse("""
                [experiment]
                name = "c"
                suites = ["paper"]
                kind = "chaos"

                [[workload]]
                name = "w"
                app = "NR"
                engine = "propagation"
            """)
        text = "\n".join(exc.value.errors)
        assert "requires a [chaos] table" in text
        assert "not [[workload]] entries" in text

    def test_chaos_config_parses(self):
        cfg = parse("""
            [experiment]
            name = "c"
            suites = ["paper"]
            kind = "chaos"

            [chaos]
            app = "NR"
            schedules = 6
            prefix = "x"
        """)
        assert cfg.kind == "chaos"
        assert cfg.chaos.schedules == 6
        assert cfg.chaos.prefix == "x"
        assert cfg.workloads == ()

    def test_bools_rejected_where_ints_expected(self):
        # isinstance(True, int) is True — the validator must not accept it
        with pytest.raises(BenchConfigError) as exc:
            parse("""
                [experiment]
                name = "b"
                suites = ["smoke"]

                [graph]
                communities = true

                [[workload]]
                name = "w"
                app = "NR"
                engine = "propagation"
                machines = true
            """)
        text = "\n".join(exc.value.errors)
        assert "communities must be a positive integer" in text
        assert "machines must be a positive integer" in text

    def test_workload_parts_auto_or_int(self):
        cfg = parse(MINIMAL.replace('engine = "propagation"',
                                    'engine = "propagation"\n'
                                    '    parts = "auto"'))
        assert cfg.workloads[0].parts == "auto"
        with pytest.raises(BenchConfigError):
            parse(MINIMAL.replace('engine = "propagation"',
                                  'engine = "propagation"\n'
                                  '    parts = "some"'))

    def test_load_config_reports_toml_syntax_errors(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[experiment\nname=")
        with pytest.raises(BenchConfigError) as exc:
            load_config(path)
        assert "TOML parse error" in exc.value.errors[0]
        assert str(path) == exc.value.source


# ----------------------------------------------------------------------
# Discovery + suite selection
# ----------------------------------------------------------------------
class TestSuiteSelection:
    def test_committed_configs_parse_clean(self):
        configs = discover_configs(DEFAULT_CONFIG_DIR)
        assert {c.name for c in configs} >= {
            "fig7_nr", "fig11_scaling", "mr_fastpath", "chaos_recovery"}
        # smoke must stay cheap: no chaos experiments, only the
        # endpoints of the scaling sweep
        smoke = select_suite(configs, "smoke")
        assert all(c.kind == "jobs" for c in smoke)
        # every suite selects something
        for suite in SUITES:
            assert select_suite(configs, suite)

    def test_per_workload_suite_override(self):
        cfg = parse("""
            [experiment]
            name = "s"
            suites = ["smoke", "full"]

            [[workload]]
            name = "everywhere"
            app = "NR"
            engine = "propagation"

            [[workload]]
            name = "full_only"
            app = "NR"
            engine = "propagation"
            suites = ["full"]
        """)
        assert [w.name for w in cfg.workloads_for("smoke")] == [
            "everywhere"]
        assert [w.name for w in cfg.workloads_for("full")] == [
            "everywhere", "full_only"]
        assert cfg.workloads_for("paper") == ()

    def test_unknown_suite_rejected(self):
        with pytest.raises(BenchConfigError):
            select_suite([], "nightly")

    def test_duplicate_experiment_names_rejected(self, tmp_path):
        for fname in ("a.toml", "b.toml"):
            (tmp_path / fname).write_text(textwrap.dedent(MINIMAL))
        with pytest.raises(BenchConfigError) as exc:
            discover_configs(tmp_path)
        assert "duplicate experiment name 'tiny'" in exc.value.errors[0]

    def test_missing_config_dir(self, tmp_path):
        with pytest.raises(BenchConfigError):
            discover_configs(tmp_path / "nope")


# ----------------------------------------------------------------------
# min-of-N sampling
# ----------------------------------------------------------------------
def fake_job(response=1.0, machine=2.0, net=10, disk=20):
    return SimpleNamespace(metrics=SimpleNamespace(
        response_time=response, total_machine_time=machine,
        network_bytes=net, disk_bytes=disk))


class TestMinOfN:
    def test_runs_n_times_and_keeps_min_wall(self):
        calls = []

        def run():
            calls.append(1)
            return fake_job()

        job, wall = timed_min_of_n(run, 5)
        assert len(calls) == 5
        assert job.metrics.response_time == 1.0
        assert wall >= 0.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(BenchRunError):
            timed_min_of_n(lambda: fake_job(), 0)

    def test_nondeterministic_simulated_metrics_raise(self):
        jobs = iter([fake_job(net=10), fake_job(net=11)])
        with pytest.raises(BenchRunError) as exc:
            timed_min_of_n(lambda: next(jobs), 2)
        assert "nondeterministic" in str(exc.value)


# ----------------------------------------------------------------------
# End-to-end: a tiny suite run from a config file on disk
# ----------------------------------------------------------------------
TINY_E2E = """
    [experiment]
    name = "e2e"
    description = "tiny end-to-end runner check"
    suites = ["smoke"]

    [graph]
    communities = 4
    community_size = 32
    k = 4
    seed = 7

    [cluster]
    topology = "T1"
    machines = 4
    parts = 4
    seed = 3

    [sampling]
    repetitions = 2

    [tolerances]
    wall_clock_s = 10.0

    [[workload]]
    name = "e2e_nr_prop"
    app = "NR"
    engine = "propagation"
    iterations = 1

    [[workload]]
    name = "e2e_nr_mr"
    app = "NR"
    engine = "mapreduce"
    iterations = 1
"""


class TestRunSuite:
    def test_tiny_suite_end_to_end(self, tmp_path):
        (tmp_path / "e2e.toml").write_text(textwrap.dedent(TINY_E2E))
        result = run_suite("smoke", config_dir=tmp_path)
        assert result.suite == "smoke"
        assert result.experiments == ["e2e"]
        assert set(result.records) == {"e2e_nr_prop", "e2e_nr_mr"}
        # the [tolerances] table flows through per workload
        assert result.tolerances["e2e_nr_prop"]["wall_clock_s"] == 10.0
        # records are schema-valid and engine counters distinct
        doc = write_bench_json(tmp_path / "out.json", result.records,
                               pr="TEST")
        assert validate_bench_json(doc) == []
        prop = result.records["e2e_nr_prop"]
        mr = result.records["e2e_nr_mr"]
        assert prop["messages_shipped"] > 0
        assert mr["messages_shipped"] > 0
        assert prop["wall_clock_s"] > 0
        # same simulated run is deterministic across suite invocations
        again = run_suite("smoke", config_dir=tmp_path)
        for name in result.records:
            for metric in ("makespan_s", "machine_time_s",
                           "network_bytes", "disk_bytes",
                           "messages_shipped", "tasks"):
                assert result.records[name][metric] == \
                    again.records[name][metric]

    def test_suite_with_no_matching_workloads_is_empty(self, tmp_path):
        (tmp_path / "e2e.toml").write_text(textwrap.dedent(TINY_E2E))
        result = run_suite("paper", config_dir=tmp_path)
        assert result.records == {}
        assert result.experiments == []

    def test_cross_config_workload_collision_rejected(self, tmp_path):
        (tmp_path / "a.toml").write_text(textwrap.dedent(TINY_E2E))
        (tmp_path / "b.toml").write_text(textwrap.dedent(
            TINY_E2E).replace('name = "e2e"', 'name = "e2e_b"'))
        with pytest.raises(BenchRunError) as exc:
            run_suite("smoke", config_dir=tmp_path)
        assert "re-defines workload" in str(exc.value)


SHARD_E2E = """
    [experiment]
    name = "xl_tiny"
    suites = ["smoke"]

    [graph]
    kind = "rmat_shard"
    rmat_scale = 8
    edge_factor = 4
    seed = 7

    [cluster]
    topology = "T2(4,1)"
    machines = 8
    parts = 4
    seed = 7

    [[workload]]
    name = "xl_tiny_nr"
    app = "NR"
    engine = "propagation"
    iterations = 2
    vectorized = true
    measure_rss = true

    [[workload]]
    name = "xl_tiny_bfs"
    app = "BFS"
    engine = "propagation"
    until_convergence = true
    frontier = true
"""


class TestShardGraphConfig:
    """kind = "rmat_shard": the out-of-core XL path (ISSUE 9)."""

    def test_parses(self):
        cfg = parse(SHARD_E2E)
        assert cfg.graph.kind == "rmat_shard"
        assert cfg.graph.rmat_scale == 8
        assert cfg.graph.edge_factor == 4
        assert cfg.workloads[0].measure_rss is True
        assert cfg.workloads[0].max_peak_rss_bytes is None
        assert cfg.workloads[1].measure_rss is False

    def test_rejects_auto_parts_and_weak_scaling(self):
        bad = SHARD_E2E.replace(
            'iterations = 2', 'iterations = 2\n    parts = "auto"'
        ).replace('until_convergence = true',
                  'until_convergence = true\n'
                  '    scale_graph_by_machines = true')
        with pytest.raises(BenchConfigError) as exc:
            parse(bad)
        message = str(exc.value)
        assert "auto" in message
        assert "scale_graph_by_machines" in message

    def test_rejects_bad_rss_fields(self):
        bad = SHARD_E2E.replace(
            "measure_rss = true",
            'measure_rss = "yes"\n    max_peak_rss_bytes = -5')
        with pytest.raises(BenchConfigError) as exc:
            parse(bad)
        message = str(exc.value)
        assert "measure_rss" in message
        assert "max_peak_rss_bytes" in message

    def test_tolerances_accept_peak_rss(self):
        cfg = parse(SHARD_E2E + """
    [tolerances]
    peak_rss_bytes = 0.75
""")
        assert cfg.tolerances["peak_rss_bytes"] == 0.75

    def test_unknown_graph_kind_rejected(self):
        with pytest.raises(BenchConfigError) as exc:
            parse(SHARD_E2E.replace('"rmat_shard"', '"csr_shard"'))
        assert "rmat_shard" in str(exc.value)


class TestShardGraphExecution:
    def test_end_to_end(self, tmp_path):
        from repro.bench.memory import peak_rss_supported
        from repro.bench.runner import run_experiment

        cfg = parse(SHARD_E2E)
        records = run_experiment(cfg, suite="smoke")
        assert set(records) == {"xl_tiny_nr", "xl_tiny_bfs"}
        doc = write_bench_json(tmp_path / "out.json", records, pr="TEST")
        assert validate_bench_json(doc) == []
        if peak_rss_supported():
            assert records["xl_tiny_nr"]["peak_rss_bytes"] > 0
        # measure_rss off -> no optional field on the record
        assert "peak_rss_bytes" not in records["xl_tiny_bfs"]

    def test_matches_in_memory_graph(self, tmp_path):
        from repro.apps import APP_REGISTRY
        from repro.bench.runner import run_experiment
        from repro.bench.workloads import make_cluster, topology_by_name
        from repro.core.range_plan import contiguous_range_plan
        from repro.core.surfer import Surfer
        from repro.graph.generators import rmat
        from repro.graph.store import build_shard_store
        from repro.graph.stream import stream_rmat

        cfg = parse(SHARD_E2E)
        records = run_experiment(cfg, suite="smoke")
        # oracle: the runner's shard boundaries over the in-memory twin
        store = build_shard_store(
            stream_rmat(8, edge_factor=4, seed=7), tmp_path / "s", 4)
        graph = rmat(8, edge_factor=4, seed=7)
        cluster = make_cluster(topology_by_name("T2(4,1)", 8))
        plan = contiguous_range_plan(graph, cluster.topology, 4, seed=7,
                                     offsets=store.vertex_starts)
        surfer = Surfer(graph, cluster, seed=7, plan=plan)
        job = surfer.run_propagation(APP_REGISTRY["NR"][0](),
                                     iterations=2, vectorized=True)
        assert records["xl_tiny_nr"]["makespan_s"] == round(
            float(job.metrics.response_time), 6)
        assert records["xl_tiny_nr"]["network_bytes"] == int(
            job.metrics.network_bytes)

    def test_rss_ceiling_breach_fails(self):
        from repro.bench.memory import peak_rss_supported
        from repro.bench.runner import run_experiment

        if not peak_rss_supported():
            pytest.skip("no peak-RSS mechanism on this host")
        cfg = parse(SHARD_E2E.replace(
            "measure_rss = true",
            "measure_rss = true\n    max_peak_rss_bytes = 1.0"))
        with pytest.raises(BenchRunError) as exc:
            run_experiment(cfg, suite="smoke")
        assert "peak RSS" in str(exc.value)
